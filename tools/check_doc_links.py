#!/usr/bin/env python
"""Check intra-repository markdown links (and their anchors).

Scans the repository's documentation set for inline markdown links,
resolves every relative target against the linking file, and fails on

* links to files that do not exist,
* ``#fragment`` links whose GitHub-style heading slug exists in
  neither the target file nor (for bare ``#fragment`` links) the
  linking file itself.

External links (``http(s)://``, ``mailto:``) are left alone — CI must
not depend on the network. Links inside fenced code blocks are
ignored, as are headings inside them when collecting anchors.

Usage::

    python tools/check_doc_links.py            # check, exit 1 on dead links
    python tools/check_doc_links.py --list     # also print every link checked

The file set is every ``*.md`` at the repository root plus everything
under ``docs/``; ``tests/test_doc_links.py`` runs the same check as a
tier-1 gate.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links/images: [text](target) — one level of nested brackets
# in the text, no whitespace in the target (our docs never need it).
_LINK = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: Path = REPO_ROOT) -> List[Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def _unfenced_lines(text: str) -> Iterator[Tuple[int, str]]:
    fence = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line)
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            yield lineno, line


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading (best-effort).

    Lowercase; markdown emphasis/code markers and punctuation dropped;
    spaces become hyphens. Duplicate-heading ``-1`` suffixes are
    handled by the caller.
    """
    text = heading.strip().lower()
    # Keep the text of links/images in the heading, drop the target.
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> Set[str]:
    slugs: Set[str] = set()
    counts: Dict[str, int] = {}
    for _, line in _unfenced_lines(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        base = github_slug(match.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def check_links(
    files: List[Path], root: Path = REPO_ROOT
) -> Tuple[List[str], List[str]]:
    """Return ``(problems, checked)`` over every intra-repo link."""
    problems: List[str] = []
    checked: List[str] = []
    anchor_cache: Dict[Path, Set[str]] = {}

    def anchors(path: Path) -> Set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = (
                anchors_of(path) if path.suffix == ".md" else set()
            )
        return anchor_cache[path]

    for source in files:
        for lineno, line in _unfenced_lines(
            source.read_text(encoding="utf-8")
        ):
            for match in _LINK.finditer(line):
                target = match.group(1)
                where = f"{source.relative_to(root)}:{lineno}"
                if target.startswith(_EXTERNAL):
                    continue
                checked.append(f"{where} -> {target}")
                path_part, _, fragment = target.partition("#")
                if not path_part:
                    dest = source
                else:
                    dest = (source.parent / path_part).resolve()
                    try:
                        dest.relative_to(root)
                    except ValueError:
                        problems.append(
                            f"{where}: {target!r} escapes the repository"
                        )
                        continue
                    if not dest.exists():
                        problems.append(
                            f"{where}: {target!r} — no such file"
                        )
                        continue
                if fragment and fragment not in anchors(dest):
                    problems.append(
                        f"{where}: {target!r} — no heading with anchor "
                        f"#{fragment} in {dest.relative_to(root)}"
                    )
    return problems, checked


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true",
        help="print every intra-repo link checked",
    )
    args = parser.parse_args(argv)
    files = doc_files()
    problems, checked = check_links(files)
    if args.list:
        for entry in checked:
            print(entry)
    print(
        f"check_doc_links: {len(files)} files, "
        f"{len(checked)} intra-repo links, {len(problems)} problem(s)"
    )
    for problem in problems:
        print(f"  DEAD: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Property test: the media machinery is free when nothing fails.

With no fault plan installed, running a bulk delete with read-time
checksum verification on **and** a :class:`repro.media.MediaRecovery`
attached to the buffer pool must be *bit-identical* to the trusting
pre-checksum read path (``verify_reads=False``, no media layer): the
same records deleted, the same simulated clock, the same
:class:`~repro.storage.disk.DiskStats` field by field, and the same
span tree node for node.  This is the PR's analogue of the ``lanes=1``
case in ``tests/test_parallel_property.py`` — robustness machinery may
only ever cost something when a fault actually happens.

Examples are seeded (``derandomize=True``) so the suite is
deterministic in CI.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.database import Database
from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.faults.sweep import capture_state
from repro.media import MediaRecovery
from repro.obs.observer import observed
from tests.conftest import populate


def span_fingerprint(span):
    """Everything observable about a span tree, recursively."""
    return (
        span.name,
        span.kind,
        span.target,
        round(span.elapsed_ms, 9),
        round(span.self_ms, 9),
        span.io.reads,
        span.io.writes,
        round(span.io.io_time_ms, 9),
        tuple(span_fingerprint(child) for child in span.children),
    )


def run_once(fraction, force_vertical, verified):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=240)
    keys = sorted(values["A"])[: int(240 * fraction)]
    if not verified:
        db.disk.verify_reads = False
        options = None
    else:
        options = BulkDeleteOptions(media=MediaRecovery(db.disk))
    with observed(db):
        result = bulk_delete(
            db, "R", "A", keys,
            options=options, force_vertical=force_vertical,
        )
    return db, result


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    fraction=st.sampled_from([0.1, 0.25, 0.5]),
    force_vertical=st.booleans(),
)
def test_no_fault_runs_are_bit_identical(fraction, force_vertical):
    base_db, base = run_once(fraction, force_vertical, verified=False)
    db, result = run_once(fraction, force_vertical, verified=True)
    assert result.records_deleted == base.records_deleted
    # Determinism pin: verified run must cost exactly the same.
    assert db.clock.now_ms == base_db.clock.now_ms  # lint: allow(float-cost-eq)
    assert vars(db.disk.stats) == vars(base_db.disk.stats)
    assert span_fingerprint(result.trace) == span_fingerprint(base.trace)
    assert db.pool.media is None  # detached after the statement
    assert capture_state(db) == capture_state(base_db)

"""Unit tests for the simulated disk and its service-time model."""
# This file unit-tests the raw page API itself and pins exact
# deterministic service times, so both rules are file-allowed:
# lint: allow-file(raw-page-io, float-cost-eq)

import pytest

from repro.errors import StorageError
from repro.storage.disk import (
    NEAR_SEQUENTIAL_WINDOW,
    DiskParameters,
    SimClock,
    SimulatedDisk,
)


def test_allocate_and_roundtrip(disk):
    f = disk.create_file()
    pid = disk.allocate_page(f)
    assert disk.page_exists(pid)
    data = b"x" * disk.page_size
    disk.write_page(pid, data)
    assert disk.read_page(pid) == data


def test_new_page_is_zeroed(disk):
    pid = disk.allocate_page(disk.create_file())
    assert disk.read_page(pid) == bytes(disk.page_size)


def test_wrong_size_write_rejected(disk):
    pid = disk.allocate_page(disk.create_file())
    with pytest.raises(StorageError):
        disk.write_page(pid, b"short")


def test_read_missing_page_raises(disk):
    with pytest.raises(StorageError):
        disk.read_page(424242)


def test_contiguous_allocation_within_file(disk):
    f = disk.create_file()
    pids = disk.allocate_pages(f, 5)
    assert pids == list(range(pids[0], pids[0] + 5))


def test_sequential_read_classified(disk):
    f = disk.create_file()
    pids = disk.allocate_pages(f, 4)
    for pid in pids:
        disk.read_page(pid)
    # First access of the file is random, the rest sequential.
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 3


def test_backward_access_is_random(disk):
    f = disk.create_file()
    pids = disk.allocate_pages(f, 3)
    disk.read_page(pids[2])
    disk.read_page(pids[0])
    assert disk.stats.random_reads == 2


def test_near_sequential_window(disk):
    f = disk.create_file()
    pids = disk.allocate_pages(f, NEAR_SEQUENTIAL_WINDOW + 2)
    disk.read_page(pids[0])
    disk.read_page(pids[NEAR_SEQUENTIAL_WINDOW])  # within the window
    assert disk.stats.near_sequential_reads == 1
    disk.read_page(pids[0])  # backward jump: random
    disk.read_page(pids[NEAR_SEQUENTIAL_WINDOW + 1])  # beyond the window
    assert disk.stats.random_reads == 3  # first touch + backward + far jump


def test_interleaved_files_stay_sequential(disk):
    """Two sequential streams on different files must not disturb
    each other — this property carries the whole benchmark design."""
    f1, f2 = disk.create_file(), disk.create_file()
    p1 = disk.allocate_pages(f1, 4)
    p2 = disk.allocate_pages(f2, 4)
    for a, b in zip(p1, p2):
        disk.read_page(a)
        disk.read_page(b)
    assert disk.stats.random_reads == 2  # one first-touch per file
    assert disk.stats.sequential_reads == 6


def test_reads_and_writes_tracked_separately(disk):
    """Deferred write-backs must not break a scan's sequentiality."""
    f = disk.create_file()
    pids = disk.allocate_pages(f, 6)
    data = bytes(disk.page_size)
    disk.read_page(pids[0])
    disk.read_page(pids[1])
    disk.write_page(pids[0], data)  # write stream starts here
    disk.read_page(pids[2])         # read stream continues sequentially
    disk.write_page(pids[1], data)
    assert disk.stats.sequential_reads == 2
    assert disk.stats.sequential_writes == 1


def test_clock_advances_with_costs(disk):
    params = disk.parameters
    f = disk.create_file()
    pids = disk.allocate_pages(f, 2)
    disk.read_page(pids[0])
    assert disk.clock.now_ms == pytest.approx(
        params.random_ms(disk.page_size)
    )
    disk.read_page(pids[1])
    assert disk.clock.now_ms == pytest.approx(
        params.random_ms(disk.page_size)
        + params.sequential_ms(disk.page_size)
    )


def test_random_costs_dominate_sequential():
    params = DiskParameters()
    assert params.random_ms(4096) > 5 * params.sequential_ms(4096)


def test_freed_page_retained_by_default(disk):
    f = disk.create_file()
    pid = disk.allocate_page(f)
    disk.write_page(pid, b"y" * disk.page_size)
    disk.free_page(pid)
    assert not disk.page_exists(pid)
    # Stale content still readable (crash recovery relies on this).
    assert disk.read_page(pid) == b"y" * disk.page_size
    disk.free_page(pid)  # double free tolerated in retain mode


def test_strict_mode_frees_for_real(strict_disk):
    f = strict_disk.create_file()
    pid = strict_disk.allocate_page(f)
    strict_disk.free_page(pid)
    with pytest.raises(StorageError):
        strict_disk.read_page(pid)
    with pytest.raises(StorageError):
        strict_disk.free_page(pid)


def test_num_pages_excludes_freed(disk):
    f = disk.create_file()
    pids = disk.allocate_pages(f, 3)
    disk.free_page(pids[1])
    assert disk.num_pages == 2
    assert disk.size_bytes == 2 * disk.page_size


def test_stats_snapshot_and_delta(disk):
    f = disk.create_file()
    pid = disk.allocate_page(f)
    before = disk.stats.snapshot()
    disk.read_page(pid)
    delta = disk.stats.delta_since(before)
    assert delta.reads == 1
    assert before.reads == 0  # snapshot is independent


def test_cpu_charge_advances_clock(disk):
    t0 = disk.clock.now_ms
    disk.charge_cpu_records(1000)
    assert disk.clock.now_ms > t0
    disk.charge_cpu_records(0)  # no-op


def test_clock_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance_ms(-1)


def test_clock_reset():
    clock = SimClock()
    clock.advance_ms(125.0)
    assert clock.now_seconds == pytest.approx(0.125)
    clock.reset()
    assert clock.now_ms == 0.0


def test_minimum_page_size_enforced():
    with pytest.raises(ValueError):
        SimulatedDisk(page_size=64)


def test_file_of_page(disk):
    f = disk.create_file()
    pid = disk.allocate_page(f)
    assert disk.file_of(pid) == f

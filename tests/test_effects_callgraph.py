"""Call-graph construction for the effect engine.

Synthetic mini-packages in ``tmp_path`` pin each resolution mechanism
(direct calls, annotated receivers, known aliases, constructor typing,
fluent chains, deferred imports, lane-dispatch discovery); the final
test builds the graph over the real tree and pins coarse shape
invariants so refactors that break resolution are visible.
"""

import textwrap
from pathlib import Path

from repro.analysis.code_lint import default_root
from repro.analysis.effects.callgraph import build_callgraph


def make_pkg(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for sub in root.rglob("*"):
        if sub.is_dir() and not (sub / "__init__.py").exists():
            (sub / "__init__.py").write_text("")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("")
    return root


def test_direct_and_method_calls(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "a.py": """
            def helper():
                return 1

            class Engine:
                def go(self):
                    return helper()

            def drive(engine: Engine):
                engine.go()
            """,
        },
    )
    graph = build_callgraph(root)
    assert graph.callees("pkg.a.Engine.go") == {"pkg.a.helper"}
    assert graph.callees("pkg.a.drive") == {"pkg.a.Engine.go"}


def test_cross_module_import_resolution(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "util.py": """
            def compute():
                return 2
            """,
            "main.py": """
            from pkg.util import compute

            def run():
                return compute()
            """,
        },
    )
    graph = build_callgraph(root)
    assert graph.callees("pkg.main.run") == {"pkg.util.compute"}


def test_function_local_import_resolution(tmp_path):
    # Deferred imports inside a body (cycle breakers) must resolve.
    root = make_pkg(
        tmp_path,
        {
            "late.py": """
            def target():
                return 3
            """,
            "caller.py": """
            def run():
                from pkg.late import target

                return target()
            """,
        },
    )
    graph = build_callgraph(root)
    assert graph.callees("pkg.caller.run") == {"pkg.late.target"}


def test_known_alias_attribute_receiver(tmp_path):
    # `self.disk` resolves through the known-aliases table even with
    # no annotation anywhere.
    root = make_pkg(
        tmp_path,
        {
            "storage/disk.py": """
            class SimulatedDisk:
                def read_page(self, pid):
                    return pid
            """,
            "engine.py": """
            class Runner:
                def step(self):
                    self.disk.read_page(1)
            """,
        },
    )
    graph = build_callgraph(root)
    assert graph.callees("pkg.engine.Runner.step") == {
        "pkg.storage.disk.SimulatedDisk.read_page"
    }


def test_constructor_assignment_types_local(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "w.py": """
            class Widget:
                def spin(self):
                    return 1

            def use():
                w = Widget()
                w.spin()
            """,
        },
    )
    graph = build_callgraph(root)
    assert "pkg.w.Widget.spin" in graph.callees("pkg.w.use")


def test_fluent_constructor_call_receiver(tmp_path):
    # `Widget().spin()` — a Call receiver — must NOT fall back to
    # name-matching (which would union every `spin` in the package).
    root = make_pkg(
        tmp_path,
        {
            "w.py": """
            class Widget:
                def spin(self):
                    return 1

            class Unrelated:
                def spin(self):
                    return 2

            def use():
                Widget().spin()
            """,
        },
    )
    graph = build_callgraph(root)
    assert graph.callees("pkg.w.use") == {"pkg.w.Widget.spin"}


def test_ambiguous_method_names_stay_unresolved(tmp_path):
    # `.append` on an untyped receiver must not connect to an in-repo
    # class that happens to define `append`.
    root = make_pkg(
        tmp_path,
        {
            "log.py": """
            class Journal:
                def append(self, entry):
                    return entry

            def collect(items):
                out = []
                for item in items:
                    out.append(item)
                return out
            """,
        },
    )
    graph = build_callgraph(root)
    node = graph.functions["pkg.log.collect"]
    assert node.calls == set()
    assert node.unresolved >= 1


def test_nested_closures_get_own_nodes(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "f.py": """
            def leaf():
                return 9

            def factory():
                def run():
                    return leaf()

                return run
            """,
        },
    )
    graph = build_callgraph(root)
    assert "pkg.f.factory.<locals>.run" in graph.functions
    assert graph.callees("pkg.f.factory.<locals>.run") == {"pkg.f.leaf"}
    assert graph.nested_functions("pkg.f.factory") == [
        "pkg.f.factory.<locals>.run"
    ]


def test_lane_dispatch_sites_recorded(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "lanes.py": """
            class LaneTask:
                def __init__(self, name, run):
                    self.name = name
                    self.run = run
            """,
            "exec.py": """
            from pkg.lanes import LaneTask

            def work():
                return 1

            def make_task():
                def run():
                    return work()

                return run

            def submit():
                direct = LaneTask("d", run=work)
                via_factory = LaneTask("f", run=make_task())
                return direct, via_factory
            """,
        },
    )
    graph = build_callgraph(root)
    kinds = {(d.kind, d.entry) for d in graph.lane_dispatches}
    assert ("function", "pkg.exec.work") in kinds
    assert ("factory", "pkg.exec.make_task") in kinds


def test_real_tree_shape():
    graph = build_callgraph(default_root())
    # Coarse shape pins: resolution collapsing would crater the edge
    # count long before anything else noticed.
    assert len(graph.functions) > 700
    assert sum(len(n.calls) for n in graph.functions.values()) > 1200
    # The executor's two regions (4 factories) + restart's redo region
    # + the sharded executor's fragment region.
    assert len(graph.lane_dispatches) == 6
    assert all(
        d.kind == "factory" and d.entry for d in graph.lane_dispatches
    )

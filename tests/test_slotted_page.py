"""Unit tests for the slotted page layout."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.storage.page_formats import HEADER_SIZE, SLOT_SIZE, SlottedPage


def make_page(size=512):
    return SlottedPage.format_empty(bytearray(size))


def test_insert_and_read_roundtrip():
    page = make_page()
    slot = page.insert(b"hello")
    assert page.read(slot) == b"hello"
    assert page.live_records == 1


def test_multiple_records_get_distinct_slots():
    page = make_page()
    slots = [page.insert(f"r{i}".encode()) for i in range(5)]
    assert slots == [0, 1, 2, 3, 4]
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"r{i}".encode()


def test_delete_tombstones_slot():
    page = make_page()
    s0 = page.insert(b"aaa")
    s1 = page.insert(b"bbb")
    assert page.delete(s0) == b"aaa"
    assert not page.is_live(s0)
    assert page.is_live(s1)
    assert page.read(s1) == b"bbb"
    with pytest.raises(StorageError):
        page.read(s0)


def test_delete_twice_raises():
    page = make_page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(StorageError):
        page.delete(slot)


def test_slot_reuse_preserves_other_rids():
    page = make_page()
    s0 = page.insert(b"one")
    s1 = page.insert(b"two")
    page.delete(s0)
    s2 = page.insert(b"three")
    assert s2 == s0  # dead slot reused
    assert page.read(s1) == b"two"


def test_page_full_raises():
    page = make_page(size=256)
    payload = b"z" * 100
    page.insert(payload)
    page.insert(payload)
    with pytest.raises(PageFullError):
        page.insert(payload)


def test_free_space_decreases_monotonically_on_insert():
    page = make_page()
    before = page.free_space()
    page.insert(b"abcdef")
    after = page.free_space()
    assert after == before - 6 - SLOT_SIZE


def test_records_iterates_live_only():
    page = make_page()
    s0 = page.insert(b"a")
    page.insert(b"b")
    page.delete(s0)
    assert [(slot, data) for slot, data in page.records()] == [(1, b"b")]


def test_compact_reclaims_payload_space():
    page = make_page(size=256)
    big = b"q" * 80
    s0 = page.insert(big)
    s1 = page.insert(big)
    page.delete(s0)
    with pytest.raises(PageFullError):
        page.insert(b"w" * 100)
    page.compact()
    assert page.read(s1) == big  # survivor intact, same slot
    page.insert(b"w" * 100)  # now it fits


def test_compact_preserves_slot_numbers():
    page = make_page()
    slots = [page.insert(f"rec{i}".encode()) for i in range(4)]
    page.delete(slots[1])
    page.compact()
    assert page.read(slots[0]) == b"rec0"
    assert page.read(slots[2]) == b"rec2"
    assert page.read(slots[3]) == b"rec3"
    assert not page.is_live(slots[1])


def test_is_empty():
    page = make_page()
    assert page.is_empty()
    slot = page.insert(b"x")
    assert not page.is_empty()
    page.delete(slot)
    assert page.is_empty()


def test_empty_record_rejected():
    page = make_page()
    with pytest.raises(StorageError):
        page.insert(b"")


def test_read_out_of_range_slot():
    page = make_page()
    with pytest.raises(StorageError):
        page.read(0)
    assert not page.is_live(0)


def test_can_fit_accounts_for_slot_entry():
    page = make_page(size=HEADER_SIZE + SLOT_SIZE + 10)
    assert page.can_fit(10)
    assert not page.can_fit(11)

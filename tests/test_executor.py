"""End-to-end tests for the vertical bulk-delete executor.

The central invariant: every execution strategy — vertical sort/merge,
hash, partitioned hash, with or without reorganization options, and the
traditional baselines — must leave the database in exactly the same
logical state.
"""

import random

import pytest

from repro import Database
from repro.btree.maintenance import validate_tree
from repro.core.executor import BulkDeleteOptions, bulk_delete, execute_plan
from repro.core.planner import choose_plan
from repro.core.plans import BdMethod
from repro.core.traditional import traditional_delete
from repro.errors import PlanningError
from tests.conftest import populate


def fresh(n=400, **kw):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=n, **kw)
    return db, values


def check_consistent(db, deleted_keys, values, n):
    table = db.table("R")
    deleted = set(deleted_keys)
    survivors = {v[0] for _, v in db.scan("R")}
    assert survivors == set(values["A"]) - deleted
    assert table.record_count == n - len(deleted)
    for index in table.indexes.values():
        validate_tree(index.tree)
        assert index.tree.entry_count == n - len(deleted)
        for key in deleted_keys:
            column_values = values[index.column]
            victim_key = column_values[values["A"].index(key)]
            assert not index.tree.contains(victim_key)


def test_sort_merge_end_to_end():
    db, values = fresh()
    keys = values["A"][:120]
    result = bulk_delete(db, "R", "A", keys,
                         prefer_method=BdMethod.SORT_MERGE)
    assert result.records_deleted == 120
    check_consistent(db, keys, values, 400)


def test_hash_end_to_end():
    db, values = fresh()
    keys = values["A"][:120]
    result = bulk_delete(db, "R", "A", keys, prefer_method=BdMethod.HASH)
    assert result.records_deleted == 120
    check_consistent(db, keys, values, 400)


def test_partitioned_end_to_end():
    db, values = fresh()
    keys = values["A"][:120]
    result = bulk_delete(
        db, "R", "A", keys, prefer_method=BdMethod.PARTITIONED_HASH
    )
    assert result.records_deleted == 120
    check_consistent(db, keys, values, 400)


def test_all_methods_agree():
    contents = []
    for method in (BdMethod.SORT_MERGE, BdMethod.HASH,
                   BdMethod.PARTITIONED_HASH):
        db, values = fresh()
        keys = values["A"][100:250]
        bulk_delete(db, "R", "A", keys, prefer_method=method)
        contents.append(sorted(v for _, v in db.scan("R")))
    assert contents[0] == contents[1] == contents[2]


def test_vertical_equals_traditional():
    db_v, values = fresh()
    keys = values["A"][:150]
    bulk_delete(db_v, "R", "A", keys)
    db_t, values_t = fresh()
    traditional_delete(db_t, "R", "A", keys)
    assert sorted(v for _, v in db_v.scan("R")) == sorted(
        v for _, v in db_t.scan("R")
    )


def test_compact_leaves_option():
    db, values = fresh()
    keys = values["A"][:200]
    result = bulk_delete(
        db, "R", "A", keys,
        options=BulkDeleteOptions(compact_leaves=True),
    )
    assert result.records_deleted == 200
    check_consistent(db, keys, values, 400)
    # Compaction should leave a dense leaf level.
    table = db.table("R")
    for index in table.indexes.values():
        leaves = index.tree.leaf_count()
        per_leaf = index.tree.leaf_capacity
        assert leaves <= (200 // (per_leaf // 2)) + 2


def test_base_node_reorg_option():
    db, values = fresh()
    keys = values["A"][:150]
    result = bulk_delete(
        db, "R", "A", keys,
        options=BulkDeleteOptions(base_node_reorg=True),
    )
    assert result.records_deleted == 150
    check_consistent(db, keys, values, 400)


def test_reclaim_heap_pages():
    db, values = fresh()
    table = db.table("R")
    pages_before = table.heap.page_count
    result = bulk_delete(db, "R", "A", values["A"][:350])
    assert result.heap_pages_reclaimed > 0
    assert table.heap.page_count < pages_before


def test_delete_without_driving_index():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=300, indexes=("A",))
    keys_b = values["B"][:80]
    result = bulk_delete(db, "R", "B", keys_b)
    assert result.records_deleted == 80
    survivors = {v[1] for _, v in db.scan("R")}
    assert survivors.isdisjoint(set(keys_b))
    validate_tree(db.table("R").index("I_R_A").tree)


def test_keys_not_in_table_are_ignored():
    db, values = fresh()
    missing = [10**9 + i for i in range(5)]
    result = bulk_delete(db, "R", "A", values["A"][:10] + missing)
    assert result.records_deleted == 10


def test_delete_everything():
    db, values = fresh(n=200)
    result = bulk_delete(db, "R", "A", list(values["A"]))
    assert result.records_deleted == 200
    assert list(db.scan("R")) == []
    for index in db.table("R").indexes.values():
        assert index.tree.entry_count == 0
        validate_tree(index.tree)


def test_duplicate_keys_in_delete_list():
    db, values = fresh()
    keys = values["A"][:50] * 3
    result = bulk_delete(db, "R", "A", keys)
    assert result.records_deleted == 50


def test_clustered_path_skips_rid_sort():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=300, indexes=("A", "B"), clustered_on="A")
    keys = values["A"][:90]
    result = bulk_delete(db, "R", "A", keys)
    assert result.plan.sort_rid_list is False
    assert result.records_deleted == 90
    check_consistent(db, keys, values, 300)


def test_result_reports_io_and_steps():
    db, values = fresh()
    result = bulk_delete(db, "R", "A", values["A"][:60])
    assert result.io is not None
    assert result.io.total_ios > 0
    assert result.elapsed_ms > 0
    names = [s.structure for s in result.step_results]
    assert "I_R_A" in names and "R" in names and "I_R_B" in names
    assert "deleted 60 records" in result.summary()


def test_execute_plan_rejects_horizontal():
    db, values = fresh()
    plan = choose_plan(db, "R", "A", 1)  # horizontal for tiny n
    if plan.table_step().method.name == "NESTED_LOOPS":
        with pytest.raises(PlanningError):
            execute_plan(db, plan, values["A"][:1])


def test_auto_dispatch_to_traditional():
    db, values = fresh()
    result = bulk_delete(db, "R", "A", values["A"][:1],
                         force_vertical=False)
    assert result.records_deleted == 1
    assert result.step_results == []  # ran horizontally

"""Tests for the hash index and its traditional-way maintenance."""

import random

import pytest

from repro import Database, bulk_delete, bulk_update
from repro.btree.maintenance import validate_tree
from repro.core.drop_create import drop_create_delete
from repro.core.planner import choose_plan
from repro.errors import (
    IndexError_,
    RecoveryError,
    TransactionError,
    UniqueViolationError,
)
from repro.hashindex import HashIndex
from repro.recovery.restart import RecoverableBulkDelete
from repro.recovery.wal import WriteAheadLog
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.txn.coordinator import BulkDeleteCoordinator
from tests.conftest import populate


@pytest.fixture
def hash_index():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    return HashIndex(pool, bucket_count=8)


# ----------------------------------------------------------------------
# standalone structure
# ----------------------------------------------------------------------
def test_insert_search_delete(hash_index):
    hash_index.insert(5, 100)
    hash_index.insert(5, 200)
    hash_index.insert(9, 300)
    assert sorted(hash_index.search(5)) == [100, 200]
    assert hash_index.contains(9, 300)
    assert hash_index.delete(5, 100)
    assert hash_index.search(5) == [200]
    assert not hash_index.delete(5, 100)
    hash_index.validate()


def test_overflow_chains(hash_index):
    # Far more entries than one page per bucket can hold.
    for i in range(2000):
        hash_index.insert(i, i)
    assert hash_index.entry_count == 2000
    assert hash_index.page_count() > hash_index.bucket_count
    hash_index.validate()
    for i in range(0, 2000, 97):
        assert hash_index.search(i) == [i]


def test_delete_from_overflow_page(hash_index):
    for i in range(2000):
        hash_index.insert(i, i)
    for i in range(0, 2000, 2):
        assert hash_index.delete(i, i)
    assert hash_index.entry_count == 1000
    hash_index.validate()


def test_unique_hash_index():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=16)
    idx = HashIndex(pool, bucket_count=4, unique=True)
    idx.insert(1, 10)
    with pytest.raises(UniqueViolationError):
        idx.insert(1, 20)


def test_items_cover_everything(hash_index):
    entries = [(i, i * 3) for i in range(50)]
    for k, v in entries:
        hash_index.insert(k, v)
    assert sorted(hash_index.items()) == sorted(entries)


def test_sized_for_targets_fill():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    idx = HashIndex.sized_for(pool, expected_entries=1000)
    per_page = idx.capacity_per_page
    assert idx.bucket_count == pytest.approx(
        1000 / (per_page * 0.7), rel=0.2
    )


def test_validation_params():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=16)
    with pytest.raises(IndexError_):
        HashIndex(pool, bucket_count=0)


def test_drop_frees_pages(hash_index):
    for i in range(500):
        hash_index.insert(i, i)
    disk = hash_index.pool.disk
    assert disk.num_pages > 0
    hash_index.drop()
    assert disk.num_pages == 0


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def fresh_with_hash(n=300):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=n)  # btree on A (unique) and B
    db.create_hash_index("R", "B", name="H_B")
    return db, values


def test_create_hash_index_backfills():
    db, values = fresh_with_hash()
    h = db.table("R").index("H_B").hash_index
    assert h.entry_count == 300
    h.validate()
    assert h.contains(values["B"][0])


def test_dml_maintains_hash_index():
    db, values = fresh_with_hash()
    rid = db.insert("R", (900001, 900002, "x"))
    h = db.table("R").index("H_B").hash_index
    assert h.contains(900002, rid.pack())
    db.delete_record("R", rid)
    assert not h.contains(900002)
    h.validate()


def test_bulk_delete_updates_hash_index_traditionally():
    db, values = fresh_with_hash()
    keys = values["A"][:90]
    result = bulk_delete(db, "R", "A", keys)
    assert result.records_deleted == 90
    h = db.table("R").index("H_B").hash_index
    assert h.entry_count == 210
    h.validate()
    # The hash step is reported like any other structure.
    names = [s.structure for s in result.step_results]
    assert "H_B" in names
    hash_step = next(s for s in result.step_results if s.structure == "H_B")
    assert hash_step.deleted_count == 90


def test_planner_notes_hash_indexes():
    db, values = fresh_with_hash()
    plan = choose_plan(db, "R", "A", 90, force_vertical=True)
    assert any("hash index" in note for note in plan.notes)
    assert all(step.target != "H_B" for step in plan.steps)


def test_bulk_update_maintains_hash_index():
    db, values = fresh_with_hash()
    bulk_update(db, "R", "B", compute=lambda r: r[1] + 10**6,
                where=lambda r: True)
    h = db.table("R").index("H_B").hash_index
    assert h.entry_count == 300
    h.validate()
    for _, row in db.scan("R"):
        assert h.contains(row[1])


def test_drop_create_rebuilds_hash_index():
    db, values = fresh_with_hash()
    result = drop_create_delete(db, "R", "A", values["A"][:60])
    assert "H_B" in result.indexes_recreated
    h = db.table("R").index("H_B").hash_index
    assert h.entry_count == 240
    h.validate()


def test_coordinator_rejects_hash_indexes():
    db, values = fresh_with_hash()
    coord = BulkDeleteCoordinator(db, "R", "A", values["A"][:10])
    with pytest.raises(TransactionError):
        coord.begin()


def test_recoverable_rejects_hash_indexes():
    db, values = fresh_with_hash()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(db, "R", "A", values["A"][:10], log)
    with pytest.raises(RecoveryError):
        runner.run()


def test_hash_index_slows_the_bulk_delete():
    """The §5 point: a non-B-tree index drags the vertical plan back
    toward per-record cost."""
    db_plain = Database(page_size=512, memory_bytes=16 * 512)
    values = populate(db_plain, n=600)
    db_plain.flush()
    db_plain.clock.reset()
    r_plain = bulk_delete(db_plain, "R", "A", values["A"][:200])

    db_hash = Database(page_size=512, memory_bytes=16 * 512)
    values2 = populate(db_hash, n=600)
    db_hash.create_hash_index("R", "B", name="H_B")
    db_hash.flush()
    db_hash.clock.reset()
    r_hash = bulk_delete(db_hash, "R", "A", values2["A"][:200])
    assert r_hash.elapsed_ms > r_plain.elapsed_ms * 1.5

"""Unit tests for the LRU buffer pool."""
# The pool's unit tests drive the raw page API to set up fixtures
# the pool is then checked against:
# lint: allow-file(raw-page-io)

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make(disk, frames=3):
    return BufferPool(disk, capacity_pages=frames)


def test_pin_fetches_and_caches(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid):
        pass
    reads_after_first = disk.stats.reads
    with pool.pin(pid):
        pass
    assert disk.stats.reads == reads_after_first  # hit, no new read
    assert pool.stats.hits == 1
    assert pool.stats.misses == 1


def test_dirty_page_written_back_on_eviction(disk):
    pool = make(disk, frames=1)
    f = disk.create_file()
    a, b = disk.allocate_page(f), disk.allocate_page(f)
    with pool.pin(a) as page:
        page.data[0] = 0xAB
        page.mark_dirty()
    with pool.pin(b):
        pass  # evicts a
    assert disk.read_page(a)[0] == 0xAB
    assert pool.stats.evictions == 1
    assert pool.stats.dirty_writebacks == 1


def test_clean_eviction_does_not_write(disk):
    pool = make(disk, frames=1)
    f = disk.create_file()
    a, b = disk.allocate_page(f), disk.allocate_page(f)
    with pool.pin(a):
        pass
    writes = disk.stats.writes
    with pool.pin(b):
        pass
    assert disk.stats.writes == writes


def test_pinned_pages_not_evictable(disk):
    pool = make(disk, frames=1)
    f = disk.create_file()
    a, b = disk.allocate_page(f), disk.allocate_page(f)
    handle = pool.pin(a)
    with pytest.raises(BufferPoolError):
        pool.pin(b)
    handle.__exit__(None, None, None)
    with pool.pin(b):
        pass


def test_unpin_without_pin_raises(disk):
    pool = make(disk)
    with pytest.raises(BufferPoolError):
        pool.unpin(123)


def test_lru_order_evicts_oldest(disk):
    pool = make(disk, frames=2)
    f = disk.create_file()
    a, b, c = disk.allocate_pages(f, 3)
    with pool.pin(a):
        pass
    with pool.pin(b):
        pass
    with pool.pin(a):  # touch a: b becomes LRU
        pass
    with pool.pin(c):
        pass
    assert pool.contains(a)
    assert not pool.contains(b)


def test_pin_new_allocates_dirty_zero_page(disk):
    pool = make(disk)
    f = disk.create_file()
    with pool.pin_new(f) as page:
        assert bytes(page.data) == bytes(disk.page_size)
        pid = page.page_id
    pool.flush_all()
    assert disk.read_page(pid) == bytes(disk.page_size)


def test_flush_all_clears_dirty_bits(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid) as page:
        page.data[1] = 7
        page.mark_dirty()
    pool.flush_all()
    writes = disk.stats.writes
    pool.flush_all()  # second flush writes nothing
    assert disk.stats.writes == writes


def test_discard_drops_without_writeback(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid) as page:
        page.data[0] = 9
        page.mark_dirty()
    pool.discard(pid)
    assert disk.read_page(pid)[0] == 0  # modification lost on purpose
    pool.discard(pid)  # idempotent


def test_discard_pinned_raises(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    handle = pool.pin(pid)
    with pytest.raises(BufferPoolError):
        pool.discard(pid)
    handle.__exit__(None, None, None)


def test_invalidate_all_loses_unflushed_changes(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid) as page:
        page.data[0] = 5
        page.mark_dirty()
    pool.invalidate_all()
    assert disk.read_page(pid)[0] == 0
    assert pool.resident_count == 0


def test_clear_flushes_then_empties(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid) as page:
        page.data[0] = 5
        page.mark_dirty()
    pool.clear()
    assert disk.read_page(pid)[0] == 5
    assert pool.resident_count == 0


def test_with_byte_budget_minimum_one_frame(disk):
    pool = BufferPool.with_byte_budget(disk, 10)
    assert pool.capacity_pages == 1


def test_capacity_validation(disk):
    with pytest.raises(ValueError):
        BufferPool(disk, 0)


def test_hit_ratio(disk):
    pool = make(disk)
    pid = disk.allocate_page(disk.create_file())
    with pool.pin(pid):
        pass
    with pool.pin(pid):
        pass
    assert pool.stats.hit_ratio == pytest.approx(0.5)

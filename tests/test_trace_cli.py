"""``python -m repro trace``: JSON export + schema validation.

This mirrors the CI step: run the trace CLI over the planner
self-check corpus and validate the emitted document against the
checked-in schema (``docs/trace_schema.json`` semantically enforced by
:mod:`repro.obs.schema`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.selfcheck import CASES
from repro.cli import main as cli_main
from repro.obs.schema import main as schema_main, validate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_trace_selfcheck_json_validates(tmp_path, capsys):
    out = tmp_path / "traces.json"
    assert cli_main(
        ["trace", "--selfcheck", "--format", "json",
         "--out", str(out)]
    ) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert validate_trace(doc) == []
    assert doc["schema_version"] == 1
    assert len(doc["traces"]) == len(CASES)
    labels = {t["label"] for t in doc["traces"]}
    assert labels == {case.name for case in CASES}
    # the standalone validator CLI agrees (this is the CI invocation)
    assert schema_main([str(out)]) == 0
    assert "ok" in capsys.readouterr().out


def test_schema_cli_rejects_corrupted_document(tmp_path, capsys):
    out = tmp_path / "traces.json"
    cli_main(["trace", "--selfcheck", "--out", str(out)])
    capsys.readouterr()
    doc = json.loads(out.read_text())
    doc["traces"][0]["span"]["self_ms"] += 1.0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    assert schema_main([str(bad)]) == 1
    assert "self_ms" in capsys.readouterr().out


def test_trace_workload_text_format(capsys):
    assert cli_main(
        ["trace", "--records", "600", "--fraction", "0.1",
         "--format", "text"]
    ) == 0
    out = capsys.readouterr().out
    assert "== bulk-delete ==" in out
    assert "-> " in out and "sim " in out
    assert "totals:" in out


def test_checked_in_schema_covers_every_exported_field():
    """docs/trace_schema.json must require what the exporter emits."""
    from repro.obs.schema import TOTAL_FIELDS
    from repro.obs.trace import IO_FIELDS

    schema = json.loads(
        (REPO_ROOT / "docs" / "trace_schema.json").read_text()
    )
    io_schema = schema["definitions"]["io"]
    assert set(io_schema["required"]) == set(IO_FIELDS)
    span_schema = schema["definitions"]["span"]
    for field in ("name", "kind", "start_ms", "end_ms", "elapsed_ms",
                  "self_ms", "io", "self_io", "buffer", "attrs",
                  "children"):
        assert field in span_schema["required"]
    trace_schema = schema["definitions"]["trace"]
    totals = trace_schema["properties"]["totals"]
    assert set(totals["required"]) == set(TOTAL_FIELDS)

"""Tests for ON DELETE SET NULL in the FK-guarded bulk delete path.

Covers the plain (set-oriented bulk UPDATE) null-out, the routed
variant through :class:`~repro.txn.coordinator.UpdateRouter` (so
off-line secondary indexes see the change via their side-files),
engine dispatch to an LSM child, and the guard rails: RESTRICT still
aborts first, and SET NULL against an LSM child is rejected because
nulling its key would collide every orphan on one key.
"""

import pytest

from repro import Attribute, Database, TableSchema
from repro.btree.maintenance import validate_tree
from repro.core.integrity import (
    SET_NULL_VALUE,
    ConstraintRegistry,
    OnDelete,
    cascade_bulk_delete,
    set_null_referencing_rows,
)
from repro.errors import IntegrityViolationError, PlanningError
from repro.txn.coordinator import BulkDeleteCoordinator, UpdateRouter


def build():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of("P", [
        Attribute.int_("K"), Attribute.int_("X"),
    ]))
    db.load_table("P", [(k, 10 * k) for k in range(1, 11)])
    db.create_index("P", "K", unique=True)
    db.create_table(TableSchema.of("C", [
        Attribute.int_("PK"), Attribute.int_("B"),
    ]))
    db.load_table("C", [(k, 100 + k) for k in range(1, 11)])
    db.create_index("C", "PK")
    db.create_index("C", "B")
    registry = ConstraintRegistry(db)
    registry.add_foreign_key("C", "PK", "P", "K", OnDelete.SET_NULL)
    return db, registry


def child_pks(db):
    idx = db.table("C").schema.column_index("PK")
    return sorted(values[idx] for _, values in db.scan("C"))


def test_cascade_delete_nulls_referencing_rows():
    db, registry = build()
    result, report = cascade_bulk_delete(db, registry, "P", "K", [2, 3, 4])
    assert result.records_deleted == 3
    assert report.nulled == [
        ("C.PK -> P.K ON DELETE SET-NULL", 3)
    ]
    # Child rows survive with nulled references; indexes follow.
    assert child_pks(db) == [SET_NULL_VALUE] * 3 + [1] + list(range(5, 11))
    tree = db.table("C").index("I_C_PK").tree
    validate_tree(tree)
    assert not any(tree.contains(k) for k in (2, 3, 4))
    assert tree.contains(SET_NULL_VALUE)


def test_restrict_is_checked_before_any_null_out():
    db, registry = build()
    db.create_table(TableSchema.of("D", [Attribute.int_("DK")]))
    db.load_table("D", [(2,)])
    db.create_index("D", "DK")
    registry.add_foreign_key("D", "DK", "P", "K", OnDelete.RESTRICT)
    before = child_pks(db)
    with pytest.raises(IntegrityViolationError):
        cascade_bulk_delete(db, registry, "P", "K", [2, 3])
    # Phase 1 (all checks) runs before phase 2 (any modification):
    # the SET NULL edge did not fire and the parent rows survive.
    assert child_pks(db) == before
    assert sorted(v[0] for _, v in db.scan("P")) == list(range(1, 11))


def test_set_null_skips_already_null_references():
    db, registry = build()
    set_null_referencing_rows(
        db, registry.all_constraints()[0], [5, 6]
    )
    # A second pass over the same keys (plus the null sentinel itself)
    # finds nothing left to touch.
    touched = set_null_referencing_rows(
        db, registry.all_constraints()[0], [5, 6, SET_NULL_VALUE]
    )
    assert touched == 0


def test_set_null_routed_through_update_router():
    # Mid-protocol null-out: after the coordinator's critical phase the
    # secondary index I_C_B is off-line; the routed delete+reinsert
    # must queue there via the side-file and land when it is processed.
    db, registry = build()
    fk = registry.all_constraints()[0]
    coord = BulkDeleteCoordinator(db, "C", "PK", [9, 10])
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    assert not db.table("C").index("I_C_B").is_online
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    touched = set_null_referencing_rows(
        db, fk, [1, 2], router=router, txn=txn
    )
    coord.tm.commit(txn)
    assert touched == 2
    coord.process_index("I_C_B")
    table = db.table("C")
    assert child_pks(db) == sorted([SET_NULL_VALUE] * 2 + list(range(3, 9)))
    for name in ("I_C_PK", "I_C_B"):
        tree = table.index(name).tree
        validate_tree(tree)
        assert tree.entry_count == table.record_count


def test_set_null_router_requires_a_transaction():
    db, registry = build()
    coord = BulkDeleteCoordinator(db, "C", "PK", [9])
    router = UpdateRouter(db, coord)
    with pytest.raises(PlanningError):
        set_null_referencing_rows(
            db, registry.all_constraints()[0], [1], router=router
        )


def test_cascade_into_lsm_child():
    db, registry = build()
    db.create_table(
        TableSchema.of("E", [
            Attribute.int_("EK"), Attribute.char("PAY", 8),
        ]),
        engine="lsm",
        key_column="EK",
    )
    db.load_table("E", [(k, f"e{k}") for k in range(1, 11)])
    registry.add_foreign_key("E", "EK", "P", "K", OnDelete.CASCADE)
    result, report = cascade_bulk_delete(db, registry, "P", "K", [1, 2])
    assert result.records_deleted == 2
    assert len(report.cascaded) == 1
    remaining = sorted(values[0] for _, values in db.scan("E"))
    assert remaining == list(range(3, 11))
    # The SET NULL edge fired alongside the LSM cascade.
    assert child_pks(db).count(SET_NULL_VALUE) == 2


def test_set_null_against_lsm_child_is_rejected():
    db, registry = build()
    db.create_table(
        TableSchema.of("E", [
            Attribute.int_("EK"), Attribute.char("PAY", 8),
        ]),
        engine="lsm",
        key_column="EK",
    )
    db.load_table("E", [(1, "e1")])
    registry.add_foreign_key("E", "EK", "P", "K", OnDelete.SET_NULL)
    with pytest.raises(PlanningError, match="SET NULL against LSM"):
        cascade_bulk_delete(db, registry, "P", "K", [1])

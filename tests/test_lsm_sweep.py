"""Crash-mid-compaction sweep for the LSM engine (bounded variants).

The full sweep (every durable event, plain and torn) runs in CI via
``python -m repro faultsweep --lsm``; these tests keep a bounded
version in the tier-1 suite so a durability regression — a tombstone
resurrecting a row after recovery, a torn log page destroying an
acknowledged write — fails fast and close to the code.
"""

import dataclasses

from repro.lsm import LsmSweepScenario, lsm_crash_sweep


def test_bounded_lsm_sweep_is_clean():
    report = lsm_crash_sweep(max_points=8)
    assert report.durable_events > 0
    assert len(report.points) == 8
    assert report.ok, report.failures


def test_bounded_torn_lsm_sweep_is_clean():
    report = lsm_crash_sweep(
        scenario=LsmSweepScenario(torn=True), max_points=8
    )
    assert report.ok, report.failures


def test_sweep_scenario_is_deterministic():
    scenario = LsmSweepScenario()
    a, b = scenario.build(), scenario.build()
    assert a.keys == b.keys
    assert a.state() == b.state()
    # The sweep relies on event k landing on the same page write in
    # every rebuild; identical durable images imply identical timelines.
    assert a.db.disk.stats.writes == b.db.disk.stats.writes


def test_smaller_scenario_still_exercises_flush_and_compaction():
    scenario = dataclasses.replace(LsmSweepScenario(), records=48)
    case = scenario.build()
    tree = case.tree
    # The scenario's tiny config makes the delete itself flush and
    # compact — the sweep must cut inside those windows, not just
    # between log appends.
    assert tree.run_count > 0
    report = lsm_crash_sweep(scenario=scenario, max_points=4)
    assert report.ok, report.failures

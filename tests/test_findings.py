"""`analysis/findings.py`: JSON round-trip, ordering, render shape."""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.findings import (
    Finding,
    Severity,
    errors,
    render_findings,
    sort_findings,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
_text = st.text(
    # no surrogates, no control/line-separator chars (renders are
    # asserted to be one line each)
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc", "Zl", "Zp")
    ),
    max_size=40,
)
_findings = st.builds(
    Finding,
    rule_id=st.sampled_from(
        ["code/wall-clock", "plan/missing-step", "effect/analysis-pure"]
    ),
    severity=st.sampled_from(list(Severity)),
    node=_text,
    message=_text,
    file=st.one_of(st.none(), _text),
    line=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
)


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------
def test_round_trip_simple():
    f = Finding(
        "code/wall-clock",
        Severity.ERROR,
        "time.time",
        "host clock",
        file="core/executor.py",
        line=42,
    )
    assert Finding.from_dict(f.to_dict()) == f


def test_round_trip_omits_optional_fields():
    f = Finding("plan/x", Severity.WARNING, "step", "msg")
    data = f.to_dict()
    assert "file" not in data and "line" not in data
    assert Finding.from_dict(data) == f


@given(_findings)
def test_round_trip_property(finding):
    # Through an actual JSON encode/decode, not just dicts.
    decoded = Finding.from_dict(json.loads(json.dumps(finding.to_dict())))
    assert decoded == finding


# ---------------------------------------------------------------------------
# sorting: stable, deterministic, input-order independent
# ---------------------------------------------------------------------------
def test_sort_orders_by_file_line_rule():
    a = Finding("code/b", Severity.ERROR, "n", "m", file="a.py", line=9)
    b = Finding("code/a", Severity.ERROR, "n", "m", file="a.py", line=9)
    c = Finding("code/a", Severity.ERROR, "n", "m", file="a.py", line=2)
    d = Finding("plan/x", Severity.ERROR, "n", "m")  # file-less first
    assert sort_findings([a, b, c, d]) == [d, c, b, a]


@given(st.lists(_findings, max_size=12))
def test_sort_is_permutation_invariant(findings):
    assert sort_findings(findings) == sort_findings(
        list(reversed(findings))
    )


@given(st.lists(_findings, max_size=12))
def test_sort_round_trips_through_json(findings):
    # Sorting then serializing is byte-stable: same set, same report.
    blob = json.dumps(
        [f.to_dict() for f in sort_findings(findings)], sort_keys=True
    )
    blob2 = json.dumps(
        [
            f.to_dict()
            for f in sort_findings(list(reversed(findings)))
        ],
        sort_keys=True,
    )
    assert blob == blob2


# ---------------------------------------------------------------------------
# render: every rendered finding carries rule id, path, line
# ---------------------------------------------------------------------------
@given(_findings)
def test_render_always_carries_rule_and_location(finding):
    text = finding.render()
    assert finding.rule_id in text
    assert finding.severity.value.upper() in text
    if finding.file is not None:
        assert finding.file in text
        assert f":{finding.line or 0}" in text
    else:
        assert finding.node in text


@given(st.lists(_findings, min_size=1, max_size=8))
def test_render_findings_one_line_each(findings):
    # The strategy generates no line-break characters, so the text
    # report has exactly one line per finding.
    assert len(render_findings(findings).splitlines()) == len(findings)


def test_errors_filters_severity():
    e = Finding("a/b", Severity.ERROR, "n", "m")
    w = Finding("a/c", Severity.WARNING, "n", "m")
    i = Finding("a/d", Severity.INFO, "n", "m")
    assert errors([w, e, i]) == [e]

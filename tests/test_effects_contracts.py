"""The layering-contract engine: seeding, propagation, contracts.

The headline case (ISSUE acceptance): a helper inside ``faults/``
wraps ``raise SimulatedCrash``, and engine code outside ``faults/``
calls the helper.  The direct-call lint (``code/crash-outside-faults``)
sees no ``raise`` statement outside ``faults/`` and stays silent; the
effect engine propagates ``crash.raise`` through the wrapper and flags
the out-of-layer caller with the full call chain.

The final tests are the repo gate: the real tree has zero
non-baselined contract violations, and every baseline entry still
suppresses something.
"""

import textwrap
from pathlib import Path

from repro.analysis.code_lint import default_root, lint_source
from repro.analysis.effects import (
    STALE_BASELINE_RULE,
    analyze_effects,
    build_effect_graph,
)
from repro.analysis.effects.baseline import BaselineEntry
from repro.analysis.effects.contracts import EFFECT_RULES, check_contracts
from repro.analysis.effects.lattice import witness_chain


def make_pkg(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for sub in [root] + [d for d in root.rglob("*") if d.is_dir()]:
        if not (sub / "__init__.py").exists():
            (sub / "__init__.py").write_text("")
    return root


LAUNDERING = {
    "faults/helpers.py": """
    class SimulatedCrash(Exception):
        pass

    def boom():
        # Inside faults/ — the direct-call lint allows this raise.
        raise SimulatedCrash("armed")
    """,
    "core/thing.py": """
    from pkg.faults.helpers import boom

    def sneaky():
        # No raise statement here: the line lint sees nothing, but
        # calling boom() reaches crash.raise transitively.
        return boom()
    """,
}


def test_wrapper_laundering_passes_direct_call_lint(tmp_path):
    root = make_pkg(tmp_path, LAUNDERING)
    findings = lint_source(
        (root / "core" / "thing.py").read_text(),
        filename="core/thing.py",
    )
    assert findings == []  # the case the line lint cannot see


def test_wrapper_laundering_caught_by_effect_engine(tmp_path):
    root = make_pkg(tmp_path, LAUNDERING)
    report = analyze_effects(root, baseline=())
    crash = [
        f
        for f in report.findings
        if f.rule_id == "effect/crash-confinement"
    ]
    assert len(crash) == 1
    finding = crash[0]
    assert finding.node == "pkg.core.thing.sneaky"
    assert finding.file == "core/thing.py"
    # The finding message carries the full call chain to the raise.
    assert "core.thing.sneaky -> faults.helpers.boom" in finding.message
    assert "raises SimulatedCrash" in finding.message


def test_effect_propagates_through_many_wrappers(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "faults/deep.py": """
            class SimulatedCrash(Exception):
                pass

            def level0():
                raise SimulatedCrash("x")
            """,
            "core/wrap.py": """
            from pkg.faults.deep import level0

            def level1():
                return level0()

            def level2():
                return level1()

            def level3():
                return level2()
            """,
        },
    )
    graph = build_effect_graph(root)
    assert "crash.raise" in graph.functions["pkg.core.wrap.level3"].effects
    chain = witness_chain(graph, "pkg.core.wrap.level3", "crash.raise")
    assert chain == [
        "pkg.core.wrap.level3",
        "pkg.core.wrap.level2",
        "pkg.core.wrap.level1",
        "pkg.faults.deep.level0",
    ]


def test_frontier_reporting_flags_entry_point_only(tmp_path):
    # Three analysis functions call each other then leak into a write;
    # only the innermost (where the effect enters the scope) is
    # flagged, not its whole in-scope caller tree.
    root = make_pkg(
        tmp_path,
        {
            "storage/disk.py": """
            class SimulatedDisk:
                def write_page(self, pid, data):
                    return None
            """,
            "analysis/stack.py": """
            def inner():
                self_disk = None
                disk.write_page(1, b"")

            def middle():
                inner()

            def outer():
                middle()
            """,
        },
    )
    report = analyze_effects(root, baseline=())
    pure = [
        f
        for f in report.findings
        if f.rule_id == "effect/analysis-pure"
    ]
    assert [f.node for f in pure] == ["pkg.analysis.stack.inner"]


def test_barrier_absorbs_effect(tmp_path):
    # read_page raising a media error is the sanctioned fault surface:
    # its callers must NOT inherit media_error.raise.
    root = make_pkg(
        tmp_path,
        {
            "storage/disk.py": """
            class ChecksumMismatch(Exception):
                pass

            class SimulatedDisk:
                def read_page(self, pid):
                    raise ChecksumMismatch(pid)
            """,
            "core/reader.py": """
            def read_all(disk):
                disk.read_page(0)
            """,
        },
    )
    graph = build_effect_graph(root)
    raw = graph.functions["pkg.storage.disk.SimulatedDisk.read_page"]
    caller = graph.functions["pkg.core.reader.read_all"]
    assert "media_error.raise" in raw.effects
    assert "media_error.raise" not in caller.effects


def test_exempt_prefix_not_flagged(tmp_path):
    root = make_pkg(
        tmp_path,
        {
            "faults/own.py": """
            class SimulatedCrash(Exception):
                pass

            def trip():
                raise SimulatedCrash("fine here")
            """,
        },
    )
    report = analyze_effects(root, baseline=())
    assert [
        f
        for f in report.findings
        if f.rule_id == "effect/crash-confinement"
    ] == []


def test_baseline_suppresses_and_reports(tmp_path):
    root = make_pkg(tmp_path, LAUNDERING)
    entry = BaselineEntry(
        rule_id="effect/crash-confinement",
        qualname="core.thing.sneaky",
        reason="test fixture",
    )
    report = analyze_effects(root, baseline=(entry,))
    assert [
        f
        for f in report.findings
        if f.rule_id == "effect/crash-confinement"
    ] == []
    assert any(
        f.rule_id == "effect/crash-confinement"
        for f in report.suppressed
    )


def test_stale_baseline_entry_is_an_error(tmp_path):
    root = make_pkg(
        tmp_path,
        {"core/quiet.py": "def nothing():\n    return 0\n"},
    )
    entry = BaselineEntry(
        rule_id="effect/crash-confinement",
        qualname="core.gone.function",
        reason="the code this excused was deleted",
    )
    report = analyze_effects(root, baseline=(entry,))
    stale = [
        f for f in report.findings if f.rule_id == STALE_BASELINE_RULE
    ]
    assert len(stale) == 1
    assert "core.gone.function" in stale[0].node


def test_contract_table_reexpresses_line_lint_rules():
    # The four direct-call confinement rules all have a reachability
    # counterpart, plus the contracts the line lint cannot express.
    assert {
        "effect/crash-confinement",
        "effect/clock-rewind-confinement",
        "effect/media-error-confinement",
        "effect/metrics-confinement",
        "effect/analysis-pure",
        "effect/obs-passive",
        "effect/planner-estimates-pure",
        "effect/no-global-rng",
        "effect/wall-clock-confinement",
    } <= set(EFFECT_RULES)
    for entry in EFFECT_RULES.values():
        assert entry.description
        assert entry.forbid


# ---------------------------------------------------------------------------
# the repo gate
# ---------------------------------------------------------------------------
def test_real_repo_zero_nonbaselined_violations():
    report = analyze_effects(default_root())
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )


def test_real_repo_baseline_all_used():
    # Covered by the stale-baseline error in the gate above, but pin
    # it separately so a failure names the mechanism.
    report = analyze_effects(default_root())
    assert not [
        f
        for f in report.findings
        if f.rule_id == STALE_BASELINE_RULE
    ]
    assert report.suppressed  # the baseline is earning its keep


def test_real_repo_planner_estimators_are_pure():
    graph = build_effect_graph(default_root())
    for name in (
        "estimate_horizontal_ms",
        "estimate_vertical_ms",
        "estimate_vertical_parallel_ms",
    ):
        node = graph.functions[f"repro.core.planner.{name}"]
        assert not node.effects & {
            "disk.read",
            "disk.write",
            "wal.append",
            "clock.advance",
            "clock.rewind",
        }, (name, node.effects)


def test_real_repo_core_paths_carry_io_effects():
    # Sanity against silent under-approximation: if the engine stopped
    # seeing I/O in the executor, every contract above would pass
    # vacuously.
    graph = build_effect_graph(default_root())
    bulk = graph.functions["repro.core.executor.bulk_delete"]
    assert {"disk.read", "disk.write", "wal.append"} <= bulk.effects

"""The OLTP traffic harness (:mod:`repro.workload.traffic`).

The methodology's teeth: fixed seeds fix entire timelines bit-for-bit;
the exact latency histograms merge losslessly; a single session with no
delete reproduces the single-user primitive costs to the last bit; and
every run reconciles its histograms, spans and ``oltp.*`` metrics with
no epsilon anywhere.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.observer import Observer
from repro.workload.generator import WorkloadConfig, build_workload
from repro.workload.traffic import (
    STALL_LANE,
    STALL_LOCK,
    LatencyHistogram,
    TrafficConfig,
    apply_pad_update,
    apply_plain_insert,
    apply_point_read,
    build_interference_report,
    make_strategy,
    run_interference_comparison,
    run_oltp,
)

SMALL = dict(record_count=600, index_columns=("A", "B"))


def small_workload():
    return build_workload(WorkloadConfig(**SMALL))


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ReproError):
        TrafficConfig(sessions=0)
    with pytest.raises(ReproError):
        TrafficConfig(think_ms=0.0)
    with pytest.raises(ReproError):
        TrafficConfig(read_fraction=0.8, update_fraction=0.4)


def test_session_rngs_are_stable_and_distinct():
    config = TrafficConfig(seed=7)
    a = [config.session_rng(0).random() for _ in range(4)]
    b = [config.session_rng(0).random() for _ in range(4)]
    c = [config.session_rng(1).random() for _ in range(4)]
    assert a == b
    assert a != c


# ----------------------------------------------------------------------
# exact histograms
# ----------------------------------------------------------------------
def test_percentile_nearest_rank_exact():
    hist = LatencyHistogram()
    for v in [10.0, 20.0, 30.0, 40.0, 50.0]:
        hist.record(v)
    assert hist.percentile(50) == 30.0
    assert hist.percentile(20) == 10.0
    assert hist.percentile(20.0001) == 20.0
    assert hist.percentile(100) == 50.0
    assert hist.percentile(99) == 50.0
    assert hist.max_ms == 50.0  # lint: allow(float-cost-eq)
    with pytest.raises(ReproError):
        hist.percentile(0)
    with pytest.raises(ReproError):
        LatencyHistogram().record(-1.0)
    assert LatencyHistogram().percentile(50) == 0.0


@given(
    st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            max_size=30,
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_merged_per_session_histograms_equal_global(sessions):
    """Merging per-session histograms reproduces the global one
    exactly, whatever the values and however they are distributed."""
    per_session = []
    global_hist = LatencyHistogram()
    for values in sessions:
        hist = LatencyHistogram()
        for v in values:
            hist.record(v)
            global_hist.record(v)
        per_session.append(hist)
    merged = LatencyHistogram.merged(per_session)
    assert merged == global_hist
    assert merged.count == global_hist.count
    # total_ms is fsum over the sorted multiset: order-independent, so
    # the merge direction cannot perturb it.  Exactness is the point.
    assert merged.total_ms == global_hist.total_ms  # lint: allow(float-cost-eq)
    for p in (50, 95, 99, 100):
        assert merged.percentile(p) == global_hist.percentile(p)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=50,
    ),
    st.floats(min_value=0.001, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_percentile_matches_reference(values, p):
    """Nearest-rank percentile agrees with the textbook definition on
    the sorted list of raw values."""
    hist = LatencyHistogram()
    for v in values:
        hist.record(v)
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    assert hist.percentile(p) == ordered[rank - 1]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_fixed_seed_fixes_the_entire_timeline():
    config = TrafficConfig(sessions=3, ops_per_session=8, seed=99)
    runs = []
    for _ in range(2):
        result = run_oltp(small_workload(), config, strategy="sidefile")
        runs.append(result)
    a, b = runs
    assert len(a.ops) == len(b.ops) == config.total_ops
    for x, y in zip(a.ops, b.ops):
        # Bit-identical replay is the property under test.
        assert (
            x.session, x.seq, x.kind, x.key, x.values,
            x.arrival_ms, x.stall_from_ms, x.stall_to_ms,
            x.start_ms, x.end_ms, x.stall_kind, x.phase,
        ) == (
            y.session, y.seq, y.kind, y.key, y.values,
            y.arrival_ms, y.stall_from_ms, y.stall_to_ms,
            y.start_ms, y.end_ms, y.stall_kind, y.phase,
        )
    assert a.global_hist == b.global_hist
    for p in (50, 95, 99):
        assert a.global_hist.percentile(p) == b.global_hist.percentile(p)
    assert [(s.label, s.start_ms, s.end_ms) for s in a.slices] == [
        (s.label, s.start_ms, s.end_ms) for s in b.slices
    ]


def test_different_seeds_differ():
    base = dict(sessions=3, ops_per_session=8)
    a = run_oltp(small_workload(), TrafficConfig(seed=1, **base),
                 strategy=None)
    b = run_oltp(small_workload(), TrafficConfig(seed=2, **base),
                 strategy=None)
    assert [op.arrival_ms for op in a.ops] != [op.arrival_ms for op in b.ops]


# ----------------------------------------------------------------------
# single-user regression: the harness adds nothing
# ----------------------------------------------------------------------
def test_single_session_no_delete_matches_primitive_replay():
    """sessions=1 with no delete is exactly the single-user system:
    replaying the same op sequence with the bare primitives on an
    identical workload reproduces every service time bit-for-bit."""
    config = TrafficConfig(sessions=1, ops_per_session=25, seed=5)
    result = run_oltp(small_workload(), config, strategy=None)
    assert len(result.ops) == 25
    for op in result.ops:
        assert op.stall_kind is None
        assert op.delete_stall_ms == 0.0  # lint: allow(float-cost-eq)
        assert op.peer_wait_ms == 0.0  # lint: allow(float-cost-eq)
        assert op.start_ms == op.arrival_ms  # lint: allow(float-cost-eq)

    replay = small_workload()
    db = replay.db
    for op in result.ops:
        # Advance to the op's arrival exactly as the driver's idle path
        # does (now + (arrival - now) from the previous op's end), so
        # identical charge sequences land on identical timestamps —
        # the harness may not add a millisecond, to the last bit.
        db.clock.advance_ms(op.arrival_ms - db.clock.now_ms)
        assert db.clock.now_ms == op.start_ms  # lint: allow(float-cost-eq)
        if op.kind == "read":
            apply_point_read(db, "R", "A", op.key)
        elif op.kind == "update":
            apply_pad_update(db, "R", "A", op.key)
        else:
            apply_plain_insert(db, "R", op.values)
        assert db.clock.now_ms == op.end_ms  # lint: allow(float-cost-eq)

    # And the final logical states agree row for row.
    original = sorted(v for _, v in result.workload.db.scan("R"))
    replayed = sorted(v for _, v in db.scan("R"))
    assert original == replayed


# ----------------------------------------------------------------------
# stall attribution
# ----------------------------------------------------------------------
def run_contended(strategy):
    workload = build_workload(WorkloadConfig(record_count=900,
                                             index_columns=("A", "B")))
    Observer.attach(workload.db)
    config = TrafficConfig(sessions=5, ops_per_session=18, seed=1042)
    return run_oltp(workload, config, strategy=strategy, fraction=0.2)


def test_sidefile_stall_attribution_and_reconcile():
    result = run_contended("sidefile")
    assert result.records_deleted > 0
    kinds = {s.stall_kind for s in result.slices}
    assert kinds == {STALL_LOCK, STALL_LANE}
    # Exactly one critical (lock) slice; its waiters are lock stalls.
    lock_slices = [s for s in result.slices if s.stall_kind == STALL_LOCK]
    assert len(lock_slices) == 1
    stalled = [op for op in result.ops if op.stall_kind is not None]
    assert stalled, "a contended run must stall someone"
    for op in stalled:
        # The attributed interval is a genuine slice overlap.
        assert op.arrival_ms <= op.stall_from_ms <= op.stall_to_ms
        assert op.stall_to_ms <= op.start_ms
        matching = [
            s for s in result.slices
            if s.end_ms == op.stall_to_ms  # lint: allow(float-cost-eq)
            and s.stall_kind == op.stall_kind
        ]
        assert matching, "stall interval must end at a slice boundary"
    assert result.reconcile(result.workload.db.obs) == []


def test_chunked_stall_attribution_and_reconcile():
    result = run_contended("chunked")
    assert result.records_deleted > 0
    # Every chunk slice is engine occupancy, never a table lock.
    assert {s.stall_kind for s in result.slices} == {STALL_LANE}
    assert all(op.stall_kind != STALL_LOCK for op in result.ops)
    assert any(op.stall_kind == STALL_LANE for op in result.ops)
    assert result.reconcile(result.workload.db.obs) == []


def test_phases_partition_the_ops():
    result = run_contended("sidefile")
    phases = [result.ops_in_phase(p) for p in ("before", "during", "after")]
    assert sum(len(ops) for ops in phases) == len(result.ops)
    assert all(len(ops) > 0 for ops in phases)
    submit, end = result.delete_submit_ms, result.delete_end_ms
    assert submit is not None and end is not None and submit < end
    for op in result.ops_in_phase("before"):
        assert op.end_ms <= submit
    for op in result.ops_in_phase("after"):
        assert op.arrival_ms >= end


# ----------------------------------------------------------------------
# the interference report + comparison
# ----------------------------------------------------------------------
def test_interference_report_renders_and_reconciles():
    results = run_interference_comparison(
        record_count=900, sessions=4, ops_per_session=15, seed=1042,
        fraction=0.2,
    )
    for name, result in results.items():
        assert result.reconcile(result.workload.db.obs) == []
        report = build_interference_report(result)
        text = report.render()
        assert f"strategy={name}" in text
        assert "stalls: lock" in text
        assert "buffer pressure" in text
        assert report.slice_count == len(result.slices)
        # The stall totals decompose the recorded waits exactly.
        assert report.stall_lock_ms == math.fsum(  # lint: allow(float-cost-eq)
            op.delete_stall_ms for op in result.ops
            if op.stall_kind == STALL_LOCK
        )
    # Identical traffic, identical rows deleted — only the interference
    # differs between the strategies.
    assert (
        results["sidefile"].records_deleted
        == results["chunked"].records_deleted
        > 0
    )


def test_make_strategy_names():
    assert make_strategy(None) is None
    assert make_strategy("sidefile").name == "sidefile"
    assert make_strategy("chunked", chunk_rows=16).chunk_rows == 16
    with pytest.raises(ReproError):
        make_strategy("bogus")


def test_inserts_during_propagation_survive():
    """Inserts routed through the §3 side-file while indexes are
    off-line are present and indexed once the delete completes."""
    result = run_contended("sidefile")
    inserted = [
        op.values for op in result.ops
        if op.kind == "insert" and op.values is not None
    ]
    assert inserted
    db = result.workload.db
    rows = {v for _, v in db.scan("R")}
    for values in inserted:
        assert tuple(values) in rows
    # Index agreement over the final state (entry sets match the heap).
    table = db.table("R")
    for name, ix in table.indexes.items():
        expected = sorted(
            (ix.key_for(v, table.schema), rid.pack())
            for rid, v in db.scan("R")
        )
        assert sorted(ix.tree.items()) == expected, name

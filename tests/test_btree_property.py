"""Property-based tests: the B-link tree against a reference model.

Hypothesis drives random operation sequences and cross-checks every
result against a plain sorted-list model, then validates all structural
invariants.  This is the main line of defence for the tree code the
whole reproduction sits on.
"""

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.btree.maintenance import validate_tree
from repro.btree.tree import BLinkTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(leaf_cap=4, inner_cap=4):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=256)
    return BLinkTree(
        pool, max_leaf_entries=leaf_cap, max_inner_entries=inner_cap
    )


keys = st.integers(min_value=-50, max_value=50)
values = st.integers(min_value=0, max_value=7)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, values), max_size=120))
def test_inserts_match_sorted_model(pairs):
    tree = make_tree()
    for key, value in pairs:
        tree.insert(key, value)
    items = list(tree.items())
    # Same multiset of entries, in key order.  Values of duplicate keys
    # are only locally ordered (duplicates may span leaves).
    assert sorted(items) == sorted(pairs)
    assert [k for k, _ in items] == sorted(k for k, _ in pairs)
    validate_tree(tree)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(keys, values), unique=True, max_size=100),
    st.data(),
)
def test_insert_then_delete_subset(pairs, data):
    tree = make_tree()
    for key, value in pairs:
        tree.insert(key, value)
    to_delete = data.draw(st.lists(st.sampled_from(pairs), unique=True)
                          if pairs else st.just([]))
    for key, value in to_delete:
        assert tree.delete(key, value)
    expected = sorted(set(pairs) - set(to_delete))
    items = list(tree.items())
    assert sorted(items) == expected
    assert [k for k, _ in items] == [k for k, _ in expected]
    validate_tree(tree)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys, values), unique=True, max_size=120))
def test_bulk_load_equals_incremental(pairs):
    loaded = make_tree()
    loaded.bulk_load(sorted(pairs))
    incremental = make_tree()
    for key, value in pairs:
        incremental.insert(key, value)
    assert sorted(loaded.items()) == sorted(incremental.items())
    validate_tree(loaded)
    validate_tree(incremental)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(keys, values), unique=True, max_size=100),
    st.integers(min_value=-60, max_value=60),
    st.integers(min_value=-60, max_value=60),
)
def test_range_scan_matches_model(pairs, lo, hi):
    tree = make_tree()
    tree.bulk_load(sorted(pairs))
    expected = sorted((k, v) for k, v in pairs if lo <= k <= hi)
    assert list(tree.range_scan(lo, hi)) == expected


class TreeMachine(RuleBasedStateMachine):
    """Stateful test: arbitrary interleavings of insert/delete/search."""

    def __init__(self):
        super().__init__()
        self.tree = make_tree()
        self.model: List[Tuple[int, int]] = []
        self._value_counter = 0

    @rule(key=keys)
    def insert(self, key):
        self._value_counter += 1
        value = self._value_counter
        self.tree.insert(key, value)
        self.model.append((key, value))

    @rule(key=keys)
    def delete_any_with_key(self, key):
        matching = sorted(v for k, v in self.model if k == key)
        if matching:
            assert self.tree.delete(key, matching[0])
            self.model.remove((key, matching[0]))
        else:
            assert not self.tree.delete(key)

    @rule(key=keys)
    def search(self, key):
        expected = sorted(v for k, v in self.model if k == key)
        assert sorted(self.tree.search(key)) == expected

    @invariant()
    def counts_agree(self):
        assert self.tree.entry_count == len(self.model)

    @invariant()
    def structure_valid(self):
        validate_tree(self.tree)


TestTreeMachine = TreeMachine.TestCase
TestTreeMachine.settings = settings(
    max_examples=25,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

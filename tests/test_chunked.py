"""The chunked ``DELETE ... LIMIT n`` baseline (:mod:`repro.core.chunked`).

Correctness (same final state as the vertical plan), chunk accounting
(sizes, durable progress writes), stepwise resumability, and the
planner's cost estimate for it.
"""

import math

import pytest

from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.core.chunked import ChunkedDelete, chunked_delete
from repro.core.executor import bulk_delete
from repro.core.planner import estimate_chunked_ms, estimate_horizontal_ms
from repro.errors import PlanningError
from repro.workload.generator import WorkloadConfig, build_workload


def fresh(record_count=400):
    wl = build_workload(WorkloadConfig(
        record_count=record_count, index_columns=("A", "B")
    ))
    return wl, wl.delete_keys(0.2)


def logical(db):
    rows = sorted(v for _, v in db.scan("R"))
    table = db.table("R")
    indexes = {
        name: sorted(k for k, _ in ix.tree.items())
        for name, ix in table.indexes.items()
    }
    return rows, table.heap.record_count, indexes


def test_chunked_matches_bulk_delete_final_state():
    wl_chunk, keys = fresh()
    result = chunked_delete(wl_chunk.db, "R", "A", keys, chunk_rows=32)
    wl_bulk, keys_b = fresh()
    assert keys == keys_b
    bulk = bulk_delete(wl_bulk.db, "R", "A", keys_b, force_vertical=True)
    assert result.records_deleted == bulk.records_deleted == len(keys)
    assert logical(wl_chunk.db) == logical(wl_bulk.db)


def test_chunk_accounting():
    wl, keys = fresh()
    result = chunked_delete(wl.db, "R", "A", keys, chunk_rows=32)
    expected_chunks = math.ceil(len(keys) / 32)
    assert result.chunk_count == expected_chunks
    # One durable progress write per chunk — the accounting half.
    assert result.progress_writes == expected_chunks
    assert sum(c.rows for c in result.chunks) == len(keys)
    assert all(c.rows <= 32 for c in result.chunks)
    # Running totals are monotone and end at the full count.
    totals = [c.deleted_total for c in result.chunks]
    assert totals == sorted(totals)
    assert totals[-1] == len(keys)
    # Chunks are committed in key order and cost simulated time.
    assert all(c.elapsed_ms > 0 for c in result.chunks)
    assert result.elapsed_ms > 0


def test_stepwise_interleaving_is_resumable():
    """run_chunk() steps the statement one chunk at a time; arbitrary
    work interleaved between chunks does not disturb it."""
    wl, keys = fresh()
    ex = ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=50)
    steps = 0
    while not ex.done:
        before = ex.remaining
        stats = ex.run_chunk()
        assert stats is not None
        assert ex.remaining == before - stats.rows
        steps += 1
        # Interleaved reader between chunks: deleted keys are really
        # gone, survivors still reachable.
        table = wl.db.table("R")
        tree = table.indexes_on("A")[0].tree
        gone = set(keys[: ex.result.records_deleted])
        assert not any(tree.search(k) for k in sorted(gone)[:3])
    assert steps == math.ceil(len(keys) / 50)
    assert ex.run_chunk() is None
    assert ex.remaining == 0


def test_progress_record_never_truncates():
    """Regression: a long table name plus a large counter used to be
    silently cut to 32 bytes, corrupting the resume counter.  The
    record is now sized per statement and round-trips exactly."""
    name = "a_rather_long_fact_table_name_for_chunked_deletes"
    assert len(name) > ChunkedDelete.PROGRESS_RECORD_BYTES
    db = Database(page_size=4096, memory_bytes=64 * 4096)
    db.create_table(TableSchema.of(
        name, [Attribute.int_("A"), Attribute.char("PAD", 8)]
    ))
    n = 120
    db.load_table(name, [(i, "p") for i in range(n)])
    db.create_index(name, "A", unique=True)
    ex = ChunkedDelete(db, name, "A", list(range(n)), chunk_rows=50)
    result = ex.run()
    assert result.records_deleted == n
    # The durable record holds the full name and the exact counter.
    stored = ex._progress_heap.read(ex._progress_rid).decode("ascii")
    assert stored.rstrip(" ") == f"{name}:{n}"
    assert len(stored) >= len(name) + 1 + ChunkedDelete.PROGRESS_COUNTER_DIGITS


def test_progress_record_short_name_keeps_floor_size():
    """The default floor still applies to short names, so existing
    workloads pay the same accounting I/O as before."""
    wl, keys = fresh(120)
    ex = ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=50)
    ex.run()
    stored = ex._progress_heap.read(ex._progress_rid)
    assert len(stored) == ChunkedDelete.PROGRESS_RECORD_BYTES
    assert stored.decode("ascii").rstrip(" ") == f"R:{len(keys)}"


def test_elapsed_ms_includes_final_flush():
    """Regression: ``elapsed_ms`` used to end at the last chunk's end,
    attributing the final ``db.flush()`` of ``run()`` to nothing."""
    wl, keys = fresh()
    ex = ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=32)
    result = ex.run()
    assert result.flushed_ms is not None
    assert result.flushed_ms == wl.db.clock.now_ms  # lint: allow(float-cost-eq)
    chunk_window = result.chunks[-1].end_ms - result.chunks[0].start_ms
    # The flush dirtied pages, so the accounted window strictly grows.
    assert result.elapsed_ms > chunk_window


def test_elapsed_ms_without_run_flush_is_chunk_window():
    """Stepping chunks by hand (the traffic driver's mode) leaves the
    flush to the caller; the window then ends at the last chunk."""
    wl, keys = fresh(120)
    ex = ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=50)
    while ex.run_chunk() is not None:
        pass
    result = ex.result
    assert result.flushed_ms is None
    assert result.elapsed_ms == (  # lint: allow(float-cost-eq)
        result.chunks[-1].end_ms - result.chunks[0].start_ms
    )


def test_chunked_validation():
    wl, keys = fresh(120)
    with pytest.raises(PlanningError):
        ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=0)
    with pytest.raises(PlanningError):
        ChunkedDelete(wl.db, "R", "C", keys)  # no index on C


def test_estimate_chunked_ms():
    wl, keys = fresh()
    table = wl.db.table("R")
    n = len(keys)
    base = estimate_horizontal_ms(wl.db, table, n, presorted=True)
    est = estimate_chunked_ms(wl.db, table, n, chunk_rows=32)
    # The estimate is the presorted horizontal base plus one random
    # positioning per chunk for the progress write.
    chunks = math.ceil(n / 32)
    random_ms = wl.db.disk.parameters.random_ms(wl.db.page_size)
    assert est.io_ms == base.io_ms + chunks * random_ms  # lint: allow(float-cost-eq)
    assert "chunk" in est.detail
    # More chunks -> strictly more overhead.
    finer = estimate_chunked_ms(wl.db, table, n, chunk_rows=8)
    assert finer.io_ms > est.io_ms
    with pytest.raises(PlanningError):
        estimate_chunked_ms(wl.db, table, n, chunk_rows=0)


def test_estimate_zero_deletes_has_no_progress_cost():
    wl, _ = fresh(120)
    table = wl.db.table("R")
    base = estimate_horizontal_ms(wl.db, table, 0, presorted=True)
    est = estimate_chunked_ms(wl.db, table, 0)
    assert est.io_ms == base.io_ms  # lint: allow(float-cost-eq)

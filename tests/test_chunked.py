"""The chunked ``DELETE ... LIMIT n`` baseline (:mod:`repro.core.chunked`).

Correctness (same final state as the vertical plan), chunk accounting
(sizes, durable progress writes), stepwise resumability, and the
planner's cost estimate for it.
"""

import math

import pytest

from repro.core.chunked import ChunkedDelete, chunked_delete
from repro.core.executor import bulk_delete
from repro.core.planner import estimate_chunked_ms, estimate_horizontal_ms
from repro.errors import PlanningError
from repro.workload.generator import WorkloadConfig, build_workload


def fresh(record_count=400):
    wl = build_workload(WorkloadConfig(
        record_count=record_count, index_columns=("A", "B")
    ))
    return wl, wl.delete_keys(0.2)


def logical(db):
    rows = sorted(v for _, v in db.scan("R"))
    table = db.table("R")
    indexes = {
        name: sorted(k for k, _ in ix.tree.items())
        for name, ix in table.indexes.items()
    }
    return rows, table.heap.record_count, indexes


def test_chunked_matches_bulk_delete_final_state():
    wl_chunk, keys = fresh()
    result = chunked_delete(wl_chunk.db, "R", "A", keys, chunk_rows=32)
    wl_bulk, keys_b = fresh()
    assert keys == keys_b
    bulk = bulk_delete(wl_bulk.db, "R", "A", keys_b, force_vertical=True)
    assert result.records_deleted == bulk.records_deleted == len(keys)
    assert logical(wl_chunk.db) == logical(wl_bulk.db)


def test_chunk_accounting():
    wl, keys = fresh()
    result = chunked_delete(wl.db, "R", "A", keys, chunk_rows=32)
    expected_chunks = math.ceil(len(keys) / 32)
    assert result.chunk_count == expected_chunks
    # One durable progress write per chunk — the accounting half.
    assert result.progress_writes == expected_chunks
    assert sum(c.rows for c in result.chunks) == len(keys)
    assert all(c.rows <= 32 for c in result.chunks)
    # Running totals are monotone and end at the full count.
    totals = [c.deleted_total for c in result.chunks]
    assert totals == sorted(totals)
    assert totals[-1] == len(keys)
    # Chunks are committed in key order and cost simulated time.
    assert all(c.elapsed_ms > 0 for c in result.chunks)
    assert result.elapsed_ms > 0


def test_stepwise_interleaving_is_resumable():
    """run_chunk() steps the statement one chunk at a time; arbitrary
    work interleaved between chunks does not disturb it."""
    wl, keys = fresh()
    ex = ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=50)
    steps = 0
    while not ex.done:
        before = ex.remaining
        stats = ex.run_chunk()
        assert stats is not None
        assert ex.remaining == before - stats.rows
        steps += 1
        # Interleaved reader between chunks: deleted keys are really
        # gone, survivors still reachable.
        table = wl.db.table("R")
        tree = table.indexes_on("A")[0].tree
        gone = set(keys[: ex.result.records_deleted])
        assert not any(tree.search(k) for k in sorted(gone)[:3])
    assert steps == math.ceil(len(keys) / 50)
    assert ex.run_chunk() is None
    assert ex.remaining == 0


def test_chunked_validation():
    wl, keys = fresh(120)
    with pytest.raises(PlanningError):
        ChunkedDelete(wl.db, "R", "A", keys, chunk_rows=0)
    with pytest.raises(PlanningError):
        ChunkedDelete(wl.db, "R", "C", keys)  # no index on C


def test_estimate_chunked_ms():
    wl, keys = fresh()
    table = wl.db.table("R")
    n = len(keys)
    base = estimate_horizontal_ms(wl.db, table, n, presorted=True)
    est = estimate_chunked_ms(wl.db, table, n, chunk_rows=32)
    # The estimate is the presorted horizontal base plus one random
    # positioning per chunk for the progress write.
    chunks = math.ceil(n / 32)
    random_ms = wl.db.disk.parameters.random_ms(wl.db.page_size)
    assert est.io_ms == base.io_ms + chunks * random_ms  # lint: allow(float-cost-eq)
    assert "chunk" in est.detail
    # More chunks -> strictly more overhead.
    finer = estimate_chunked_ms(wl.db, table, n, chunk_rows=8)
    assert finer.io_ms > est.io_ms
    with pytest.raises(PlanningError):
        estimate_chunked_ms(wl.db, table, n, chunk_rows=0)


def test_estimate_zero_deletes_has_no_progress_cost():
    wl, _ = fresh(120)
    table = wl.db.table("R")
    base = estimate_horizontal_ms(wl.db, table, 0, presorted=True)
    est = estimate_chunked_ms(wl.db, table, 0)
    assert est.io_ms == base.io_ms  # lint: allow(float-cost-eq)

"""Tests for set-oriented B-tree insertion and vertical bulk UPDATE."""

import random

import pytest

from repro import Database
from repro.btree.bulk_insert import bulk_insert_sorted
from repro.btree.maintenance import validate_tree
from repro.btree.tree import BLinkTree
from repro.core.bulk_update import bulk_update, traditional_update
from repro.errors import PlanningError, SchemaError, UniqueViolationError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from tests.conftest import populate


# ----------------------------------------------------------------------
# bulk insert
# ----------------------------------------------------------------------
def make_tree(entries=(), leaf_cap=8, unique=False):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    tree = BLinkTree(pool, max_leaf_entries=leaf_cap,
                     max_inner_entries=leaf_cap, unique=unique)
    if entries:
        tree.bulk_load(sorted(entries))
    return tree, disk


def test_bulk_insert_interleaves():
    tree, disk = make_tree([(i, i) for i in range(0, 100, 2)])
    result = bulk_insert_sorted(tree, [(i, i) for i in range(1, 100, 2)],
                                disk)
    assert result.inserted == 50
    assert list(tree.items()) == [(i, i) for i in range(100)]
    validate_tree(tree)


def test_bulk_insert_appends_past_the_end():
    tree, disk = make_tree([(i, i) for i in range(20)])
    bulk_insert_sorted(tree, [(i, i) for i in range(100, 140)], disk)
    assert tree.entry_count == 60
    assert tree.search_one(120) == 120
    validate_tree(tree)


def test_bulk_insert_prepends_before_the_start():
    tree, disk = make_tree([(i, i) for i in range(100, 120)])
    bulk_insert_sorted(tree, [(i, i) for i in range(10)], disk)
    assert [k for k, _ in tree.items()] == list(range(10)) + list(
        range(100, 120)
    )
    validate_tree(tree)


def test_bulk_insert_into_empty_tree():
    tree, disk = make_tree()
    bulk_insert_sorted(tree, [(1, 1), (2, 2)], disk)
    assert tree.entry_count == 2
    validate_tree(tree)


def test_bulk_insert_visits_each_leaf_once():
    tree, disk = make_tree([(i, i) for i in range(200)])
    leaves = tree.leaf_count()
    result = bulk_insert_sorted(
        tree, sorted((i + 1000, i) for i in range(0, 200, 3)), disk
    )
    # Every leaf visited once, plus peeks at right siblings (cheap hits).
    assert result.pages_visited == leaves


def test_bulk_insert_unsorted_rejected():
    tree, disk = make_tree()
    with pytest.raises(ValueError):
        bulk_insert_sorted(tree, [(2, 0), (1, 0)], disk)


def test_bulk_insert_unique_violation():
    tree, disk = make_tree([(5, 5)], unique=True)
    with pytest.raises(UniqueViolationError):
        bulk_insert_sorted(tree, [(5, 9)], disk)


def test_bulk_insert_equals_incremental():
    rng = random.Random(8)
    existing = sorted((rng.randrange(10_000), i) for i in range(150))
    incoming = sorted(
        (rng.randrange(10_000), 1000 + i) for i in range(80)
    )
    bulk_tree, disk = make_tree(existing)
    bulk_insert_sorted(bulk_tree, incoming, disk)
    incr_tree, _ = make_tree(existing)
    for key, value in incoming:
        incr_tree.insert(key, value)
    assert sorted(bulk_tree.items()) == sorted(incr_tree.items())
    validate_tree(bulk_tree)


# ----------------------------------------------------------------------
# bulk update
# ----------------------------------------------------------------------
def fresh(n=300):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=n)
    db.flush()
    db.clock.reset()
    return db, values


def test_bulk_update_by_predicate():
    db, values = fresh()
    threshold = sorted(values["B"])[150]  # median
    result = bulk_update(
        db, "R", "B",
        compute=lambda row: row[1] + 1_000_000,
        where=lambda row: row[1] >= threshold,
    )
    assert result.records_updated == 150
    table = db.table("R")
    validate_tree(table.index("I_R_B").tree)
    assert table.index("I_R_B").tree.entry_count == 300
    updated = [v[1] for _, v in db.scan("R") if v[1] >= 1_000_000]
    assert len(updated) == 150
    # Index reflects the new values, not the old ones.
    for b in updated:
        assert table.index("I_R_B").tree.contains(b)
        assert not table.index("I_R_B").tree.contains(b - 1_000_000)


def test_bulk_update_by_key_list():
    db, values = fresh()
    keys = values["A"][:60]
    result = bulk_update(
        db, "R", "B",
        compute=lambda row: row[1] + 5_000_000,
        where_column="A",
        where_keys=keys,
    )
    assert result.records_updated == 60
    a_index = db.table("R").index("I_R_A")
    validate_tree(a_index.tree)
    assert a_index.tree.entry_count == 300  # A untouched: no maintenance


def test_bulk_update_rids_stable():
    db, values = fresh()
    before = {rid: v[0] for rid, v in db.scan("R")}
    bulk_update(db, "R", "B", compute=lambda row: row[1] + 1,
                where=lambda row: True)
    after = {rid: v[0] for rid, v in db.scan("R")}
    assert before == after  # same rids, same A values


def test_bulk_update_noop_rows_skipped():
    db, values = fresh()
    result = bulk_update(db, "R", "B", compute=lambda row: row[1],
                         where=lambda row: True)
    assert result.records_updated == 0


def test_bulk_update_equals_traditional():
    db_b, values = fresh()
    db_t, _ = fresh()
    compute = lambda row: row[1] * 2 + 1  # noqa: E731
    where = lambda row: row[0] % 3 == 0  # noqa: E731
    r_bulk = bulk_update(db_b, "R", "B", compute=compute, where=where)
    r_trad = traditional_update(db_t, "R", "B", compute=compute,
                                where=where)
    assert r_bulk.records_updated == r_trad.records_updated > 0
    assert sorted(v for _, v in db_b.scan("R")) == sorted(
        v for _, v in db_t.scan("R")
    )
    assert sorted(db_b.table("R").index("I_R_B").tree.items()) == sorted(
        db_t.table("R").index("I_R_B").tree.items()
    )


def test_bulk_update_cheaper_than_traditional():
    """The paper's §1 claim: bulk delete+insert beats per-record index
    maintenance for large updates."""
    db_b, values = fresh()
    db_t, _ = fresh()
    compute = lambda row: row[1] + 7_000_000  # noqa: E731
    where = lambda row: True  # update everything
    r_bulk = bulk_update(db_b, "R", "B", compute=compute, where=where)
    r_trad = traditional_update(db_t, "R", "B", compute=compute,
                                where=where)
    assert r_bulk.elapsed_ms < r_trad.elapsed_ms


def test_bulk_update_argument_validation():
    db, values = fresh()
    with pytest.raises(PlanningError):
        bulk_update(db, "R", "B", compute=lambda r: 1)  # no WHERE at all
    with pytest.raises(PlanningError):
        bulk_update(db, "R", "B", compute=lambda r: 1,
                    where=lambda r: True, where_column="A",
                    where_keys=[1])
    with pytest.raises(SchemaError):
        bulk_update(db, "R", "PAD", compute=lambda r: 1,
                    where=lambda r: True)
    with pytest.raises(SchemaError):
        bulk_update(db, "R", "B", compute=lambda r: "nope",
                    where=lambda r: True)

"""Static lane-safety: shared-state mutation reachable from lanes.

Synthetic packages pin the detector (module-global writes, catalog
mutation, clock rewinds, ad hoc counters — each reachable from a
``LaneTask`` dispatch, directly or through a factory closure), and the
repo gate verifies the executor's two parallel regions and the
recovery redo region analyze clean.
"""

import textwrap
from pathlib import Path

from repro.analysis.code_lint import default_root
from repro.analysis.effects.callgraph import build_callgraph
from repro.analysis.effects.lanesafety import (
    LANE_RULE,
    OPAQUE_RULE,
    check_lane_safety,
)
from repro.analysis.effects.lattice import seed_effects


def lane_findings(tmp_path: Path, files: dict):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for sub in [root] + [d for d in root.rglob("*") if d.is_dir()]:
        if not (sub / "__init__.py").exists():
            (sub / "__init__.py").write_text("")
    graph = build_callgraph(root)
    seed_effects(graph, root)
    return check_lane_safety(graph)


LANES_MODULE = """
class LaneTask:
    def __init__(self, name, run):
        self.name = name
        self.run = run
"""


def test_global_mutation_reachable_from_factory_closure(tmp_path):
    # The ISSUE acceptance case: an injected shared-state mutation
    # reachable from a lane task (through a factory closure and a
    # helper hop) is flagged with its call chain.
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "exec.py": """
            from pkg.lanes import LaneTask

            COUNTER = 0

            def bump():
                global COUNTER
                COUNTER += 1

            def make_task():
                def run():
                    bump()
                    return COUNTER

                return run

            def submit():
                return [LaneTask("t", run=make_task())]
            """,
        },
    )
    hits = [f for f in findings if f.rule_id == LANE_RULE]
    assert len(hits) == 1
    assert hits[0].node == "pkg.exec.bump"
    assert "global.mutate" in hits[0].message
    assert (
        "exec.make_task.<locals>.run -> exec.bump" in hits[0].message
    )


def test_direct_function_dispatch_checked(tmp_path):
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "exec.py": """
            from pkg.lanes import LaneTask

            REGISTRY = {}

            def task():
                REGISTRY["k"] = 1

            def submit():
                return LaneTask("t", run=task)
            """,
        },
    )
    hits = [f for f in findings if f.rule_id == LANE_RULE]
    assert [f.node for f in hits] == ["pkg.exec.task"]
    assert "module-level container 'REGISTRY'" in hits[0].message


def test_adhoc_counter_mutation_flagged_outside_storage(tmp_path):
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "exec.py": """
            from pkg.lanes import LaneTask

            def task(sink):
                sink.stats.reads += 1

            def submit():
                return LaneTask("t", run=task)
            """,
        },
    )
    hits = [f for f in findings if f.rule_id == LANE_RULE]
    assert len(hits) == 1
    assert "metrics.mutate" in hits[0].message


def test_per_lane_accounting_in_storage_is_sanctioned(tmp_path):
    # The same counter mutation inside storage/ is the sanctioned
    # per-lane DiskStats surface.
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "storage/sink.py": """
            def charge(sink):
                sink.stats.reads += 1
            """,
            "exec.py": """
            from pkg.lanes import LaneTask
            from pkg.storage.sink import charge

            def task():
                charge(None)

            def submit():
                return LaneTask("t", run=task)
            """,
        },
    )
    assert [f for f in findings if f.rule_id == LANE_RULE] == []


def test_clean_task_produces_no_findings(tmp_path):
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "exec.py": """
            from pkg.lanes import LaneTask

            def pure(values):
                return sum(values)

            def submit():
                return LaneTask("t", run=pure)
            """,
        },
    )
    assert findings == []


def test_opaque_dispatch_warns(tmp_path):
    findings = lane_findings(
        tmp_path,
        {
            "lanes.py": LANES_MODULE,
            "exec.py": """
            from pkg.lanes import LaneTask

            def submit(callback):
                return LaneTask("t", run=callback)
            """,
        },
    )
    assert [f.rule_id for f in findings] == [OPAQUE_RULE]


# ---------------------------------------------------------------------------
# the repo gate: the real lane regions are clean
# ---------------------------------------------------------------------------
def test_real_repo_lane_regions_clean():
    root = default_root()
    graph = build_callgraph(root)
    seed_effects(graph, root)
    findings = check_lane_safety(graph)
    assert findings == [], "\n".join(f.render() for f in findings)
    # And not vacuously: all six dispatch sites resolved to entries.
    assert len(graph.lane_dispatches) == 6
    assert {d.kind for d in graph.lane_dispatches} == {"factory"}

"""Unit tests for the write-ahead log itself."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.wal import WriteAheadLog
from repro.storage.disk import SimulatedDisk


def test_append_returns_increasing_lsns():
    log = WriteAheadLog()
    lsns = [log.append("x", n=i) for i in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    assert len(log) == 5


def test_records_filter_by_kind():
    log = WriteAheadLog()
    log.append("a", v=1)
    log.append("b", v=2)
    log.append("a", v=3)
    assert [r.payload["v"] for r in log.records("a")] == [1, 3]
    assert [r.kind for r in log.records()] == ["a", "b", "a"]


def test_records_after_and_last():
    log = WriteAheadLog()
    for i in range(4):
        log.append("k", i=i)
    assert [r.payload["i"] for r in log.records_after(2)] == [2, 3]
    assert log.last("k").payload["i"] == 3
    assert log.last("missing") is None


def test_tail():
    log = WriteAheadLog()
    for i in range(10):
        log.append("k", i=i)
    assert [r.payload["i"] for r in log.tail(3)] == [7, 8, 9]


def test_find_open_bulk_delete_states():
    log = WriteAheadLog()
    assert log.find_open_bulk_delete() is None
    begin = log.append("bulk_begin", table="R")
    assert log.find_open_bulk_delete().lsn == begin
    log.append("bulk_end", begin_lsn=begin)
    assert log.find_open_bulk_delete() is None
    # A second statement opens again.
    begin2 = log.append("bulk_begin", table="R")
    assert log.find_open_bulk_delete().lsn == begin2


def test_find_open_rejects_corrupt_logs():
    log = WriteAheadLog()
    log.append("bulk_end", begin_lsn=1)
    with pytest.raises(RecoveryError):
        log.find_open_bulk_delete()
    log2 = WriteAheadLog()
    a = log2.append("bulk_begin", table="R")
    log2.append("bulk_begin", table="S")
    log2.append("bulk_end", begin_lsn=a)  # mismatched nesting
    with pytest.raises(RecoveryError):
        log2.find_open_bulk_delete()


def test_append_charges_simulated_time():
    disk = SimulatedDisk(page_size=512)
    log = WriteAheadLog(disk)
    t0 = disk.clock.now_ms
    log.append("k")
    assert disk.clock.now_ms > t0


def test_append_without_disk_is_free():
    log = WriteAheadLog()
    log.append("k")  # no clock to advance; just must not crash

"""Unit tests for the write-ahead log itself."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.wal import WriteAheadLog
from repro.storage.disk import SimulatedDisk


def test_append_returns_increasing_lsns():
    log = WriteAheadLog()
    lsns = [log.append("x", n=i) for i in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    assert len(log) == 5


def test_records_filter_by_kind():
    log = WriteAheadLog()
    log.append("a", v=1)
    log.append("b", v=2)
    log.append("a", v=3)
    assert [r.payload["v"] for r in log.records("a")] == [1, 3]
    assert [r.kind for r in log.records()] == ["a", "b", "a"]


def test_records_after_and_last():
    log = WriteAheadLog()
    for i in range(4):
        log.append("k", i=i)
    assert [r.payload["i"] for r in log.records_after(2)] == [2, 3]
    assert log.last("k").payload["i"] == 3
    assert log.last("missing") is None


def test_tail():
    log = WriteAheadLog()
    for i in range(10):
        log.append("k", i=i)
    assert [r.payload["i"] for r in log.tail(3)] == [7, 8, 9]


def test_tail_of_zero_or_negative_is_empty():
    # Regression: [-0:] is a full slice, so tail(0) used to return the
    # whole log.
    log = WriteAheadLog()
    for i in range(5):
        log.append("k", i=i)
    assert log.tail(0) == []
    assert log.tail(-3) == []


def test_append_deep_copies_payload():
    # Regression: the payload dict used to be stored by reference, so a
    # caller mutating its dict after append() rewrote the "forced" log.
    log = WriteAheadLog()
    entries = [(1, 10), (2, 20)]
    payload = {"structure": "ix_A", "entries": entries}
    log.append("leaf_deletes", **payload)
    payload["structure"] = "ix_B"
    entries.append((3, 30))
    entries[0] = (9, 99)
    record = log.last("leaf_deletes")
    assert record.payload["structure"] == "ix_A"
    assert record.payload["entries"] == [(1, 10), (2, 20)]


def test_find_open_bulk_delete_states():
    log = WriteAheadLog()
    assert log.find_open_bulk_delete() is None
    begin = log.append("bulk_begin", table="R")
    assert log.find_open_bulk_delete().lsn == begin
    log.append("bulk_end", begin_lsn=begin)
    assert log.find_open_bulk_delete() is None
    # A second statement opens again.
    begin2 = log.append("bulk_begin", table="R")
    assert log.find_open_bulk_delete().lsn == begin2


def test_find_open_rejects_corrupt_log_bodies():
    # Anomalies with records *after* them cannot be mid-append losses;
    # they are corruption and must raise.
    log = WriteAheadLog()
    log.append("bulk_end", begin_lsn=1)
    log.append("checkpoint", begin_lsn=1)
    with pytest.raises(RecoveryError):
        log.find_open_bulk_delete()
    log2 = WriteAheadLog()
    a = log2.append("bulk_begin", table="R")
    log2.append("bulk_begin", table="S")
    log2.append("bulk_end", begin_lsn=a)  # mismatched nesting
    log2.append("checkpoint", begin_lsn=a)
    with pytest.raises(RecoveryError):
        log2.find_open_bulk_delete()


def test_find_open_tolerates_anomalous_final_record():
    # Regression: a crash can strike after the final record's force
    # completed but before the writer's in-memory state caught up.
    # Recovery must never raise on such a well-formed truncated log.
    log = WriteAheadLog()
    log.append("bulk_end", begin_lsn=1)
    assert log.find_open_bulk_delete() is None
    log2 = WriteAheadLog()
    a = log2.append("bulk_begin", table="R")
    b = log2.append("bulk_begin", table="S")
    log2.append("bulk_end", begin_lsn=a)  # orphaned tail record
    # The open statement (S) is still the unit of recovery.
    assert log2.find_open_bulk_delete().lsn == b


def test_truncate_torn_tail():
    from repro.recovery.wal import _TORN_KEY, LogRecord

    log = WriteAheadLog()
    log.append("bulk_begin", table="R")
    log._records.append(LogRecord(2, "checkpoint", {_TORN_KEY: True}))
    assert log.tail(1)[0].torn
    # find_open skips an un-truncated torn tail rather than raising.
    assert log.find_open_bulk_delete().kind == "bulk_begin"
    dropped = log.truncate_torn_tail()
    assert dropped is not None and dropped.kind == "checkpoint"
    assert len(log) == 1
    # Idempotent: a second truncation is a no-op.
    assert log.truncate_torn_tail() is None
    # A torn record in the log *body* is corruption.
    log3 = WriteAheadLog()
    log3._records.append(LogRecord(1, "x", {_TORN_KEY: True}))
    log3.append("bulk_begin", table="R")
    with pytest.raises(RecoveryError):
        log3.find_open_bulk_delete()


def test_append_charges_simulated_time():
    disk = SimulatedDisk(page_size=512)
    log = WriteAheadLog(disk)
    t0 = disk.clock.now_ms
    log.append("k")
    assert disk.clock.now_ms > t0


def test_append_without_disk_is_free():
    log = WriteAheadLog()
    log.append("k")  # no clock to advance; just must not crash

"""Accounting invariants of the ``repro.obs`` observability layer.

The pinned guarantees:

* spans reconcile **exactly** — the root span's inclusive I/O equals
  the simulated disk's delta over the traced region, and the sum of
  every span's exclusive (``self_*``) cost equals the root's inclusive
  cost,
* observation is read-only — a traced run costs exactly what the same
  untraced run costs (simulated clock and disk counters identical),
* disabled means free — ``db.obs`` is ``None`` by default, hook sites
  are one attribute test, and no metric objects exist anywhere,
* metric totals agree with the storage layer's own counters.
"""
# Reconciliation is pinned with exact equality on purpose: span
# deltas must match disk counters bit-for-bit, not approximately:
# lint: allow-file(float-cost-eq)

from __future__ import annotations

import pytest

from repro.catalog.database import Database
from repro.core.executor import bulk_delete
from repro.core.traditional import traditional_delete
from repro.obs.export import export_document, trace_entry
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, iter_spans, observed
from repro.obs.schema import validate_trace
from repro.obs.trace import NULL_SPAN, Span, Tracer, maybe_span
from repro.storage.disk import SimClock, SimulatedDisk
from tests.conftest import populate


def fresh_db(**populate_kw):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, **populate_kw)
    return db, values


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
def test_counter_accumulates_and_rejects_decrease():
    reg = MetricsRegistry()
    reg.counter("disk.reads").inc()
    reg.counter("disk.reads").inc(4)
    assert reg.value("disk.reads") == 5
    with pytest.raises(ValueError):
        reg.counter("disk.reads").inc(-1)


def test_gauge_is_last_value_wins():
    reg = MetricsRegistry()
    reg.gauge("buffer.fill").set(0.25)
    reg.gauge("buffer.fill").set(0.75)
    assert reg.value("buffer.fill") == 0.75


def test_timer_accumulates_simulated_ms():
    clock = SimClock()
    reg = MetricsRegistry(clock=clock)
    reg.timer("io.ms").add_ms(3.0)
    with reg.timer("io.ms").time():
        clock.advance_ms(2.5)
    assert reg.value("io.ms") == pytest.approx(5.5)
    assert reg.timer("io.ms").count == 2
    with pytest.raises(ValueError):
        reg.timer("io.ms").add_ms(-1.0)


def test_metric_kind_is_sticky():
    reg = MetricsRegistry()
    reg.counter("disk.reads")
    with pytest.raises(TypeError):
        reg.gauge("disk.reads")
    with pytest.raises(TypeError):
        reg.timer("disk.reads")


def test_subtree_reads_one_hierarchy_level():
    reg = MetricsRegistry()
    reg.counter("disk.read.random").inc(2)
    reg.counter("disk.read.sequential").inc(3)
    reg.counter("buffer.hits").inc(9)
    assert reg.subtree("disk.read") == {
        "disk.read.random": 2,
        "disk.read.sequential": 3,
    }
    assert "buffer.hits" not in reg.subtree("disk")


def test_as_tree_nests_dotted_names():
    reg = MetricsRegistry()
    reg.counter("disk.reads").inc(7)
    reg.counter("disk.read.random").inc(2)
    tree = reg.as_tree()
    assert tree["disk"]["reads"] == 7
    assert tree["disk"]["read"]["random"] == 2


def test_metrics_are_lazy():
    reg = MetricsRegistry()
    assert len(reg) == 0
    assert reg.value("never.touched", default=-1) == -1
    assert len(reg) == 0  # value() must not create


# ---------------------------------------------------------------------------
# span mechanics
# ---------------------------------------------------------------------------
def test_spans_nest_and_split_inclusive_exclusive():
    disk = SimulatedDisk(page_size=512)
    tracer = Tracer(disk)
    with tracer.span("parent") as parent:
        disk.clock.advance_ms(10.0)
        with tracer.span("child") as child:
            disk.clock.advance_ms(4.0)
        disk.clock.advance_ms(1.0)
    root = tracer.root
    assert root is parent.span
    assert root.children == [child.span]
    assert root.elapsed_ms == pytest.approx(15.0)
    assert root.self_ms == pytest.approx(11.0)
    assert child.span.elapsed_ms == pytest.approx(4.0)
    assert root.closed and child.span.closed


def test_out_of_order_close_raises():
    disk = SimulatedDisk(page_size=512)
    tracer = Tracer(disk)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError, match="closed out of order"):
        outer.__exit__(None, None, None)


def test_null_span_is_shared_and_inert():
    assert maybe_span(None, "anything") is NULL_SPAN
    with maybe_span(None, "anything") as span:
        assert span.set(records=3) is NULL_SPAN


def test_double_attach_raises(db):
    Observer.attach(db)
    try:
        with pytest.raises(RuntimeError):
            Observer.attach(db)
    finally:
        Observer.detach(db)
    assert db.obs is None and db.disk.observer is None


# ---------------------------------------------------------------------------
# reconciliation: spans vs the simulated disk's grand totals
# ---------------------------------------------------------------------------
def run_traced(force_vertical=True, n=500):
    db, values = fresh_db(n=n)
    keys = sorted(values["A"])[: n // 5]
    with observed(db) as obs:
        io_before = db.disk.stats.snapshot()
        result = bulk_delete(
            db, "R", "A", keys, force_vertical=force_vertical
        )
        io_delta = db.disk.stats.delta_since(io_before)
    return obs, result, io_delta


def test_root_span_matches_disk_grand_totals():
    obs, result, io_delta = run_traced()
    root = result.trace
    assert isinstance(root, Span)
    assert root.io.reads == io_delta.reads
    assert root.io.writes == io_delta.writes
    assert root.io.random_ios == io_delta.random_ios
    assert root.io.io_time_ms == pytest.approx(io_delta.io_time_ms)


def test_exclusive_costs_sum_to_root_inclusive():
    obs, result, _ = run_traced()
    root = result.trace
    spans = list(root.walk())
    assert len(spans) > 3  # sort, per-structure bd ops, flush...
    assert sum(s.self_ms for s in spans) == pytest.approx(root.elapsed_ms)
    assert sum(s.self_io.reads for s in spans) == root.io.reads
    assert sum(s.self_io.writes for s in spans) == root.io.writes
    assert sum(
        s.self_io.io_time_ms for s in spans
    ) == pytest.approx(root.io.io_time_ms)


def test_children_nest_within_parent_interval():
    obs, result, _ = run_traced()
    for span in iter_spans(obs):
        assert span.closed
        assert span.end_ms >= span.start_ms
        for child in span.children:
            assert child.start_ms >= span.start_ms
            assert child.end_ms <= span.end_ms


def test_metrics_agree_with_disk_counters():
    obs, result, io_delta = run_traced()
    m = obs.metrics
    assert m.value("disk.reads") == io_delta.reads
    assert m.value("disk.writes") == io_delta.writes
    assert m.value("disk.read.random") == io_delta.random_reads
    assert m.value("disk.write.sequential") == io_delta.sequential_writes
    assert m.value("disk.io_ms") == pytest.approx(io_delta.io_time_ms)


def test_horizontal_path_reconciles_too():
    db, values = fresh_db(n=200)
    keys = sorted(values["A"])[:10]
    with observed(db):
        result = traditional_delete(db, "R", "A", keys, presort=True)
    root = result.trace
    assert isinstance(root, Span)
    spans = list(root.walk())
    assert sum(s.self_io.reads for s in spans) == root.io.reads
    assert sum(s.self_io.writes for s in spans) == root.io.writes
    assert sum(s.self_ms for s in spans) == pytest.approx(root.elapsed_ms)


# ---------------------------------------------------------------------------
# observation is read-only / disabled is free
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("force_vertical", [True, False])
def test_traced_run_costs_exactly_the_untraced_cost(force_vertical):
    def run(observe):
        db, values = fresh_db(n=400)
        keys = sorted(values["A"])[:80]
        if observe:
            with observed(db):
                bulk_delete(db, "R", "A", keys,
                            force_vertical=force_vertical)
        else:
            bulk_delete(db, "R", "A", keys,
                        force_vertical=force_vertical)
        return db.clock.now_ms, db.disk.stats.snapshot()

    traced_ms, traced_io = run(observe=True)
    plain_ms, plain_io = run(observe=False)
    assert traced_ms == plain_ms  # byte-identical simulation
    assert vars(traced_io) == vars(plain_io)


def test_disabled_by_default_and_no_metrics_exist(db):
    populate(db, n=100)
    assert db.obs is None and db.disk.observer is None
    result = bulk_delete(
        db, "R", "A", [1, 2, 3], force_vertical=True
    )
    assert result.trace is None  # nothing was recorded anywhere


def test_detach_restores_the_disabled_state(db):
    populate(db, n=100)
    with observed(db) as obs:
        assert db.obs is obs and db.disk.observer is obs
    assert db.obs is None and db.disk.observer is None


# ---------------------------------------------------------------------------
# export document + schema validation
# ---------------------------------------------------------------------------
def test_export_document_round_trips_the_validator():
    obs, result, _ = run_traced()
    entry = trace_entry("bulk-delete", result.trace,
                        obs.metrics.snapshot())
    doc = export_document([entry], workload={"n": 500})
    assert validate_trace(doc) == []
    totals = doc["traces"][0]["totals"]
    assert totals["reads"] == result.trace.io.reads
    assert totals["sim_time_ms"] == pytest.approx(
        result.trace.elapsed_ms
    )


def test_validator_catches_broken_reconciliation():
    obs, result, _ = run_traced()
    doc = export_document(
        [trace_entry("bulk-delete", result.trace)]
    )
    span = doc["traces"][0]["span"]
    span["self_ms"] = span["self_ms"] + 1.0  # no longer elapsed - children
    errors = validate_trace(doc)
    assert errors and any("self_ms" in e for e in errors)


def test_validator_catches_non_nested_child():
    obs, result, _ = run_traced()
    doc = export_document(
        [trace_entry("bulk-delete", result.trace)]
    )
    span = doc["traces"][0]["span"]
    assert span["children"], "expected an operator tree"
    span["children"][0]["end_ms"] = span["end_ms"] + 5.0
    errors = validate_trace(doc)
    assert errors


def test_export_document_refuses_invalid_entries():
    bad_span = Span(name="x")
    bad_span.start_ms = 10.0
    bad_span.end_ms = 5.0  # negative elapsed
    with pytest.raises(ValueError):
        export_document([trace_entry("broken", bad_span)])

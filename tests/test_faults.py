"""Unit tests for :mod:`repro.faults` — the plan and the injector.

The sweep itself is exercised in ``test_fault_sweep.py``; here we pin
the injector's contract at the level of single durable events: exact
crash placement, torn-write contents, dropped/torn WAL tails, buffer
loss, and the observer wiring.
"""
# Single-event injector tests read pages raw to inspect torn
# writes without the pool healing or caching them:
# lint: allow-file(raw-page-io)

import pytest

from repro.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.faults.injector import TORN_RECORD_KEY
from repro.recovery.wal import WriteAheadLog
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_disk():
    disk = SimulatedDisk(page_size=128)
    file_id = disk.create_file()
    return disk, file_id


# ---------------------------------------------------------------------------
# FaultPlan validation
# ---------------------------------------------------------------------------
def test_plan_rejects_conflicting_wal_tail_modes():
    with pytest.raises(ValueError):
        FaultPlan(crash_after_event=1, drop_wal_tail=True,
                  torn_wal_tail=True)


def test_plan_rejects_modifiers_without_crash_event():
    with pytest.raises(ValueError):
        FaultPlan(torn_write=True)
    with pytest.raises(ValueError):
        FaultPlan(drop_wal_tail=True)
    with pytest.raises(ValueError):
        FaultPlan(torn_wal_tail=True)


def test_plan_rejects_nonpositive_event():
    with pytest.raises(ValueError):
        FaultPlan(crash_after_event=0)


def test_plan_is_empty_and_describe():
    assert FaultPlan().is_empty
    assert not FaultPlan(crash_after_event=3).is_empty
    assert "event 3" in FaultPlan(crash_after_event=3).describe()
    assert "torn_write" in FaultPlan(
        crash_after_event=3, torn_write=True
    ).describe()
    assert "stage" in FaultPlan(crash_point="after_begin").describe()


# ---------------------------------------------------------------------------
# counting durable events
# ---------------------------------------------------------------------------
def test_empty_plan_counts_without_crashing():
    disk, file_id = make_disk()
    log = WriteAheadLog(disk)
    injector = FaultInjector()
    with injector.armed(disk, log=log):
        page = disk.allocate_page(file_id)
        disk.write_page(page, b"x" * 128)
        log.append("bulk_begin", table="R")
        disk.write_page(page, b"y" * 128)
    assert injector.durable_event_count == 3
    assert [kind for kind, _ in injector.durable_events] == [
        "page", "wal", "page",
    ]
    assert not injector.crashed
    # Everything committed normally.
    assert disk.read_page(page) == b"y" * 128
    assert len(log) == 1


def test_crash_fires_exactly_at_kth_event():
    disk, file_id = make_disk()
    log = WriteAheadLog(disk)
    injector = FaultInjector(FaultPlan(crash_after_event=2))
    with injector.armed(disk, log=log):
        page = disk.allocate_page(file_id)
        disk.write_page(page, b"a" * 128)
        with pytest.raises(SimulatedCrash):
            log.append("bulk_begin", table="R")
    assert injector.crashed
    assert injector.durable_event_count == 2
    # The crash is *after* the event commits: the record is in the log.
    assert len(log) == 1


def test_crash_loses_the_buffer_pool():
    disk, file_id = make_disk()
    pool = BufferPool(disk, capacity_pages=4)
    page = disk.allocate_page(file_id)
    disk.write_page(page, b"old " * 32)
    with pool.pin(page) as pinned:
        pinned.data[:4] = b"new!"
        pinned.mark_dirty()
    epoch = pool._epoch
    injector = FaultInjector(FaultPlan(crash_after_event=1))
    other = disk.allocate_page(file_id)
    with injector.armed(disk, pool=pool):
        with pytest.raises(SimulatedCrash):
            disk.write_page(other, b"z" * 128)
    assert pool._epoch > epoch
    # The dirty, unflushed modification is gone; the disk has the old
    # image.
    assert disk.read_page(page).startswith(b"old ")


def test_disarm_restores_normal_writes():
    disk, file_id = make_disk()
    injector = FaultInjector(FaultPlan(crash_after_event=1))
    page = disk.allocate_page(file_id)
    with pytest.raises(SimulatedCrash):
        with injector.armed(disk):
            disk.write_page(page, b"a" * 128)
    assert disk.fault_injector is None
    disk.write_page(page, b"b" * 128)  # no further crash
    assert injector.durable_event_count == 1


def test_double_arming_is_rejected():
    disk, _ = make_disk()
    first = FaultInjector()
    second = FaultInjector()
    first.arm(disk)
    try:
        with pytest.raises(RuntimeError):
            second.arm(disk)
    finally:
        first.disarm()


# ---------------------------------------------------------------------------
# torn page writes
# ---------------------------------------------------------------------------
def test_torn_write_commits_half_old_half_new():
    disk, file_id = make_disk()
    page = disk.allocate_page(file_id)
    disk.write_page(page, b"O" * 128)
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, torn_write=True)
    )
    with injector.armed(disk):
        with pytest.raises(SimulatedCrash):
            disk.write_page(page, b"N" * 128)
    assert disk.durable_image(page) == b"N" * 64 + b"O" * 64
    # The checksum was stamped for the intended image, so the torn
    # durable bytes fail verification — no side-band torn flag needed.
    assert not disk.verify_page(page)
    assert disk.corrupt_page_ids() == [page]
    assert injector.torn_page_writes == 1


def test_full_rewrite_heals_a_torn_page():
    disk, file_id = make_disk()
    page = disk.allocate_page(file_id)
    disk.write_page(page, b"O" * 128)
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, torn_write=True)
    )
    with injector.armed(disk):
        with pytest.raises(SimulatedCrash):
            disk.write_page(page, b"N" * 128)
    disk.write_page(page, b"R" * 128)
    assert disk.verify_page(page)
    assert disk.corrupt_page_ids() == []
    assert disk.read_page(page) == b"R" * 128


def test_torn_durable_image_detected_on_first_post_crash_read():
    # Regression: the pre-checksum disk tracked torn pages in a side
    # set the reader never consulted, so a post-crash read would hand
    # out the mutilated bytes silently.  The verified read path must
    # fail the very first read instead.
    from repro.errors import ChecksumMismatch

    disk, file_id = make_disk()
    page = disk.allocate_page(file_id)
    disk.write_page(page, b"O" * 128)
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, torn_write=True)
    )
    with injector.armed(disk):
        with pytest.raises(SimulatedCrash):
            disk.write_page(page, b"N" * 128)
    with pytest.raises(ChecksumMismatch) as excinfo:
        disk.read_page(page)
    assert excinfo.value.page_id == page


def test_torn_write_modifier_ignored_on_wal_events():
    # The crash event is a WAL append, so torn_write has nothing to
    # tear: the append commits whole, then the crash fires.
    disk, _ = make_disk()
    log = WriteAheadLog(disk)
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, torn_write=True)
    )
    with injector.armed(disk, log=log):
        with pytest.raises(SimulatedCrash):
            log.append("bulk_begin", table="R")
    assert len(log) == 1
    assert not log.tail(1)[0].torn
    assert injector.torn_page_writes == 0


# ---------------------------------------------------------------------------
# WAL tail loss
# ---------------------------------------------------------------------------
def test_drop_wal_tail_loses_the_record():
    disk, _ = make_disk()
    log = WriteAheadLog(disk)
    log.append("bulk_begin", table="R")
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, drop_wal_tail=True)
    )
    with injector.armed(disk, log=log):
        with pytest.raises(SimulatedCrash):
            log.append("bulk_end", begin_lsn=1)
    assert [r.kind for r in log.records()] == ["bulk_begin"]
    assert injector.dropped_wal_records == 1
    # The never-completed force is still a (lost) durable event.
    assert injector.durable_events == [("wal", "bulk_end (dropped)")]


def test_torn_wal_tail_persists_a_mutilated_record():
    disk, _ = make_disk()
    log = WriteAheadLog(disk)
    log.append("bulk_begin", table="R")
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, torn_wal_tail=True)
    )
    with injector.armed(disk, log=log):
        with pytest.raises(SimulatedCrash):
            log.append("bulk_end", begin_lsn=1)
    tail = log.tail(1)[0]
    assert tail.torn
    assert tail.payload == {TORN_RECORD_KEY: True}
    assert injector.torn_wal_records == 1
    # Restart's checksum scan truncates it.
    dropped = log.truncate_torn_tail()
    assert dropped is not None
    assert [r.kind for r in log.records()] == ["bulk_begin"]


def test_drop_wal_tail_modifier_ignored_on_page_events():
    disk, file_id = make_disk()
    log = WriteAheadLog(disk)
    page = disk.allocate_page(file_id)
    injector = FaultInjector(
        FaultPlan(crash_after_event=1, drop_wal_tail=True)
    )
    with injector.armed(disk, log=log):
        with pytest.raises(SimulatedCrash):
            disk.write_page(page, b"x" * 128)
    assert disk.durable_image(page) == b"x" * 128
    assert injector.dropped_wal_records == 0


# ---------------------------------------------------------------------------
# named crash points
# ---------------------------------------------------------------------------
def test_stage_point_crashes_only_on_match():
    disk, _ = make_disk()
    injector = FaultInjector(FaultPlan(crash_point="after_table"))
    with injector.armed(disk):
        injector.stage("after_begin")
        injector.stage("after_driving")
        with pytest.raises(SimulatedCrash):
            injector.stage("after_table")
    assert "after_table" in injector.crash_description


def test_redo_record_crashes_on_nth_occurrence():
    disk, _ = make_disk()
    injector = FaultInjector(
        FaultPlan(crash_mid_structure=("I_R_B", 3))
    )
    with injector.armed(disk):
        injector.redo_record("I_R_B")
        injector.redo_record("I_R_A")  # other structure: not counted
        injector.redo_record("I_R_B")
        with pytest.raises(SimulatedCrash):
            injector.redo_record("I_R_B")


# ---------------------------------------------------------------------------
# observer wiring
# ---------------------------------------------------------------------------
def test_fault_events_reach_the_observer():
    from repro import Database
    from repro.obs.observer import observed

    db = Database(page_size=512, memory_bytes=8 * 512)
    file_id = db.disk.create_file()
    page = db.disk.allocate_page(file_id)
    log = WriteAheadLog(db.disk)
    injector = FaultInjector(FaultPlan(crash_after_event=2))
    with observed(db) as obs:
        with obs.span("faulted-run"):
            with injector.armed(db.disk, pool=db.pool, log=log):
                db.disk.write_page(page, b"a" * 512)
                with pytest.raises(SimulatedCrash):
                    log.append("bulk_begin", table="R")
        counters = obs.metrics.snapshot()
        root = obs.root_span
    assert counters["faults.durable_events"] == 2
    assert counters["faults.durable_events.page"] == 1
    assert counters["faults.durable_events.wal"] == 1
    assert counters["faults.crashes"] == 1
    # The crash description lands on the enclosing span.
    assert "bulk_begin" in root.attrs["fault"]


def test_torn_write_and_tail_loss_counters():
    from repro import Database
    from repro.obs.observer import observed

    db = Database(page_size=512, memory_bytes=8 * 512)
    file_id = db.disk.create_file()
    page = db.disk.allocate_page(file_id)
    db.disk.write_page(page, b"o" * 512)
    log = WriteAheadLog(db.disk)
    with observed(db) as obs:
        torn = FaultInjector(FaultPlan(crash_after_event=1,
                                       torn_write=True))
        with torn.armed(db.disk):
            with pytest.raises(SimulatedCrash):
                db.disk.write_page(page, b"n" * 512)
        lost = FaultInjector(FaultPlan(crash_after_event=1,
                                       drop_wal_tail=True))
        with lost.armed(db.disk, log=log):
            with pytest.raises(SimulatedCrash):
                log.append("bulk_begin", table="R")
        counters = obs.metrics.snapshot()
    assert counters["faults.torn_page_writes"] == 1
    assert counters["faults.wal_tail_lost"] == 1
    assert counters["faults.crashes"] == 2

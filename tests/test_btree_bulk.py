"""Unit tests for bulk load, leaf sweeps, and inner-level rebuilds."""

import pytest

from repro.btree.cursor import LeafCursor
from repro.btree.maintenance import (
    merge_underfull_leaves,
    validate_tree,
)
from repro.btree.tree import BLinkTree
from repro.errors import IndexError_, UniqueViolationError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def tree():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    return BLinkTree(pool, max_leaf_entries=8, max_inner_entries=8)


def entries(n):
    return [(i, i * 2) for i in range(n)]


def test_bulk_load_roundtrip(tree):
    tree.bulk_load(entries(100))
    assert tree.entry_count == 100
    assert list(tree.items()) == entries(100)
    validate_tree(tree)


def test_bulk_load_empty(tree):
    tree.bulk_load([])
    assert tree.entry_count == 0
    assert tree.height == 1
    validate_tree(tree)


def test_bulk_load_single_leaf(tree):
    tree.bulk_load(entries(3))
    assert tree.height == 1
    validate_tree(tree)


def test_bulk_load_replaces_previous_content(tree):
    tree.bulk_load(entries(50))
    tree.bulk_load([(500, 1), (600, 2)])
    assert list(tree.items()) == [(500, 1), (600, 2)]
    validate_tree(tree)


def test_bulk_load_rejects_unsorted(tree):
    with pytest.raises(IndexError_):
        tree.bulk_load([(2, 0), (1, 0)])


def test_bulk_load_unique_rejects_duplicates():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=16)
    tree = BLinkTree(pool, unique=True, max_leaf_entries=8)
    with pytest.raises(UniqueViolationError):
        tree.bulk_load([(1, 0), (1, 1)])


def test_bulk_load_fill_factor_controls_leaf_count(tree):
    tree.bulk_load(entries(64), fill_factor=1.0)
    full = tree.leaf_count()
    tree.bulk_load(entries(64), fill_factor=0.5)
    assert tree.leaf_count() > full
    validate_tree(tree)


def test_bulk_load_bad_fill_factor(tree):
    with pytest.raises(ValueError):
        tree.bulk_load(entries(4), fill_factor=0.0)


def test_insert_after_bulk_load(tree):
    tree.bulk_load([(i * 2, i) for i in range(40)])
    tree.insert(5, 99)
    assert tree.search_one(5) == 99
    validate_tree(tree)


def test_leaf_cursor_covers_all_entries(tree):
    tree.bulk_load(entries(100))
    cursor = LeafCursor(tree)
    assert list(cursor.entries()) == entries(100)
    assert cursor.pages_visited == tree.leaf_count()


def test_leaf_cursor_from_key(tree):
    tree.bulk_load(entries(100))
    cursor = LeafCursor(tree, start_key=50)
    found = list(cursor.entries())
    assert found[-1] == (99, 198)
    assert (50, 100) in found


def test_iter_leaf_ids_in_chain_order(tree):
    tree.bulk_load(entries(100))
    ids = list(tree.iter_leaf_ids())
    assert len(ids) == tree.leaf_count()
    assert len(set(ids)) == len(ids)
    assert ids[0] == tree.first_leaf_id


def test_write_leaf_entries_updates_count(tree):
    tree.bulk_load(entries(32))
    leaf_id = tree.first_leaf_id
    node = tree.read_leaf(leaf_id)
    tree.write_leaf_entries(leaf_id, node.entries[:2])
    assert tree.entry_count == 32 - (len(node.entries) - 2)


def test_unlink_and_free_then_rebuild(tree):
    tree.bulk_load(entries(64))
    # Empty the second leaf by hand, then free it.
    ids = list(tree.iter_leaf_ids())
    victim = ids[1]
    removed = tree.read_leaf(victim).entries
    tree.write_leaf_entries(victim, [])
    tree.unlink_and_free_leaves([victim])
    tree.rebuild_upper_levels()
    validate_tree(tree)
    remaining = [k for k, _ in tree.items()]
    assert all(k not in remaining for k, _ in removed)


def test_unlink_nonempty_leaf_rejected(tree):
    tree.bulk_load(entries(64))
    with pytest.raises(IndexError_):
        tree.unlink_and_free_leaves([tree.first_leaf_id])


def test_rebuild_with_summaries_matches_chain_walk(tree):
    tree.bulk_load(entries(64))
    summaries = [
        (tree.read_leaf(pid).first_key(), pid)
        for pid in tree.iter_leaf_ids()
    ]
    tree.rebuild_upper_levels(summaries)
    validate_tree(tree)
    assert list(tree.items()) == entries(64)


def test_unlink_first_leaf_moves_head(tree):
    tree.bulk_load(entries(64))
    first = tree.first_leaf_id
    tree.write_leaf_entries(first, [])
    tree.unlink_and_free_leaves([first])
    assert tree.first_leaf_id != first
    tree.rebuild_upper_levels()
    validate_tree(tree)


def test_merge_underfull_leaves(tree):
    tree.bulk_load(entries(64))
    # Starve most leaves by deleting three quarters of the entries.
    for key, value in entries(64):
        if key % 4 != 0:
            tree.delete(key, value)
    before = tree.leaf_count()
    merged = merge_underfull_leaves(tree)
    assert merged > 0
    assert tree.leaf_count() == before - merged
    validate_tree(tree)
    assert [k for k, _ in tree.items()] == [k for k in range(0, 64, 4)]


def test_bulk_load_pages_contiguous(tree):
    """Bulk-loaded leaves must be physically contiguous so sweeps are
    sequential — the property the whole paper leans on."""
    tree.bulk_load(entries(100))
    ids = list(tree.iter_leaf_ids())
    assert ids == list(range(ids[0], ids[0] + len(ids)))

"""CLI tests: `repro retention` and the machine-readable faultsweep.

A PR satellite: ``repro faultsweep --format json`` follows the same
conventions as ``repro lint --format json`` (one JSON document on
stdout, an ``ok`` key, exit status mirrors it) so CI can assert on
exact point counts instead of scraping summary text.
"""

import json

from repro.cli import main as cli_main


def run_json(capsys, argv):
    code = cli_main(argv)
    return code, json.loads(capsys.readouterr().out)


def test_faultsweep_json_reports_point_counts(capsys):
    code, data = run_json(
        capsys, ["faultsweep", "--max-points", "3", "--format", "json"]
    )
    assert code == 0
    assert data["sweep"] == "crash"
    assert data["ok"] is True
    assert data["failures"] == 0
    assert len(data["points"]) == 3
    # Double-crash runs add outcomes beyond the base points.
    assert len(data["outcomes"]) >= 3
    assert data["durable_events"] > 3
    assert all(not o["problems"] for o in data["outcomes"])


def test_faultsweep_retention_json(capsys):
    code, data = run_json(
        capsys,
        ["faultsweep", "--retention", "--max-points", "3",
         "--format", "json"],
    )
    assert code == 0
    assert data["sweep"] == "retention"
    assert data["ok"] is True
    crash, media = data["crash"], data["media"]
    assert crash["sweep"] == "retention-crash"
    assert crash["failures"] == 0 and len(crash["points"]) == 3
    assert media["sweep"] == "retention-media"
    assert media["failures"] == 0 and len(media["pages"]) == 3
    assert data["mutations"] == {"ok": True, "checks": 4, "failures": []}


def test_faultsweep_text_summary_unchanged(capsys):
    assert cli_main(["faultsweep", "--max-points", "2"]) == 0
    out = capsys.readouterr().out
    assert "durable events:" in out
    assert "failures: 0" in out


def test_retention_demo_prints_dag_and_audit(capsys):
    assert cli_main(["retention"]) == 0
    out = capsys.readouterr().out
    assert "policy subject-erasure" in out
    assert "policy order-expiry" in out
    assert "restricted (untouched): audits" in out
    assert "0 finding(s)" in out
    assert "retention.runs = 1" in out

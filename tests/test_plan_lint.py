"""Gate tests for the static plan linter (repro.analysis.plan_lint).

Planner output must lint clean; hand-corrupted plans must each trip
the rule that guards the violated paper invariant; the executor must
refuse to run an ERROR-severity plan.
"""

import copy

import pytest

from repro import Database
from repro.analysis.findings import Severity, errors
from repro.analysis.plan_lint import PLAN_RULES, lint_plan
from repro.analysis.selfcheck import check_planner_output, iter_case_plans
from repro.core.executor import bulk_delete, execute_plan, validate_plan
from repro.core.planner import choose_plan
from repro.core.plans import (
    TABLE_TARGET,
    BdMethod,
    BdPredicate,
    BulkDeletePlan,
    StepPlan,
)
from repro.errors import PlanValidationError
from tests.conftest import populate


def fresh(**kw):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=300, **kw)
    return db, values


def plan_on_b(db, n_deletes=60):
    """Delete on B: driving index I_R_B, unique secondary I_R_A."""
    return choose_plan(db, "R", "B", n_deletes, force_vertical=True)


def rule_ids(findings):
    return {f.rule_id for f in findings}


# ---------------------------------------------------------------------------
# clean planner output
# ---------------------------------------------------------------------------
def test_planner_output_is_clean():
    db, _ = fresh()
    plan = choose_plan(db, "R", "A", 60, force_vertical=True)
    assert lint_plan(plan, db) == []


def test_planner_output_clean_across_corpus():
    """Every representative planner choice lints free of errors."""
    assert check_planner_output(errors_only=True) == []


def test_corpus_covers_every_method():
    methods = set()
    for _case, _db, plan in iter_case_plans():
        methods |= {s.method for s in plan.steps}
    assert methods == set(BdMethod)


def test_structural_rules_work_without_db():
    db, _ = fresh()
    plan = plan_on_b(db)
    # No catalog: only structural rules run; planner output still clean.
    assert errors(lint_plan(plan)) == []


# ---------------------------------------------------------------------------
# corrupted plans trip the intended rule
# ---------------------------------------------------------------------------
def test_table_before_unique_index_trips_unique_first():
    db, _ = fresh()
    plan = plan_on_b(db)
    unique_steps = [
        s for s in plan.index_steps() if s.target == "I_R_A"
    ]
    assert unique_steps and plan.steps_before_table(), (
        "fixture expects the planner to schedule the unique index first"
    )
    bad = copy.deepcopy(plan)
    step = next(s for s in bad.steps if s.target == "I_R_A")
    bad.steps.remove(step)
    bad.steps.append(step)  # now after the base table
    findings = errors(lint_plan(bad, db))
    assert "plan/unique-index-first" in rule_ids(findings)


def test_skipped_index_trips_coverage():
    db, _ = fresh()
    plan = plan_on_b(db)
    bad = copy.deepcopy(plan)
    bad.steps = [s for s in bad.steps if s.target != "I_R_A"]
    findings = errors(lint_plan(bad, db))
    assert "plan/exactly-once-coverage" in rule_ids(findings)


def test_duplicated_index_step_trips_coverage():
    db, _ = fresh()
    plan = plan_on_b(db)
    bad = copy.deepcopy(plan)
    bad.steps.append(copy.deepcopy(bad.steps[0]))
    findings = errors(lint_plan(bad, db))
    assert "plan/exactly-once-coverage" in rule_ids(findings)


def test_unknown_target_trips_coverage():
    db, _ = fresh()
    bad = copy.deepcopy(plan_on_b(db))
    bad.steps.append(
        StepPlan("I_R_GHOST", BdMethod.SORT_MERGE, BdPredicate.KEY)
    )
    findings = errors(lint_plan(bad, db))
    assert "plan/exactly-once-coverage" in rule_ids(findings)


def test_sort_skip_on_unclustered_driving_index():
    db, _ = fresh()  # no clustered index anywhere
    bad = copy.deepcopy(plan_on_b(db))
    bad.sort_rid_list = False
    findings = errors(lint_plan(bad, db))
    assert "plan/clustered-skip-sort" in rule_ids(findings)


def test_clustered_driving_index_skips_sort_clean():
    db, _ = fresh(clustered_on="B")
    plan = plan_on_b(db)
    assert plan.sort_rid_list is False
    assert errors(lint_plan(plan, db)) == []


def test_redundant_sort_on_clustered_is_warning():
    db, _ = fresh(clustered_on="B")
    bad = copy.deepcopy(plan_on_b(db))
    bad.sort_rid_list = True
    findings = lint_plan(bad, db)
    assert errors(findings) == []
    assert "plan/clustered-skip-sort" in rule_ids(findings)


def test_hash_method_over_memory_budget():
    db, _ = fresh()
    plan = choose_plan(db, "R", "A", 60, prefer_method=BdMethod.HASH,
                       force_vertical=True)
    bad = copy.deepcopy(plan)
    # Pretend the delete list is far larger than the budget allows.
    bad.n_deletes = db.memory_bytes  # * 16 bytes/entry >> budget
    findings = errors(lint_plan(bad, db))
    assert "plan/hash-memory-budget" in rule_ids(findings)


def test_nested_loops_inside_vertical_plan():
    db, _ = fresh()
    bad = copy.deepcopy(plan_on_b(db))
    bad.table_step().method = BdMethod.NESTED_LOOPS
    findings = errors(lint_plan(bad, db))
    assert "plan/nested-loops-vertical-mix" in rule_ids(findings)


def test_missing_driving_step_trips_driving_first():
    bad = BulkDeletePlan(
        table_name="R",
        column="B",
        driving_index="I_R_B",
        steps=[StepPlan(TABLE_TARGET, BdMethod.SORT_MERGE,
                        BdPredicate.RID)],
        sort_rid_list=True,
    )
    findings = errors(lint_plan(bad))
    ids = rule_ids(findings)
    assert "plan/driving-index-first" in ids
    assert "plan/dag-shape" in ids  # the DAG cannot even be built


def test_pre_table_key_probe_is_rejected():
    db, _ = fresh()
    bad = copy.deepcopy(plan_on_b(db))
    pre = next(
        s for s in bad.steps_before_table() if s.target == "I_R_A"
    )
    pre.predicate = BdPredicate.KEY
    findings = errors(lint_plan(bad, db))
    assert "plan/pre-table-rid-probe" in rule_ids(findings)


def test_offline_index_is_rejected():
    db, _ = fresh()
    plan = plan_on_b(db)
    db.table("R").index("I_R_A").set_offline()
    findings = errors(lint_plan(plan, db))
    assert "plan/offline-index" in rule_ids(findings)


def test_missing_table_step():
    db, _ = fresh()
    bad = copy.deepcopy(plan_on_b(db))
    bad.steps = [s for s in bad.steps if not s.is_table]
    findings = errors(lint_plan(bad, db))
    assert "plan/table-step" in rule_ids(findings)


# ---------------------------------------------------------------------------
# executor wiring
# ---------------------------------------------------------------------------
def corrupt_unique_last(db):
    plan = plan_on_b(db)
    bad = copy.deepcopy(plan)
    step = next(s for s in bad.steps if s.target == "I_R_A")
    bad.steps.remove(step)
    bad.steps.append(step)
    return bad


def test_execute_plan_rejects_error_plans():
    db, values = fresh()
    bad = corrupt_unique_last(db)
    keys = values["B"][:40]
    before_ms = db.clock.now_ms
    with pytest.raises(PlanValidationError) as exc_info:
        execute_plan(db, bad, keys)
    assert any(
        f.rule_id == "plan/unique-index-first"
        for f in exc_info.value.findings
    )
    # No simulated time may have been charged for the rejected plan.
    assert db.clock.now_ms == before_ms  # lint: allow(float-cost-eq)


def test_bulk_delete_rejects_corrupt_caller_plan():
    db, values = fresh()
    bad = corrupt_unique_last(db)
    with pytest.raises(PlanValidationError):
        bulk_delete(db, "R", "B", values["B"][:40], plan=bad)


def test_validate_false_bypasses_the_gate():
    db, values = fresh()
    bad = corrupt_unique_last(db)
    result = execute_plan(db, bad, values["B"][:40], validate=False)
    assert result.records_deleted == 40


def test_validate_plan_passes_clean_plans():
    db, _ = fresh()
    validate_plan(db, plan_on_b(db))  # must not raise


def test_explain_appends_lint_report():
    from repro.sql.interpreter import SqlSession

    db, values = fresh()
    session = SqlSession(db, force_vertical=True)
    keys = ",".join(str(k) for k in values["B"][:20])
    result = session.execute(
        f"EXPLAIN DELETE FROM R WHERE B IN ({keys});"
    )
    assert "plan lint: clean" in result.text


# ---------------------------------------------------------------------------
# registry hygiene
# ---------------------------------------------------------------------------
def test_every_rule_has_description():
    assert PLAN_RULES, "no plan rules registered"
    for rule_id, rule in PLAN_RULES.items():
        assert rule_id.startswith("plan/")
        assert rule.description


def test_findings_are_sorted_errors_first():
    db, _ = fresh()
    bad = copy.deepcopy(plan_on_b(db))
    bad.steps = [s for s in bad.steps if s.target != "I_R_A"]
    bad.sort_rid_list = False  # second error + possibly warnings
    findings = lint_plan(bad, db)
    severities = [f.severity for f in findings]
    first_warning = next(
        (i for i, s in enumerate(severities) if s is Severity.WARNING),
        len(severities),
    )
    assert all(
        s is not Severity.ERROR for s in severities[first_warning:]
    )

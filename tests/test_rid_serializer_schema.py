"""Unit tests for RIDs, record serialization, and schemas."""

import pytest

from repro.catalog.schema import Attribute, DataType, TableSchema
from repro.errors import CatalogError, SchemaError
from repro.storage.rid import RID
from repro.storage.serializer import RecordSerializer


# ----------------------------------------------------------------------
# RID
# ----------------------------------------------------------------------
def test_rid_pack_roundtrip():
    rid = RID(123456, 17)
    assert RID.unpack(rid.pack()) == rid


def test_rid_orders_by_page_then_slot():
    assert RID(1, 5) < RID(2, 0)
    assert RID(2, 0) < RID(2, 1)
    # Packed order must agree with tuple order (sorting packed RIDs is
    # how the heap sweep becomes sequential).
    rids = [RID(3, 1), RID(1, 9), RID(2, 0), RID(1, 2)]
    assert sorted(r.pack() for r in rids) == [
        r.pack() for r in sorted(rids)
    ]


def test_rid_pack_range_checks():
    with pytest.raises(ValueError):
        RID(1, 1 << 16).pack()
    with pytest.raises(ValueError):
        RID(1 << 47, 0).pack()
    with pytest.raises(ValueError):
        RID(-1, 0).pack()


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def test_schema_lookups():
    schema = TableSchema.of(
        "t", [Attribute.int_("a"), Attribute.char("b", 4)]
    )
    assert schema.column_index("b") == 1
    assert schema.attribute("a").data_type is DataType.INT
    assert schema.has_column("a")
    assert not schema.has_column("z")
    assert schema.column_names == ["a", "b"]
    with pytest.raises(CatalogError):
        schema.column_index("missing")


def test_schema_rejects_duplicates_and_empties():
    with pytest.raises(SchemaError):
        TableSchema.of("t", [Attribute.int_("a"), Attribute.int_("a")])
    with pytest.raises(SchemaError):
        TableSchema.of("t", [])
    with pytest.raises(SchemaError):
        TableSchema.of("", [Attribute.int_("a")])


def test_attribute_validation():
    with pytest.raises(SchemaError):
        Attribute("", DataType.INT)
    with pytest.raises(SchemaError):
        Attribute.char("c", 0)
    with pytest.raises(SchemaError):
        Attribute("x", DataType.INT, length=4)


# ----------------------------------------------------------------------
# serializer
# ----------------------------------------------------------------------
@pytest.fixture
def serializer():
    schema = TableSchema.of(
        "t", [Attribute.int_("a"), Attribute.char("s", 8), Attribute.int_("b")]
    )
    return RecordSerializer(schema)


def test_serializer_roundtrip(serializer):
    values = (42, "hello", -7)
    assert serializer.unpack(serializer.pack(values)) == values


def test_serializer_fixed_size(serializer):
    assert serializer.record_size == 8 + 8 + 8
    assert len(serializer.pack((1, "", 2))) == serializer.record_size


def test_serializer_pads_strings(serializer):
    packed = serializer.pack((0, "ab", 0))
    assert serializer.unpack(packed)[1] == "ab"


def test_serializer_negative_and_large_ints(serializer):
    values = (-(2**62), "x", 2**62)
    assert serializer.unpack(serializer.pack(values)) == values


def test_serializer_rejects_bad_arity(serializer):
    with pytest.raises(SchemaError):
        serializer.pack((1, "x"))


def test_serializer_rejects_wrong_types(serializer):
    with pytest.raises(SchemaError):
        serializer.pack(("not-int", "x", 2))
    with pytest.raises(SchemaError):
        serializer.pack((1, 99, 2))
    with pytest.raises(SchemaError):
        serializer.pack((True, "x", 2))  # bools are not ints here


def test_serializer_rejects_oversized_string(serializer):
    with pytest.raises(SchemaError):
        serializer.pack((1, "toolongstring", 2))


def test_serializer_rejects_bad_payload_size(serializer):
    with pytest.raises(SchemaError):
        serializer.unpack(b"\x00" * 3)


def test_serializer_accepts_bytes_for_char(serializer):
    packed = serializer.pack((1, b"raw", 2))
    assert serializer.unpack(packed)[1] == "raw"

"""Tests for query operators (access paths) and catalog statistics."""

import pytest

from repro import Database
from repro.btree.node import MAX_KEY, MIN_KEY
from repro.catalog.statistics import (
    collect_exact_table_statistics,
    collect_statistics,
    collect_table_statistics,
)
from repro.query.operators import (
    AccessPath,
    choose_access_path,
    execute_access_path,
    filter_rows,
    index_equality_lookup,
    index_range_scan,
    project,
    table_scan,
)
from tests.conftest import populate


@pytest.fixture
def table_db(db):
    values = populate(db, n=200)
    return db, values


def test_table_scan_covers_everything(table_db):
    db, values = table_db
    table = db.table("R")
    rows = list(table_scan(table))
    assert len(rows) == 200
    assert {row[0] for _, row in rows} == set(values["A"])


def test_index_equality_lookup(table_db):
    db, values = table_db
    table = db.table("R")
    key = values["A"][42]
    rows = list(index_equality_lookup(table, table.index("I_R_A"), key))
    assert len(rows) == 1
    assert rows[0][1][0] == key
    assert index_equality_lookup(table, table.index("I_R_A"), -1) is not None
    assert list(
        index_equality_lookup(table, table.index("I_R_A"), 10**9)
    ) == []


def test_index_range_scan_in_key_order(table_db):
    db, values = table_db
    table = db.table("R")
    a_sorted = sorted(values["A"])
    lo, hi = a_sorted[20], a_sorted[60]
    rows = list(index_range_scan(table, table.index("I_R_A"), lo, hi))
    keys = [row[0] for _, row in rows]
    assert keys == a_sorted[20:61]


def test_filter_and_project(table_db):
    db, values = table_db
    table = db.table("R")
    median = sorted(values["B"])[100]
    filtered = filter_rows(table_scan(table), lambda r: r[1] >= median)
    projected = list(project(filtered, [1]))
    assert len(projected) == 100
    assert all(b >= median for (b,) in projected)


def test_choose_access_path_equality(table_db):
    db, values = table_db
    table = db.table("R")
    path = choose_access_path(table, "A", "=", 5)
    assert path.kind == "index-eq"
    assert "I_R_A" in path.describe()


def test_choose_access_path_ranges(table_db):
    db, values = table_db
    table = db.table("R")
    path = choose_access_path(table, "A", "<", 100)
    assert path.kind == "index-range"
    assert path.lo == MIN_KEY and path.hi == 99
    path = choose_access_path(table, "A", ">=", 100)
    assert (path.lo, path.hi) == (100, MAX_KEY)


def test_choose_access_path_falls_back_to_scan(table_db):
    db, values = table_db
    table = db.table("R")
    assert choose_access_path(table, None, None, None).kind == "scan"
    assert choose_access_path(table, "PAD", "=", 1).kind == "scan"
    assert choose_access_path(table, "A", "<>", 1).kind == "scan"
    table.index("I_R_A").set_offline()
    assert choose_access_path(table, "A", "=", 1).kind == "scan"
    table.index("I_R_A").set_online()


def test_execute_access_path_matches_scan(table_db):
    db, values = table_db
    table = db.table("R")
    threshold = sorted(values["A"])[150]
    path = choose_access_path(table, "A", ">=", threshold)
    via_index = sorted(row for _, row in execute_access_path(table, path))
    via_scan = sorted(
        row for _, row in table_scan(table) if row[0] >= threshold
    )
    assert via_index == via_scan


def test_select_uses_fewer_pages_with_index(table_db):
    """The access path matters: an equality SELECT via the index must
    touch far fewer pages than a scan."""
    db, values = table_db
    from repro.sql.interpreter import SqlSession

    db.flush()
    session = SqlSession(db)
    before = db.disk.stats.snapshot()
    db.pool.invalidate_all()  # cold cache
    session.execute(f"SELECT A FROM R WHERE A = {values['A'][0]}")
    indexed_reads = db.disk.stats.delta_since(before).reads
    db.pool.invalidate_all()
    before = db.disk.stats.snapshot()
    session.execute("SELECT A FROM R WHERE PAD = 'nope'")
    scan_reads = db.disk.stats.delta_since(before).reads
    assert indexed_reads < scan_reads / 3


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def test_statistics_estimate_close_to_exact(table_db):
    db, values = table_db
    table = db.table("R")
    estimated = collect_table_statistics(table)
    exact = collect_exact_table_statistics(table)
    assert estimated.record_count == exact.record_count == 200
    assert estimated.heap_pages == exact.heap_pages
    for name in exact.indexes:
        est = estimated.indexes[name].leaf_pages
        act = exact.indexes[name].leaf_pages
        assert abs(est - act) <= max(2, act // 3)


def test_statistics_no_io(table_db):
    db, values = table_db
    db.flush()
    db.pool.invalidate_all()
    before = db.disk.stats.snapshot()
    collect_table_statistics(db.table("R"))
    assert db.disk.stats.delta_since(before).reads == 0


def test_statistics_selectivity_and_density(table_db):
    db, values = table_db
    stats = collect_table_statistics(db.table("R"))
    assert stats.selectivity(20) == pytest.approx(0.1)
    assert stats.selectivity(10**9) == 1.0
    assert stats.records_per_page > 1
    assert stats.indexes["I_R_A"].entries_per_leaf > 1


def test_collect_statistics_all_tables(table_db):
    db, values = table_db
    all_stats = collect_statistics(db)
    assert set(all_stats) == {"R"}
    assert all_stats["R"].record_count == 200

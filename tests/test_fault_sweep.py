"""End-to-end tests for the crash-point sweep (:mod:`repro.faults.sweep`).

These are the teeth of the fault-injection subsystem: every durable
event of a recoverable bulk delete gets its own crash + recover run,
and the recovered database must be indistinguishable from the
fault-free oracle.  A small scenario keeps the full sweep fast enough
for tier-1; CI runs a larger bounded sweep via ``repro faultsweep``.
"""

import dataclasses

import pytest

from repro.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.faults.sweep import (
    SweepScenario,
    capture_state,
    crash_point_sweep,
    integrity_problems,
    _choose_points,
)
from repro.recovery.restart import RecoverableBulkDelete, recover

SMALL = SweepScenario(records=24, delete_fraction=0.4, child_rows=4)


def test_scenario_builds_are_deterministic():
    a, b = SMALL.build(), SMALL.build()
    assert a.keys == b.keys
    assert capture_state(a.db) == capture_state(b.db)


def test_oracle_run_is_consistent():
    case = SMALL.build()
    RecoverableBulkDelete(case.db, "R", "A", case.keys, case.log).run()
    assert integrity_problems(case.db, case.registry, case.keys) == []


def test_integrity_problems_detects_damage():
    case = SMALL.build()
    table = case.db.table("R")
    tree = table.index("I_R_A").tree
    # Lie about the entry count: reconciliation must notice.
    tree._entry_count += 5
    problems = integrity_problems(case.db)
    assert any("entry_count" in p for p in problems)


def test_choose_points_spacing():
    assert _choose_points(5, None) == [1, 2, 3, 4, 5]
    assert _choose_points(5, 10) == [1, 2, 3, 4, 5]
    assert _choose_points(0, None) == []
    assert _choose_points(100, 0) == []
    picked = _choose_points(100, 4)
    assert picked == [25, 50, 75, 100]
    assert _choose_points(10, 1) == [10]


def test_full_sweep_every_durable_event():
    report = crash_point_sweep(SMALL, double_crash=False)
    assert report.durable_events > 10
    assert len(report.points) == report.durable_events
    assert report.ok, report.summary()


def test_sweep_with_double_crashes():
    report = crash_point_sweep(SMALL, max_points=6, double_samples=2)
    singles = [o for o in report.outcomes if o.second_event is None]
    doubles = [o for o in report.outcomes if o.second_event is not None]
    assert len(singles) == 6
    assert doubles, "no crash-during-recovery runs happened"
    assert report.ok, report.summary()


def test_sweep_with_dropped_wal_tail():
    report = crash_point_sweep(
        SMALL, max_points=8, double_crash=False, wal_tail="drop"
    )
    assert report.ok, report.summary()


def test_sweep_with_torn_wal_tail():
    report = crash_point_sweep(
        SMALL, max_points=8, double_crash=False, wal_tail="torn"
    )
    assert report.ok, report.summary()


def test_sweep_with_torn_page_writes():
    # torn_writes implies full-page-write logging, so every torn page
    # is repairable from its logged pre-image.
    report = crash_point_sweep(
        SMALL, max_points=8, double_crash=False, torn_writes=True
    )
    assert report.ok, report.summary()


def test_crash_between_structure_done_and_checkpoint():
    """Regression for the bug the sweep flushed out: a crash between a
    stage's ``structure_done`` append and its ``checkpoint`` append
    (two separate durable events) used to make recovery skip the stage
    while restoring *older* metadata — stale tree roots, resurrected
    entries.  The done-requires-checkpoint pairing re-runs the stage
    instead; redo is idempotent, so the state matches the oracle."""
    case = SMALL.build()
    counter = FaultInjector()
    RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log, faults=counter
    ).run()
    oracle = capture_state(case.db)
    # Find the first post-initial structure_done WAL event.
    target = None
    done_seen = 0
    for ordinal, (kind, detail) in enumerate(counter.durable_events, 1):
        if kind == "wal" and detail == "structure_done":
            done_seen += 1
            if done_seen == 2:  # skip the __initial__ checkpoint pair
                target = ordinal
                break
    assert target is not None
    case2 = SMALL.build()
    runner = RecoverableBulkDelete(
        case2.db, "R", "A", case2.keys, case2.log,
        faults=FaultInjector(FaultPlan(crash_after_event=target)),
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    # With the fix in place this recovers to the oracle...
    recover(case2.db, case2.log)
    assert capture_state(case2.db) == oracle
    assert integrity_problems(case2.db, case2.registry, case2.keys) == []


def test_report_summary_mentions_failures():
    from repro.faults.sweep import PointOutcome, SweepReport

    report = SweepReport(durable_events=3, points=[1, 2, 3])
    report.outcomes.append(PointOutcome(event=1, second_event=None))
    report.outcomes.append(
        PointOutcome(event=2, second_event=None, problems=["boom"])
    )
    assert not report.ok
    assert "FAIL at event 2: boom" in report.summary()


def test_faultsweep_cli_smoke(capsys):
    from repro.cli import main

    code = main([
        "faultsweep", "--max-points", "5", "--records", "24",
        "--no-double",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "failures: 0" in out


# ----------------------------------------------------------------------
# concurrent user traffic during the swept statement
# ----------------------------------------------------------------------
TRAFFIC = dataclasses.replace(SMALL, traffic_ops=5)


def test_traffic_schedule_is_deterministic_and_safe():
    a, b = TRAFFIC.build(), TRAFFIC.build()
    assert a.traffic_order == b.traffic_order
    assert len(a.traffic_order) == 5
    assert sum(len(ws) for ws in a.traffic.values()) == 5
    # Inserts use values disjoint from the generated data; deletes
    # target unreferenced survivors only (the FK must keep holding).
    survivors = {
        row[0] for _, row in a.db.scan("R")
    } - set(a.keys)
    referenced = {row[0] for _, row in a.db.scan("S")}
    for write in a.traffic_order:
        if write.op == "insert":
            assert write.values[0] not in survivors
        else:
            assert write.values[0] in survivors - referenced


def test_traffic_zero_keeps_classic_case():
    case = SMALL.build()
    assert case.traffic == {} and case.traffic_order == []


def test_lost_user_writes_detector():
    from repro.faults.sweep import lost_user_writes
    from repro.recovery.restart import apply_user_write

    case = TRAFFIC.build()
    write = next(w for w in case.traffic_order if w.op == "insert")
    apply_user_write(case.db, case.log, "R", write)
    assert lost_user_writes(case.db, case.log) == []
    # Losing the row's effect must be reported.
    for rid, row in case.db.scan("R"):
        if row == tuple(write.values):
            case.db.delete_record("R", rid)
            break
    problems = lost_user_writes(case.db, case.log)
    assert any("lost committed user insert" in p for p in problems)


def test_traffic_sweep_every_point_recovers_with_zero_lost_writes():
    report = crash_point_sweep(TRAFFIC, double_crash=False)
    assert report.durable_events > 10
    assert report.ok, report.summary()


def test_traffic_sweep_with_double_crashes_and_tail_loss():
    report = crash_point_sweep(TRAFFIC, max_points=4, double_samples=1)
    assert report.ok, report.summary()
    for tail in ("drop", "torn"):
        report = crash_point_sweep(
            TRAFFIC, max_points=4, double_crash=False, wal_tail=tail
        )
        assert report.ok, report.summary()


def test_faultsweep_cli_traffic_smoke(capsys):
    from repro.cli import main

    code = main([
        "faultsweep", "--max-points", "4", "--records", "24",
        "--no-double", "--traffic", "4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "failures: 0" in out

"""Range-sharded tables: routing, planning, execution, and recovery.

The boundary cases the shard map must get right (a key exactly on a
bound belongs to the *upper* shard; an empty fragment is legal; one
shard routes everything), the execution equivalences (1 shard x 1 lane
is bit-identical to the unsharded executor — a hypothesis property,
not one example), hot-range taming, the catalog's sharded-DDL guards,
the ``plan/shard-coverage`` lint, the crash-mid-shard sweep, and the
``shard.*`` observability hooks.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Attribute, TableSchema
from repro.core.executor import bulk_delete
from repro.errors import CatalogError, PlanValidationError
from repro.faults.sweep import capture_state
from repro.shard import (
    HOT_POLICIES,
    ShardMap,
    ShardSweepScenario,
    choose_sharded_plan,
    shard_crash_sweep,
    sharded_bulk_delete,
)
from repro.shard.planning import HOT_SERIALIZE, HOT_SPLIT
from repro.workload.generator import (
    WorkloadConfig,
    build_sharded_workload,
    build_workload,
)

CONFIG = WorkloadConfig(
    record_count=400, index_columns=("A",), memory_paper_mb=5.0
)


# ---------------------------------------------------------------- map


def test_boundary_key_routes_to_upper_shard():
    smap = ShardMap(column="A", bounds=(10, 20))
    assert smap.shard_of(9) == 0
    assert smap.shard_of(10) == 1  # exactly on a bound: upper shard
    assert smap.shard_of(19) == 1
    assert smap.shard_of(20) == 2
    assert smap.covers(1, 10) and not smap.covers(0, 10)
    assert smap.covers(2, 20) and not smap.covers(1, 20)


def test_route_preserves_order_and_allows_empty_fragments():
    smap = ShardMap(column="A", bounds=(100,))
    fragments = smap.route([7, 3, 5])
    assert fragments == [[7, 3, 5], []]  # order kept; upper shard empty


def test_single_shard_fragment_is_the_input_list():
    smap = ShardMap(column="A", bounds=())
    keys = [9, 1, 5]
    assert smap.route(keys) == [keys]


def test_bounds_must_strictly_increase():
    with pytest.raises(CatalogError):
        ShardMap(column="A", bounds=(5, 5))


def test_from_quantiles_equi_depth_and_skew_error():
    smap = ShardMap.from_quantiles("A", list(range(100)), 4)
    sizes = [len(f) for f in smap.route(list(range(100)))]
    assert sizes == [25, 25, 25, 25]
    with pytest.raises(CatalogError):
        ShardMap.from_quantiles("A", [1] * 50, 4)


@settings(max_examples=50, deadline=None, derandomize=True)
@given(
    keys=st.lists(st.integers(0, 1000), max_size=60),
    bounds=st.lists(st.integers(0, 1000), max_size=4, unique=True),
)
def test_every_key_routes_exactly_once(keys, bounds):
    smap = ShardMap(column="A", bounds=tuple(sorted(bounds)))
    fragments = smap.route(keys)
    assert sorted(k for frag in fragments for k in frag) == sorted(keys)
    for shard_id, frag in enumerate(fragments):
        assert all(smap.covers(shard_id, k) for k in frag)


# ---------------------------------------------------------- execution


def _sharded_run(shards, lanes, fraction=0.25):
    wl = build_sharded_workload(CONFIG, shards=shards)
    keys = wl.delete_keys(fraction)
    wl.reset_measurements()
    result = sharded_bulk_delete(wl.db, "R", "A", keys, lanes=lanes)
    return wl, result


@lru_cache(maxsize=None)
def _unsharded_oracle(fraction):
    wl = build_workload(CONFIG)
    keys = wl.delete_keys(fraction)
    wl.reset_measurements()
    result = bulk_delete(wl.db, "R", "A", keys, force_vertical=True)
    return result.records_deleted, result.elapsed_ms, wl.db.clock.now_ms


@settings(max_examples=8, deadline=None, derandomize=True)
@given(fraction=st.sampled_from([0.1, 0.25, 0.5]))
def test_one_shard_is_bit_identical_to_unsharded(fraction):
    """1 shard x 1 lane takes the exact unsharded code path."""
    deleted, elapsed_ms, clock_ms = _unsharded_oracle(fraction)
    wl, result = _sharded_run(shards=1, lanes=1, fraction=fraction)
    assert result.records_deleted == deleted
    # Bit-identity is the contract, so exact float equality is the
    # point of these assertions.
    assert result.elapsed_ms == elapsed_ms  # lint: allow(float-cost-eq)
    assert wl.db.clock.now_ms == clock_ms  # lint: allow(float-cost-eq)
    assert not result.reconciliation_problems()


def test_all_keys_in_one_shard_of_many():
    """A delete list confined to one range: siblings stay untouched."""
    wl = build_sharded_workload(CONFIG, shards=4)
    table = wl.db.table("R")
    bound = table.shard_map.bounds[0]
    keys = [a for a in wl.a_values if a < bound][:40]
    before = capture_state(wl.db)
    result = sharded_bulk_delete(wl.db, "R", "A", keys, lanes=2)
    after = capture_state(wl.db)
    assert result.records_deleted == len(keys)
    assert not result.reconciliation_problems()
    # All but the first physical shard are byte-for-byte untouched.
    for shard_id in (1, 2, 3):
        name = table.shard(shard_id).name
        assert after[name] == before[name]


def test_parallel_matches_serial_logical_state():
    wl_par, par = _sharded_run(shards=4, lanes=4)
    wl_ser, ser = _sharded_run(shards=4, lanes=1)
    assert par.records_deleted == ser.records_deleted
    assert capture_state(wl_par.db) == capture_state(wl_ser.db)
    assert not par.reconciliation_problems()
    assert not ser.reconciliation_problems()
    assert par.region is not None and par.region.speedup > 1.0
    assert ser.region is None


def test_empty_fragment_is_skipped_not_executed():
    wl = build_sharded_workload(CONFIG, shards=4)
    table = wl.db.table("R")
    bound = table.shard_map.bounds[0]
    keys = [a for a in wl.a_values if a < bound][:10]
    plan = choose_sharded_plan(wl.db, "R", "A", keys, lanes=2)
    assert len(plan.fragments) == 1  # empty shards plan no fragment
    assert plan.fragments[0].shard_id == 0


def test_empty_delete_list():
    wl = build_sharded_workload(CONFIG, shards=3)
    result = sharded_bulk_delete(wl.db, "R", "A", [], lanes=2)
    assert result.records_deleted == 0
    assert result.fragment_results == []
    assert not result.reconciliation_problems()


# ---------------------------------------------------------- hot ranges


def test_oversized_fragment_is_split():
    wl = build_sharded_workload(CONFIG, shards=4)
    bounds = wl.db.table("R").shard_map.bounds
    keys = [a for a in wl.a_values if a < bounds[0]][:90]
    keys += [a for a in wl.a_values if bounds[0] <= a < bounds[1]][:5]
    keys += [a for a in wl.a_values if a >= bounds[-1]][:5]
    plan = choose_sharded_plan(
        wl.db, "R", "A", keys, lanes=2, hot_factor=2.0
    )
    pieces = [f for f in plan.fragments if f.policy == HOT_SPLIT]
    assert pieces and all(f.shard_id == 0 for f in pieces)
    assert all(not f.is_parallel for f in pieces)
    # The split pieces still cover shard 0's keys exactly once.
    split_keys = [k for f in pieces for k in f.keys]
    assert sorted(split_keys) == sorted(keys[:90])
    # Execution of a hot plan still reconciles and deletes everything.
    result = sharded_bulk_delete(wl.db, "R", "A", keys, plan=plan)
    assert result.records_deleted == len(keys)
    assert not result.reconciliation_problems()


def test_access_skew_serializes_the_hot_shard():
    wl = build_sharded_workload(CONFIG, shards=4)
    table = wl.db.table("R")
    for shard_id in (0, 1, 3):
        table.note_shard_access(shard_id, 10)
    for _ in range(70):
        table.note_shard_access(2, 10)
    keys = wl.delete_keys(0.25)
    plan = choose_sharded_plan(
        wl.db, "R", "A", keys, lanes=2, hot_factor=2.0
    )
    hot = [f for f in plan.fragments if f.policy == HOT_SERIALIZE]
    assert [f.shard_id for f in hot] == [2]
    assert all(
        f.is_parallel for f in plan.fragments if f.shard_id != 2
    )


def test_hot_detection_disabled_with_nonpositive_factor():
    wl = build_sharded_workload(CONFIG, shards=4)
    bounds = wl.db.table("R").shard_map.bounds
    keys = [a for a in wl.a_values if a < bounds[0]][:90]
    keys += [a for a in wl.a_values if a >= bounds[-1]][:5]
    plan = choose_sharded_plan(
        wl.db, "R", "A", keys, lanes=2, hot_factor=0.0
    )
    assert all(f.policy is None for f in plan.fragments)
    assert set(HOT_POLICIES) == {HOT_SPLIT, HOT_SERIALIZE}


# ------------------------------------------------------------ catalog


def _tiny_schema():
    return TableSchema.of(
        "R", [Attribute.int_("A"), Attribute.char("PAD", 8)]
    )


def test_create_index_on_sharded_logical_table_is_rejected(db):
    db.create_sharded_table(_tiny_schema(), "A", [10])
    with pytest.raises(CatalogError):
        db.create_index("R", "A")
    db.create_sharded_index("R", "A")  # the sharded spelling works


def test_delete_record_on_logical_table_is_rejected(db):
    db.create_sharded_table(_tiny_schema(), "A", [10])
    rid = db.insert("R", (5, "p"))
    with pytest.raises(CatalogError):
        db.delete_record("R", rid)


def test_load_table_must_precede_sharded_indexes(db):
    db.create_sharded_table(_tiny_schema(), "A", [10])
    db.create_sharded_index("R", "A")
    with pytest.raises(CatalogError):
        db.load_table("R", [(1, "p"), (20, "q")])


# --------------------------------------------------------------- lint


def test_shard_coverage_lint_catches_misrouted_key():
    wl = build_sharded_workload(CONFIG, shards=2)
    keys = wl.delete_keys(0.1)
    plan = choose_sharded_plan(wl.db, "R", "A", keys, lanes=2)
    # Smuggle a key of shard 1 into shard 0's fragment.
    victim = plan.fragments[1].keys[0]
    plan.fragments[0].keys.append(victim)
    with pytest.raises(PlanValidationError) as exc:
        sharded_bulk_delete(wl.db, "R", "A", keys, plan=plan)
    assert any(
        f.rule_id == "plan/shard-coverage" for f in exc.value.findings
    )


def test_shard_coverage_lint_catches_duplicate_key():
    wl = build_sharded_workload(CONFIG, shards=2)
    keys = wl.delete_keys(0.1)
    plan = choose_sharded_plan(wl.db, "R", "A", keys, lanes=2)
    plan.fragments[0].keys.append(plan.fragments[0].keys[0])
    with pytest.raises(PlanValidationError):
        sharded_bulk_delete(wl.db, "R", "A", keys, plan=plan)


def test_clean_sharded_plan_validates():
    from repro.analysis.plan_lint import lint_sharded_plan

    wl = build_sharded_workload(CONFIG, shards=3)
    keys = wl.delete_keys(0.2)
    plan = choose_sharded_plan(wl.db, "R", "A", keys, lanes=2)
    assert lint_sharded_plan(plan, wl.db) == []


# ------------------------------------------------------------- faults


def test_shard_crash_sweep_small_sample():
    report = shard_crash_sweep(
        scenario=ShardSweepScenario(records=40, shards=3),
        max_points=6,
    )
    assert report.ok, report.failures
    assert len(report.outcomes) == 6


# -------------------------------------------------------------- hooks


def test_shard_metrics_are_emitted():
    wl = build_sharded_workload(CONFIG, shards=4)
    keys = wl.delete_keys(0.25)
    wl.reset_measurements()
    observer = wl.db.observe()
    sharded_bulk_delete(wl.db, "R", "A", keys, lanes=2)
    wl.db.unobserve()
    metrics = observer.metrics
    assert metrics.value("shard.route.calls") == 1
    assert metrics.value("shard.route.fragments") == 4
    assert metrics.value("shard.route.keys") == len(keys)
    assert metrics.value("shard.accesses") == len(keys)


def test_hot_metric_carries_the_policy():
    wl = build_sharded_workload(CONFIG, shards=4)
    table = wl.db.table("R")
    for shard_id in (0, 1, 3):
        table.note_shard_access(shard_id, 10)
    for _ in range(70):
        table.note_shard_access(2, 10)
    keys = wl.delete_keys(0.25)
    observer = wl.db.observe()
    sharded_bulk_delete(
        wl.db, "R", "A", keys, lanes=2, hot_factor=2.0
    )
    wl.db.unobserve()
    assert observer.metrics.value("shard.hot.detected") >= 1
    assert observer.metrics.value(f"shard.hot.{HOT_SERIALIZE}") >= 1


def test_shard_routing_pure_contract_is_registered():
    from repro.analysis.effects.contracts import EFFECT_RULES

    assert "effect/shard-routing-pure" in EFFECT_RULES

"""EXPLAIN ANALYZE: plan + measured operator tree, pinned by a golden.

The golden file freezes the full rendered output for one deterministic
workload (the simulation is exact, so the text is reproducible to the
character).  Regenerate deliberately after an accepted cost change::

    REPRO_REGOLD=1 PYTHONPATH=src python -m pytest tests/test_explain_analyze.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.catalog.database import Database
from repro.errors import SqlBindError
from repro.obs.explain import explain_analyze
from repro.sql.interpreter import SqlSession
from tests.conftest import populate

GOLDEN = Path(__file__).parent / "golden" / "explain_analyze.txt"


def analyzed_output() -> str:
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=400)
    keys = sorted(values["A"])[:60]
    return explain_analyze(
        db, "R", "A", keys, force_vertical=True
    )


def test_explain_analyze_matches_golden():
    text = analyzed_output()
    if os.environ.get("REPRO_REGOLD"):
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(text + "\n")
        pytest.skip("golden regenerated")
    assert GOLDEN.exists(), (
        "golden missing; regenerate with REPRO_REGOLD=1"
    )
    assert text + "\n" == GOLDEN.read_text()


def test_explain_analyze_reports_the_required_surfaces():
    text = analyzed_output()
    # per-operator simulated time, inclusive and exclusive
    assert "sim " in text and "(self " in text
    # page breakdown: random / sequential / near-sequential, both sides
    assert "rnd /" in text and "seq /" in text and "near)" in text
    assert "reads " in text and "writes " in text
    # buffer hit rate and exact reconciliation against the disk totals
    assert "buf hit " in text
    assert "reconciliation:" in text and "exact" in text
    assert "MISMATCH" not in text
    # estimate next to measurement
    assert "estimate vs actual:" in text


def test_explain_analyze_really_deletes():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=200)
    keys = sorted(values["A"])[:30]
    explain_analyze(db, "R", "A", keys, force_vertical=True)
    remaining = {v[0] for _, v in db.scan("R")}
    assert remaining.isdisjoint(keys)
    assert db.obs is None  # the temporary observer was detached


def test_sql_explain_analyze_executes_and_renders():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    populate(db, n=200)
    session = SqlSession(db, force_vertical=True)
    keys = sorted(
        {v[0] for _, v in db.scan("R")}
    )[:20]
    in_list = ", ".join(str(k) for k in keys)
    result = session.execute(
        f"EXPLAIN ANALYZE DELETE FROM R WHERE A IN ({in_list})"
    )
    assert result.kind == "explain"
    assert "measured execution:" in result.text
    remaining = {v[0] for _, v in db.scan("R")}
    assert remaining.isdisjoint(keys)


def test_sql_plain_explain_does_not_execute():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    populate(db, n=200)
    session = SqlSession(db)
    before = {rid for rid, _ in db.scan("R")}
    keys = sorted(
        {v[0] for _, v in db.scan("R")}
    )[:5]
    in_list = ", ".join(str(k) for k in keys)
    result = session.execute(
        f"EXPLAIN DELETE FROM R WHERE A IN ({in_list})"
    )
    assert "measured execution:" not in result.text
    assert {rid for rid, _ in db.scan("R")} == before


def test_sql_explain_analyze_rejects_non_bulk_delete():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    populate(db, n=50)
    session = SqlSession(db)
    with pytest.raises(SqlBindError):
        session.execute("EXPLAIN ANALYZE DELETE FROM R WHERE A = 1")

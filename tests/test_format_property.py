"""Property tests for every on-page / serialized format.

Round-trips through bytes are where silent corruption hides; hypothesis
hammers each format with adversarial values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.node import Node, node_capacity
from repro.catalog.composite import CompositeKeyCodec
from repro.catalog.schema import Attribute, TableSchema
from repro.query.spill import SpillFile
from repro.storage.disk import SimulatedDisk
from repro.storage.page_formats import SlottedPage
from repro.storage.rid import RID
from repro.storage.serializer import RecordSerializer

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
u63 = st.integers(min_value=0, max_value=2**63 - 1)


@settings(max_examples=60, deadline=None)
@given(
    level=st.integers(min_value=0, max_value=5),
    entries=st.lists(st.tuples(i64, u63), max_size=30),
    left=u63,
    right=u63,
    high=st.none() | i64,
)
def test_node_pack_roundtrip(level, entries, left, right, high):
    node = Node(
        page_id=7, level=level, entries=sorted(entries),
        left_id=left, right_id=right, high_key=high,
    )
    data = bytearray(1024)
    node.pack_into(data)
    back = Node.unpack_from(7, bytes(data))
    assert back.level == node.level
    assert back.entries == node.entries
    assert back.left_id == node.left_id
    assert back.right_id == node.right_id
    assert back.high_key == node.high_key


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=40), max_size=8),
       st.data())
def test_slotted_page_model(payloads, data):
    page = SlottedPage.format_empty(bytearray(512))
    model = {}
    for payload in payloads:
        if not page.can_fit(len(payload)):
            continue
        slot = page.insert(payload)
        model[slot] = payload
    # Randomly delete some, then verify survivors.
    for slot in list(model):
        if data.draw(st.booleans()):
            page.delete(slot)
            del model[slot]
    if data.draw(st.booleans()):
        page.compact()
    assert dict(page.records()) == model
    assert page.live_records == len(model)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(u63, u63), max_size=200))
def test_spill_file_roundtrip(items):
    disk = SimulatedDisk(page_size=512)
    spill = SpillFile(disk, width=2)
    spill.extend(items)
    assert list(spill) == items
    reopened = SpillFile.from_pages(
        disk, 2, spill.page_ids, spill.tuple_count
    )
    assert list(reopened) == items


@settings(max_examples=80, deadline=None)
@given(
    page=st.integers(min_value=0, max_value=(1 << 47) - 1),
    slot=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_rid_pack_roundtrip_property(page, slot):
    rid = RID(page, slot)
    assert RID.unpack(rid.pack()) == rid


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_composite_codec_order_preserving(data):
    widths = data.draw(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                 max_size=3)
    )
    if sum(widths) > 63:
        widths = [min(w, 63 // len(widths)) for w in widths]
    codec = CompositeKeyCodec(tuple(widths))
    tuples = data.draw(
        st.lists(
            st.tuples(*[
                st.integers(min_value=0, max_value=(1 << w) - 1)
                for w in widths
            ]),
            min_size=2, max_size=20,
        )
    )
    packed = [codec.pack(t) for t in tuples]
    assert sorted(packed) == [codec.pack(t) for t in sorted(tuples)]
    for t, p in zip(tuples, packed):
        assert codec.unpack(p) == t


@settings(max_examples=40, deadline=None)
@given(
    ints=st.lists(i64, min_size=2, max_size=2),
    text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=10,
    ),
)
def test_serializer_roundtrip_property(ints, text):
    schema = TableSchema.of(
        "t",
        [Attribute.int_("a"), Attribute.int_("b"), Attribute.char("s", 16)],
    )
    serde = RecordSerializer(schema)
    values = (ints[0], ints[1], text)
    assert serde.unpack(serde.pack(values)) == values

"""Tests for the lock manager and transaction manager."""

import pytest

from repro.errors import LockConflictError, TransactionError
from repro.txn.locks import LockManager, LockMode
from repro.txn.transactions import TransactionManager, TxnState


def test_shared_locks_compatible():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.S)
    lm.lock_table(2, "R", LockMode.S)  # no conflict


def test_exclusive_conflicts_with_everything():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.X)
    for mode in LockMode:
        with pytest.raises(LockConflictError):
            lm.lock_table(2, "R", mode)


def test_intention_locks_compatible_with_each_other():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.IX)
    lm.lock_table(2, "R", LockMode.IX)
    lm.lock_table(3, "R", LockMode.IS)


def test_shared_blocks_intent_exclusive():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.S)
    with pytest.raises(LockConflictError):
        lm.lock_table(2, "R", LockMode.IX)


def test_reacquire_upgrades_in_place():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.IS)
    lm.lock_table(1, "R", LockMode.X)
    assert lm.table_mode_of(1, "R") is LockMode.X


def test_row_locks_conflict_per_row():
    lm = LockManager()
    lm.lock_row(1, "R", "k1", LockMode.X)
    lm.lock_row(2, "R", "k2", LockMode.X)  # different row: fine
    with pytest.raises(LockConflictError):
        lm.lock_row(2, "R", "k1", LockMode.S)


def test_row_lock_takes_intention_lock():
    lm = LockManager()
    lm.lock_row(1, "R", "k", LockMode.X)
    assert lm.table_mode_of(1, "R") is LockMode.IX


def test_row_lock_blocked_by_table_x():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.X)
    with pytest.raises(LockConflictError):
        lm.lock_row(2, "R", "k", LockMode.X)


def test_escalation_to_table_lock():
    lm = LockManager(escalation_threshold=5)
    for i in range(6):
        lm.lock_row(1, "R", f"k{i}", LockMode.X)
    assert lm.table_mode_of(1, "R") is LockMode.X
    assert lm.row_lock_count(1, "R") == 0
    # Another transaction now conflicts at table granularity.
    with pytest.raises(LockConflictError):
        lm.lock_row(2, "R", "other", LockMode.X)


def test_release_all_clears_everything():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.X)
    lm.lock_row(1, "S", "k", LockMode.X)
    lm.release_all(1)
    lm.lock_table(2, "R", LockMode.X)
    lm.lock_row(2, "S", "k", LockMode.X)


def test_release_single_table():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.X)
    lm.release_table(1, "R")
    lm.lock_table(2, "R", LockMode.X)


def test_holders_introspection():
    lm = LockManager()
    lm.lock_table(1, "R", LockMode.S)
    lm.lock_table(2, "R", LockMode.IS)
    assert set(lm.holders("R")) == {(1, LockMode.S), (2, LockMode.IS)}


def test_row_lock_mode_validation():
    lm = LockManager()
    with pytest.raises(TransactionError):
        lm.lock_row(1, "R", "k", LockMode.IX)


# ----------------------------------------------------------------------
# transactions
# ----------------------------------------------------------------------
def test_commit_releases_locks():
    tm = TransactionManager()
    txn = tm.begin()
    tm.locks.lock_table(txn.txn_id, "R", LockMode.X)
    tm.commit(txn)
    assert txn.state is TxnState.COMMITTED
    other = tm.begin()
    tm.locks.lock_table(other.txn_id, "R", LockMode.X)


def test_abort_runs_undo_in_reverse():
    tm = TransactionManager()
    txn = tm.begin()
    log = []
    txn.on_abort(lambda: log.append("first"))
    txn.on_abort(lambda: log.append("second"))
    tm.abort(txn)
    assert log == ["second", "first"]
    assert txn.state is TxnState.ABORTED


def test_commit_discards_undo():
    tm = TransactionManager()
    txn = tm.begin()
    log = []
    txn.on_abort(lambda: log.append("x"))
    tm.commit(txn)
    assert log == []


def test_double_commit_rejected():
    tm = TransactionManager()
    txn = tm.begin()
    tm.commit(txn)
    with pytest.raises(TransactionError):
        tm.commit(txn)


def test_active_transactions_tracked():
    tm = TransactionManager()
    a, b = tm.begin(), tm.begin()
    assert {t.txn_id for t in tm.active_transactions} == {a.txn_id, b.txn_id}
    tm.commit(a)
    assert tm.active_transactions == [b]

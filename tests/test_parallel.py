"""Tests for multi-lane parallel execution (:mod:`repro.parallel`).

Covers the lane scheduler's simulated-time accounting (dedicated
makespan = max, shared makespan = sum, counters never rewound), the
executor integration (``lanes=1`` bit-identical to serial, parallel
runs logically identical and faster on dedicated lanes, slower on a
shared device), the planner's parallel cost terms, the new lint rules,
observability reconciliation over concurrent spans, and determinism of
the crash-point sweep under parallel index maintenance.
"""
# Lane accounting is pinned with exact equality on purpose
# (serial must be bit-identical, rollups exact):
# lint: allow-file(float-cost-eq)

import dataclasses

import pytest

from repro.analysis.code_lint import lint_source
from repro.analysis.findings import Severity
from repro.analysis.plan_lint import lint_plan
from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.core.planner import (
    choose_plan,
    estimate_vertical_ms,
    estimate_vertical_parallel_ms,
    makespan_ms,
)
from repro.core.plans import BdMethod
from repro.errors import ReproError, StorageError
from repro.faults.sweep import (
    SweepScenario,
    capture_state,
    crash_point_sweep,
    integrity_problems,
)
from repro.obs.schema import validate_span
from repro.parallel import (
    CONTENTION_MODES,
    DEDICATED,
    SHARED,
    LaneScheduler,
    LaneTask,
)
from repro.recovery.restart import RecoverableBulkDelete
from repro.storage.disk import DiskStats, SimulatedDisk
from repro.workload.generator import WorkloadConfig, build_workload


# ---------------------------------------------------------------------------
# scheduler units (bare disk, synthetic tasks)
# ---------------------------------------------------------------------------
def make_disk():
    return SimulatedDisk(page_size=512)


def reader_task(disk, name, pages, estimated=0.0, target=None):
    def run():
        for pid in pages:
            # Raw reads keep the fixture's I/O pattern exact.
            disk.read_page(pid)  # lint: allow(raw-page-io)
        return len(pages)

    return LaneTask(
        name=name, run=run, estimated_ms=estimated, target=target
    )


def fresh_scan_ms(disk, n_pages):
    """Serial cost of scanning ``n_pages`` fresh contiguous pages."""
    p = disk.parameters
    return p.random_ms(disk.page_size) + (n_pages - 1) * p.sequential_ms(
        disk.page_size
    )


def test_dedicated_makespan_is_max_not_sum():
    disk = make_disk()
    f1, f2 = disk.create_file(), disk.create_file()
    p1 = disk.allocate_pages(f1, 8)
    p2 = disk.allocate_pages(f2, 4)
    sched = LaneScheduler(disk, lanes=2, contention=DEDICATED)
    report = sched.run_region(
        "r",
        [
            reader_task(disk, "big", p1, estimated=8.0),
            reader_task(disk, "small", p2, estimated=4.0),
        ],
    )
    big, small = fresh_scan_ms(disk, 8), fresh_scan_ms(disk, 4)
    assert report.serial_ms == pytest.approx(big + small)
    assert report.makespan_ms == pytest.approx(max(big, small))
    assert disk.clock.now_ms == pytest.approx(max(big, small))
    assert report.speedup == pytest.approx((big + small) / big)
    # Results come back in submission order regardless of LPT order.
    assert report.results() == [8, 4]
    assert report.reconciliation_problems() == []


def test_shared_lanes_bill_random_and_serialize():
    disk = make_disk()
    f1, f2 = disk.create_file(), disk.create_file()
    p1 = disk.allocate_pages(f1, 6)
    p2 = disk.allocate_pages(f2, 6)
    sched = LaneScheduler(disk, lanes=2, contention=SHARED)
    report = sched.run_region(
        "r",
        [
            reader_task(disk, "a", p1, estimated=6.0),
            reader_task(disk, "b", p2, estimated=6.0),
        ],
    )
    rand = disk.parameters.random_ms(disk.page_size)
    # Every access is billed random; the device serializes the lanes,
    # so the region makespan is the *sum* of the task busy times.
    assert report.io.random_reads == 12
    assert report.io.sequential_reads == 0
    assert report.makespan_ms == pytest.approx(12 * rand)
    assert disk.clock.now_ms == pytest.approx(12 * rand)
    assert report.speedup == pytest.approx(1.0)
    assert report.reconciliation_problems() == []


def test_shared_single_task_keeps_discounts():
    # Contention needs >1 task actually interleaving; one task on a
    # shared device is just a serial run and keeps its discounts.
    disk = make_disk()
    f1 = disk.create_file()
    pages = disk.allocate_pages(f1, 6)
    sched = LaneScheduler(disk, lanes=2, contention=SHARED)
    report = sched.run_region("r", [reader_task(disk, "only", pages)])
    assert report.io.sequential_reads == 5
    assert report.makespan_ms == pytest.approx(fresh_scan_ms(disk, 6))


def test_empty_region_is_a_noop():
    disk = make_disk()
    sched = LaneScheduler(disk, lanes=4)
    report = sched.run_region("empty", [])
    assert disk.clock.now_ms == 0.0
    assert report.makespan_ms == 0.0
    assert report.speedup == 1.0
    assert report.results() == []


def test_scheduler_rejects_bad_arguments():
    disk = make_disk()
    with pytest.raises(ReproError):
        LaneScheduler(disk, lanes=0)
    with pytest.raises(ReproError):
        LaneScheduler(disk, lanes=2, contention="raid5")
    assert set(CONTENTION_MODES) == {DEDICATED, SHARED}


def test_lanes_do_not_nest():
    disk = make_disk()
    disk.begin_lane(0)
    with pytest.raises(StorageError):
        disk.begin_lane(1)
    disk.end_lane()


def test_lane_assignment_replays_with_same_seed():
    def run_once(seed):
        disk = make_disk()
        files = [disk.create_file() for _ in range(5)]
        pages = [disk.allocate_pages(f, 3) for f in files]
        sched = LaneScheduler(disk, lanes=3, seed=seed)
        # Equal (zero) estimates: every assignment is a tie-break.
        report = sched.run_region(
            "r",
            [reader_task(disk, f"t{i}", p) for i, p in enumerate(pages)],
        )
        return [
            (t.index, t.lane, t.start_ms, t.end_ms) for t in report.tasks
        ]

    assert run_once(7) == run_once(7)
    assert run_once(0) == run_once(0)


def test_counters_are_never_rewound():
    # The clock rewinds between lanes; the counters must not.  The
    # region's global delta is the exact sum of the task deltas, and
    # total io_time_ms exceeds the (parallel) clock advance.
    disk = make_disk()
    f1, f2 = disk.create_file(), disk.create_file()
    p1 = disk.allocate_pages(f1, 8)
    p2 = disk.allocate_pages(f2, 8)
    sched = LaneScheduler(disk, lanes=2)
    report = sched.run_region(
        "r",
        [
            reader_task(disk, "a", p1, estimated=8.0),
            reader_task(disk, "b", p2, estimated=8.0),
        ],
    )
    task_total = DiskStats.merged(t.io for t in report.tasks)
    assert task_total == report.io
    assert report.io.reads == 16
    assert disk.stats.reads == 16
    assert report.io.io_time_ms > disk.clock.now_ms


def test_lane_rollup_does_not_double_count_chained_streams():
    # Regression for the rollup-boundary bug: a sequential stream that
    # straddles a begin_lane/end_lane boundary must be classified once
    # and tallied identically into the global and the lane sinks — the
    # lane rollup and the region delta agree field by field, and the
    # continuation access right after the boundary keeps its discount.
    disk = make_disk()
    f1 = disk.create_file()
    pages = disk.allocate_pages(f1, 10)
    sched = LaneScheduler(disk, lanes=1)
    report = sched.run_region(
        "r",
        [
            reader_task(disk, "first-half", pages[:5], target="R"),
            reader_task(disk, "second-half", pages[5:], target="R"),
        ],
    )
    # One random (cold start), then 9 sequential continuations — the
    # 6th read continues the stream across the task boundary.
    assert report.io.random_reads == 1
    assert report.io.sequential_reads == 9
    assert report.lane_io[0] == report.io
    assert report.reconciliation_problems() == []


def test_diskstats_merge_is_fieldwise_and_ignores_strays():
    a = DiskStats(reads=3, sequential_reads=2, random_reads=1,
                  io_time_ms=5.0)
    b = DiskStats(reads=1, random_reads=1, io_time_ms=2.5)
    b.stray = "poked"  # must not leak into (or crash) the merge
    merged = DiskStats.merged([a, b])
    assert merged.reads == 4
    assert merged.random_reads == 2
    assert merged.sequential_reads == 2
    assert merged.io_time_ms == pytest.approx(7.5)
    assert not hasattr(DiskStats(), "stray")


# ---------------------------------------------------------------------------
# executor integration
# ---------------------------------------------------------------------------
SMALL = WorkloadConfig(
    record_count=400, index_columns=("A", "B", "C"), memory_paper_mb=5.0
)


def run_small_bulk(options=None, observe=False, fraction=0.2):
    wl = build_workload(SMALL)
    keys = wl.delete_keys(fraction)
    wl.reset_measurements()
    db = wl.db
    if observe:
        db.observe()
    result = bulk_delete(
        db, "R", "A", keys, options=options,
        prefer_method=BdMethod.SORT_MERGE, force_vertical=True,
    )
    if observe:
        db.unobserve()
    return db, result


def test_lanes_one_is_bit_identical_to_serial():
    db_serial, r_serial = run_small_bulk()
    db_one, r_one = run_small_bulk(options=BulkDeleteOptions(lanes=1))
    assert r_one.records_deleted == r_serial.records_deleted
    assert db_one.clock.now_ms == db_serial.clock.now_ms  # exact floats
    assert db_one.disk.stats == db_serial.disk.stats
    assert r_one.elapsed_ms == r_serial.elapsed_ms
    assert r_one.parallel_regions == []
    assert capture_state(db_one) == capture_state(db_serial)


def test_parallel_dedicated_same_outcome_faster():
    db_serial, r_serial = run_small_bulk()
    db_par, r_par = run_small_bulk(
        options=BulkDeleteOptions(lanes=4, contention=DEDICATED)
    )
    # Snapshot clocks first: capture_state scans and advances them.
    par_ms, serial_ms = db_par.clock.now_ms, db_serial.clock.now_ms
    assert r_par.records_deleted == r_serial.records_deleted
    assert capture_state(db_par) == capture_state(db_serial)
    # Same structures reported in the same (submission) order.
    assert [s.structure for s in r_par.step_results] == [
        s.structure for s in r_serial.step_results
    ]
    assert par_ms < serial_ms
    regions = {r.name: r for r in r_par.parallel_regions}
    assert set(regions) == {"pre-table", "index-maintenance"}
    for region in regions.values():
        assert region.reconciliation_problems() == []
        assert region.makespan_ms <= region.serial_ms + 1e-6


def test_parallel_shared_same_outcome_slower():
    db_serial, r_serial = run_small_bulk()
    db_shared, r_shared = run_small_bulk(
        options=BulkDeleteOptions(lanes=4, contention=SHARED)
    )
    shared_ms, serial_ms = db_shared.clock.now_ms, db_serial.clock.now_ms
    assert r_shared.records_deleted == r_serial.records_deleted
    assert capture_state(db_shared) == capture_state(db_serial)
    assert shared_ms > serial_ms
    for region in r_shared.parallel_regions:
        assert region.reconciliation_problems() == []


def test_parallel_trace_reconciles_and_validates():
    _, result = run_small_bulk(
        options=BulkDeleteOptions(lanes=4), observe=True
    )
    root = result.trace
    assert root is not None
    assert validate_span(root.to_dict()) == []
    spans = list(root.walk())
    parallel = [s for s in spans if s.kind == "parallel"]
    assert {s.name for s in parallel} == {
        "parallel[pre-table]", "parallel[index-maintenance]"
    }
    for region_span in parallel:
        lanes = [c for c in region_span.children if c.kind == "lane"]
        assert lanes
        # Lane children legitimately overlap in simulated time; the
        # union-based exclusive time must still be non-negative and
        # the children must fit inside the region.
        assert region_span.self_ms >= 0.0
        for lane_span in lanes:
            assert lane_span.start_ms >= region_span.start_ms - 1e-6
            assert lane_span.end_ms <= region_span.end_ms + 1e-6
        assert region_span.attrs["makespan_ms"] == pytest.approx(
            region_span.elapsed_ms
        )
        assert region_span.attrs["speedup"] >= 1.0
    # Counter reconciliation survives concurrency: the sum of every
    # span's exclusive I/O equals the root's inclusive I/O.
    assert sum(s.self_io.reads for s in spans) == root.io.reads
    assert sum(s.self_io.writes for s in spans) == root.io.writes


def test_pretable_overlap_needs_multiple_unique_probes():
    # With two lane spans in the index-maintenance region of a 4-lane
    # dedicated run over (B, C), the branches start at the same barrier
    # and genuinely overlap in simulated time.
    _, result = run_small_bulk(
        options=BulkDeleteOptions(lanes=4), observe=True
    )
    region = next(
        s for s in result.trace.walk()
        if s.name == "parallel[index-maintenance]"
    )
    lanes = [c for c in region.children if c.kind == "lane"]
    assert len(lanes) >= 2
    starts = {round(c.start_ms, 6) for c in lanes}
    assert len(starts) == 1  # all branches launch at the barrier


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------
def test_makespan_ms_lpt():
    assert makespan_ms([], 4) == 0.0
    assert makespan_ms([5.0, 1.0], 1) == 6.0
    # LPT on 2 lanes: 4 | 3+2, then 1 joins the 4-lane -> max 5.
    assert makespan_ms([4.0, 3.0, 2.0, 1.0], 2) == 5.0
    # More lanes than branches: the longest branch is the floor.
    assert makespan_ms([4.0, 3.0], 8) == 4.0


def test_estimate_vertical_parallel_terms():
    wl = build_workload(SMALL)
    db, table = wl.db, wl.db.table("R")
    n = 80
    serial = estimate_vertical_ms(db, table, n)
    same = estimate_vertical_parallel_ms(db, table, n, lanes=1)
    assert same.io_ms == serial.io_ms  # identical floats
    dedicated = estimate_vertical_parallel_ms(db, table, n, lanes=2)
    shared = estimate_vertical_parallel_ms(
        db, table, n, lanes=2, contention=SHARED
    )
    assert dedicated.io_ms < serial.io_ms
    assert shared.io_ms > serial.io_ms
    assert "makespan" in dedicated.detail
    assert "shared device" in shared.detail


def test_choose_plan_carries_parallel_settings():
    wl = build_workload(SMALL)
    plan = choose_plan(
        wl.db, "R", "A", 80, force_vertical=True, lanes=2
    )
    assert plan.lanes == 2
    assert plan.contention == DEDICATED
    assert any("costed for 2 dedicated" in n for n in plan.notes)
    text = plan.explain()
    assert "parallelism: 2 dedicated lanes" in text
    # Serial plans don't mention parallelism at all.
    serial_plan = choose_plan(wl.db, "R", "A", 80, force_vertical=True)
    assert "parallelism" not in serial_plan.explain()


# ---------------------------------------------------------------------------
# lint rules
# ---------------------------------------------------------------------------
def lane_safety(findings):
    return [f for f in findings if f.rule_id == "plan/parallel-lane-safety"]


def test_plan_lint_parallel_lane_safety():
    wl = build_workload(SMALL)
    db = wl.db
    plan = choose_plan(db, "R", "A", 80, force_vertical=True, lanes=2)
    assert lane_safety(lint_plan(plan, db)) == []

    plan.lanes = 0
    bad = lane_safety(lint_plan(plan, db))
    assert bad and bad[0].severity is Severity.ERROR

    plan.lanes = 2
    plan.contention = "raid5"
    bad = lane_safety(lint_plan(plan, db))
    assert bad and bad[0].severity is Severity.ERROR

    plan.contention = DEDICATED
    plan.steps.append(
        dataclasses.replace(plan.steps_after_table()[0])
    )
    dup = lane_safety(lint_plan(plan, db))
    assert any(
        f.severity is Severity.ERROR and "share" in f.message for f in dup
    )


def test_plan_lint_warns_on_idle_lanes():
    wl = build_workload(SMALL)
    db = wl.db
    plan = choose_plan(db, "R", "A", 80, force_vertical=True, lanes=64)
    findings = lane_safety(lint_plan(plan, db))
    assert findings and findings[0].severity is Severity.WARNING
    assert "idle" in findings[0].message


def test_code_lint_flags_clock_rewind_outside_parallel():
    src = "def f(clock):\n    clock.rewind_to(0.0)\n"
    findings = lint_source(src, filename="core/x.py")
    assert any(f.rule_id == "code/clock-rewind" for f in findings)
    # The lane scheduler itself is the one allowed caller.
    allowed = lint_source(src, filename="parallel/lanes.py",
                          in_parallel=True)
    assert not any(f.rule_id == "code/clock-rewind" for f in allowed)


# ---------------------------------------------------------------------------
# recovery + crash-point sweep determinism
# ---------------------------------------------------------------------------
WIDE = SweepScenario(
    records=24, delete_fraction=0.4, child_rows=4,
    index_columns=("A", "B", "C"),
)


def test_recoverable_parallel_matches_serial_state():
    serial_case = WIDE.build()
    RecoverableBulkDelete(
        serial_case.db, "R", "A", serial_case.keys, serial_case.log
    ).run()
    par_case = WIDE.build()
    RecoverableBulkDelete(
        par_case.db, "R", "A", par_case.keys, par_case.log, lanes=2
    ).run()
    assert integrity_problems(
        par_case.db, par_case.registry, par_case.keys
    ) == []
    assert capture_state(par_case.db) == capture_state(serial_case.db)


def test_parallel_crash_sweep_is_clean_and_replayable():
    scenario = dataclasses.replace(WIDE, lanes=2)
    first = crash_point_sweep(scenario, max_points=4, double_crash=False)
    assert first.ok, first.summary()
    again = crash_point_sweep(scenario, max_points=4, double_crash=False)
    # Seeded lane interleaving: the durable-event numbering (and so
    # every crash point) replays exactly.
    assert again.durable_events == first.durable_events
    assert again.points == first.points


def test_cli_faultsweep_accepts_lanes():
    from repro.cli import main

    rc = main([
        "faultsweep", "--records", "24", "--lanes", "2",
        "--max-points", "3", "--no-double",
    ])
    assert rc == 0

"""Shared fixtures: small databases, populated tables, tiny workloads."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro import Attribute, Database, TableSchema
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk() -> SimulatedDisk:
    return SimulatedDisk(page_size=512)


@pytest.fixture
def strict_disk() -> SimulatedDisk:
    return SimulatedDisk(page_size=512, retain_freed=False)


@pytest.fixture
def pool(disk: SimulatedDisk) -> BufferPool:
    return BufferPool(disk, capacity_pages=8)


@pytest.fixture
def db() -> Database:
    """A database with small pages so trees get interesting shapes."""
    return Database(page_size=512, memory_bytes=64 * 1024)


SCHEMA = TableSchema.of(
    "R",
    [
        Attribute.int_("A"),
        Attribute.int_("B"),
        Attribute.char("PAD", 40),
    ],
)


def populate(
    db: Database,
    n: int = 500,
    seed: int = 7,
    indexes: Tuple[str, ...] = ("A", "B"),
    unique_a: bool = True,
    clustered_on: str = None,
) -> Dict[str, List[int]]:
    """Create table R with ``n`` rows and indexes; returns column values."""
    rng = random.Random(seed)
    a_vals = rng.sample(range(10 * n), n)
    b_vals = rng.sample(range(10 * n), n)
    rows = list(zip(a_vals, b_vals, ["p"] * n))
    if clustered_on == "A":
        rows.sort(key=lambda r: r[0])
    elif clustered_on == "B":
        rows.sort(key=lambda r: r[1])
    db.create_table(SCHEMA)
    db.load_table("R", rows)
    for col in indexes:
        db.create_index(
            "R",
            col,
            unique=(unique_a and col == "A"),
            clustered=(col == clustered_on),
        )
    return {"A": a_vals, "B": b_vals}


@pytest.fixture
def populated_db() -> Tuple[Database, Dict[str, List[int]]]:
    database = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(database)
    return database, values

"""The ``python -m repro.analysis`` gate and the ``repro lint`` CLI.

Acceptance: exit 0 on the repo itself, nonzero with structured
findings on a seeded-violation tree, JSON output for tooling.
"""

import json

from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main

VIOLATING_SOURCE = """\
import random
import time


def jitter(disk, page_id):
    time.sleep(0)
    start = time.perf_counter()
    disk.read_page(page_id)
    return start + random.random()
"""

CLEAN_SOURCE = """\
import random


def sample(seed):
    return random.Random(seed).randint(0, 9)
"""


def seed_tree(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(source)
    return pkg


def test_gate_passes_on_the_repo(capsys):
    assert analysis_main([]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "ok" in out


def test_gate_fails_on_seeded_violations(tmp_path, capsys):
    root = seed_tree(tmp_path, VIOLATING_SOURCE)
    assert analysis_main(
        ["--root", str(root), "--skip-plans"]
    ) == 1
    out = capsys.readouterr().out
    assert "code/wall-clock" in out
    assert "code/unseeded-random" in out
    assert "code/raw-page-io" in out
    assert "FAIL" in out


def test_gate_passes_on_clean_tree(tmp_path):
    root = seed_tree(tmp_path, CLEAN_SOURCE)
    assert analysis_main(
        ["--root", str(root), "--skip-plans"]
    ) == 0


def test_json_format_is_structured(tmp_path, capsys):
    root = seed_tree(tmp_path, VIOLATING_SOURCE)
    assert analysis_main(
        ["--root", str(root), "--skip-plans", "--format", "json"]
    ) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["errors"] >= 3
    rules = {f["rule"] for f in report["findings"]}
    assert {"code/wall-clock", "code/unseeded-random",
            "code/raw-page-io"} <= rules
    sample = report["findings"][0]
    assert {"rule", "severity", "node", "message", "file",
            "line"} <= set(sample)


def test_strict_mode_fails_on_warnings(tmp_path):
    # The planner corpus deliberately contains one WARNING case
    # (delayed unique index under a tight budget): --strict turns the
    # otherwise-green run into a failure.
    root = seed_tree(tmp_path, CLEAN_SOURCE)
    assert analysis_main(["--root", str(root)]) == 0
    assert analysis_main(["--root", str(root), "--strict"]) == 1


def test_repro_lint_subcommand(tmp_path, capsys):
    assert cli_main(["lint"]) == 0
    capsys.readouterr()
    root = seed_tree(tmp_path, VIOLATING_SOURCE)
    assert cli_main(
        ["analysis", "--root", str(root), "--skip-plans",
         "--format", "json"]
    ) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["errors"] >= 3

"""Tests for the crash-resumable retention run (repro.retention.run).

Covers the clean end-to-end pass (two overlapping policies over heap +
LSM engines, CASCADE/SET NULL/RESTRICT edges), resume from
representative crash points, the terminal-recovery contract, and the
non-vacuity of the erasure audit (planted traces must be caught).
The exhaustive every-durable-event sweep lives behind
``repro faultsweep --retention``; these tests pin the contracts at a
pytest-sized number of points.
"""

from repro.core.integrity import SET_NULL_VALUE
from repro.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.faults.sweep import capture_state
from repro.retention import (
    RecoverableRetentionRun,
    RetentionScenario,
    audit_erasure,
    audit_mutation_checks,
    recover_retention,
    retention_integrity_problems,
)

SCENARIO = RetentionScenario()


def _run(case, plans=None, faults=None):
    plans = plans if plans is not None else case.compile()
    report = RecoverableRetentionRun(
        case.db, plans, case.log, faults=faults, full_page_writes=True,
    ).run()
    return plans, report


def _column(case, table, name):
    idx = case.db.table(table).schema.column_index(name)
    return [values[idx] for _, values in case.db.scan(table)]


def test_clean_run_erases_victims_everywhere():
    case = SCENARIO.build()
    victims = set(case.victims)
    expired = set(case.expired_ts)
    survivors_orders = [
        (u, t) for (u, t, _) in (
            (v[0], v[1], None) for _, v in case.db.scan("orders")
        )
        if u not in victims and t not in expired
    ]
    plans, report = _run(case)

    assert report.records_deleted > 0 and report.records_nulled > 0
    # Root, CASCADE heap child, CASCADE LSM child: victims gone.
    assert victims.isdisjoint(_column(case, "users", "UID"))
    assert victims.isdisjoint(_column(case, "orders", "OUID"))
    assert victims.isdisjoint(_column(case, "events", "EUID"))
    # The overlapping age policy expired the oldest orders too.
    assert expired.isdisjoint(_column(case, "orders", "TS"))
    assert sorted(
        (u, t) for u, t in zip(
            _column(case, "orders", "OUID"), _column(case, "orders", "TS")
        )
    ) == sorted(survivors_orders)
    # SET NULL child: rows survive, references nulled.
    puids = _column(case, "profiles", "PUID")
    assert victims.isdisjoint(puids)
    assert puids.count(SET_NULL_VALUE) == len(victims)
    # RESTRICT child untouched (it references survivors only).
    assert len(_column(case, "audits", "AUID")) == SCENARIO.users - len(
        victims
    )


def test_clean_run_audits_clean_and_is_terminal():
    case = SCENARIO.build()
    plans, _ = _run(case)
    audit = audit_erasure(case.db, case.log, case.witness(plans))
    assert audit.ok, [f.describe() for f in audit.findings[:5]]
    assert not retention_integrity_problems(
        case.db, case.registry, case.victims
    )
    # Nothing left to resume, twice over.
    assert not recover_retention(case.db, case.log).resumed
    assert not recover_retention(case.db, case.log).resumed


def test_recovery_without_a_run_is_a_no_op():
    case = SCENARIO.build()
    report = recover_retention(case.db, case.log)
    assert not report.resumed
    assert report.nodes_skipped == 0 and report.nodes_rerun == 0


def test_resume_from_representative_crash_points():
    # The fault-free pass counts durable events; crash at five spread
    # points, recover, and require the oracle state + a clean audit +
    # terminal recovery at each.  (`faultsweep --retention` sweeps
    # every point exhaustively.)
    oracle_case = SCENARIO.build()
    counter = FaultInjector()
    plans, _ = _run(oracle_case, faults=counter)
    oracle = capture_state(oracle_case.db)
    total = counter.durable_event_count
    assert total > 20

    initial = capture_state(SCENARIO.build().db)
    for event in (1, total // 4, total // 2, 3 * total // 4, total - 1):
        case = SCENARIO.build()
        plans = case.compile()
        crashed = False
        try:
            _run(case, plans,
                 faults=FaultInjector(FaultPlan(crash_after_event=event)))
        except SimulatedCrash:
            crashed = True
        assert crashed, f"no crash fired at event {event}"
        recovery = recover_retention(
            case.db, case.log, full_page_writes=True
        )
        if not recovery.resumed and capture_state(case.db) != oracle:
            # The begin record died with the crash: the state must be
            # pristine and the client re-issues the run from scratch.
            assert capture_state(case.db) == initial, f"event {event}"
            _run(case, case.compile())
        assert capture_state(case.db) == oracle, f"event {event}"
        assert not retention_integrity_problems(
            case.db, case.registry, case.victims
        ), f"event {event}"
        audit = audit_erasure(case.db, case.log, case.witness(plans))
        assert audit.ok, (
            f"event {event}: {[f.describe() for f in audit.findings[:3]]}"
        )
        assert not recover_retention(case.db, case.log).resumed


def test_resume_skips_sealed_nodes():
    # Crash late in the run: recovery must re-run only the unsealed
    # tail, not repeat nodes whose retention_node_done already landed.
    oracle_case = SCENARIO.build()
    counter = FaultInjector()
    _run(oracle_case, faults=counter)
    case = SCENARIO.build()
    try:
        _run(case, faults=FaultInjector(FaultPlan(
            crash_after_event=(counter.durable_event_count * 3) // 4
        )))
    except SimulatedCrash:
        pass
    recovery = recover_retention(case.db, case.log, full_page_writes=True)
    assert recovery.resumed
    assert recovery.nodes_skipped > 0
    assert capture_state(case.db) == capture_state(oracle_case.db)


def test_audit_mutation_checks_catch_planted_traces():
    # The audit is not vacuously green: each planted stale trace (index
    # entry, WAL image, LSM tombstone, freed page) must produce a
    # finding in its expected location.
    assert audit_mutation_checks(SCENARIO) == []

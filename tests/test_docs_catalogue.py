"""Docs/registry sync: every rule id is catalogued, and vice versa.

``docs/static_analysis.md`` is the human-facing rule catalogue; the
registries (``CODE_RULES``, the plan-rule registry, ``EFFECT_RULES``
plus the lane/baseline rule ids) are the machine truth.  This test
fails whenever a rule is added, renamed, or removed on one side only,
so the catalogue cannot silently drift from the checkers.
"""

import re
from pathlib import Path

from repro.analysis.code_lint import CODE_RULES
from repro.analysis.effects import STALE_BASELINE_RULE
from repro.analysis.effects.contracts import EFFECT_RULES
from repro.analysis.effects.lanesafety import LANE_RULE, OPAQUE_RULE
from repro.analysis.plan_lint import PLAN_RULES

DOC = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"

# Emitted for unparseable files; not a registered visitor rule.
SYNTHETIC_RULES = {"code/syntax"}

_RULE_ID = re.compile(r"`((?:plan|code|effect)/[a-z0-9-]+)`")


def registry_rule_ids():
    return (
        set(CODE_RULES)
        | set(PLAN_RULES)
        | set(EFFECT_RULES)
        | {LANE_RULE, OPAQUE_RULE, STALE_BASELINE_RULE}
        | SYNTHETIC_RULES
    )


def documented_rule_ids():
    return set(_RULE_ID.findall(DOC.read_text()))


def test_every_registered_rule_is_documented():
    missing = registry_rule_ids() - documented_rule_ids()
    assert not missing, (
        f"rules with no row in {DOC.name}: {sorted(missing)}"
    )


def test_every_documented_rule_exists():
    phantom = documented_rule_ids() - registry_rule_ids()
    assert not phantom, (
        f"{DOC.name} documents rules no checker registers: "
        f"{sorted(phantom)}"
    )


def test_rule_namespaces_are_disjoint():
    # A plan/code/effect prefix states which checker owns the rule;
    # one id must never be registered by two checkers.
    assert not set(CODE_RULES) & set(PLAN_RULES)
    assert not set(CODE_RULES) & set(EFFECT_RULES)
    assert not set(PLAN_RULES) & set(EFFECT_RULES)
    assert all(r.startswith("code/") for r in CODE_RULES)
    assert all(r.startswith("plan/") for r in PLAN_RULES)
    assert all(r.startswith("effect/") for r in EFFECT_RULES)

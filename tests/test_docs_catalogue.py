"""Docs/registry sync: every rule id is catalogued, and vice versa.

``docs/static_analysis.md`` is the human-facing rule catalogue; the
registries (``CODE_RULES``, the plan-rule registry, ``EFFECT_RULES``
plus the lane/baseline rule ids) are the machine truth.  This test
fails whenever a rule is added, renamed, or removed on one side only,
so the catalogue cannot silently drift from the checkers.
"""

import re
from pathlib import Path

from repro.analysis.code_lint import CODE_RULES
from repro.analysis.effects import STALE_BASELINE_RULE
from repro.analysis.effects.contracts import EFFECT_RULES
from repro.analysis.effects.lanesafety import LANE_RULE, OPAQUE_RULE
from repro.analysis.plan_lint import PLAN_RULES
from repro.workload.traffic import STALL_LANE, STALL_LOCK

DOC = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"

# Emitted for unparseable files; not a registered visitor rule.
SYNTHETIC_RULES = {"code/syntax"}

_RULE_ID = re.compile(r"`((?:plan|code|effect)/[a-z0-9-]+)`")


def registry_rule_ids():
    return (
        set(CODE_RULES)
        | set(PLAN_RULES)
        | set(EFFECT_RULES)
        | {LANE_RULE, OPAQUE_RULE, STALE_BASELINE_RULE}
        | SYNTHETIC_RULES
    )


def documented_rule_ids():
    return set(_RULE_ID.findall(DOC.read_text()))


def test_every_registered_rule_is_documented():
    missing = registry_rule_ids() - documented_rule_ids()
    assert not missing, (
        f"rules with no row in {DOC.name}: {sorted(missing)}"
    )


def test_every_documented_rule_exists():
    phantom = documented_rule_ids() - registry_rule_ids()
    assert not phantom, (
        f"{DOC.name} documents rules no checker registers: "
        f"{sorted(phantom)}"
    )


# ----------------------------------------------------------------------
# metrics catalogue sync: the oltp.* family (docs/observability.md)
# ----------------------------------------------------------------------
OBS_DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"
OBSERVER_SRC = (
    Path(__file__).resolve().parent.parent
    / "src" / "repro" / "obs" / "observer.py"
)

# The expansions of the f-string metric names in the observer hooks.
_OP_KINDS = ("read", "update", "insert")
_STALL_KINDS = (STALL_LOCK, STALL_LANE)

_EMIT = re.compile(r'(?:counter|timer)\(\s*f?"(oltp\.[^"]+)"')
# A documented name: `oltp.a.b` or `oltp.a.{x,y,z}` inside backticks.
_DOC_NAME = re.compile(r"`(oltp\.[a-z_.{},]+)`")


def emitted_oltp_metric_names():
    names = set()
    for raw in _EMIT.findall(OBSERVER_SRC.read_text()):
        if "{kind}" in raw:
            names |= {raw.replace("{kind}", k) for k in _OP_KINDS}
        elif "{stall_kind}" in raw:
            names |= {raw.replace("{stall_kind}", k) for k in _STALL_KINDS}
        else:
            names.add(raw)
    return names


def documented_oltp_metric_names():
    names = set()
    for raw in _DOC_NAME.findall(OBS_DOC.read_text()):
        match = re.fullmatch(r"([a-z_.]+)\{([a-z_,]+)\}", raw)
        if match:
            prefix, alts = match.groups()
            names |= {prefix + alt for alt in alts.split(",")}
        else:
            names.add(raw)
    return names


def test_every_emitted_oltp_metric_is_catalogued():
    assert emitted_oltp_metric_names(), "observer hooks must emit oltp.*"
    missing = emitted_oltp_metric_names() - documented_oltp_metric_names()
    assert not missing, (
        f"oltp metrics with no catalog row in observability.md: "
        f"{sorted(missing)}"
    )


def test_every_catalogued_oltp_metric_is_emitted():
    phantom = documented_oltp_metric_names() - emitted_oltp_metric_names()
    assert not phantom, (
        f"observability.md catalogues oltp metrics the observer never "
        f"emits: {sorted(phantom)}"
    )


# ----------------------------------------------------------------------
# metrics catalogue sync: the shard.* family (docs/observability.md)
# ----------------------------------------------------------------------
_SHARD_EMIT = re.compile(r'(?:counter|timer)\(\s*f?"(shard\.[^"]+)"')


def emitted_shard_metric_names():
    from repro.shard import HOT_POLICIES

    names = set()
    for raw in _SHARD_EMIT.findall(OBSERVER_SRC.read_text()):
        if "{policy}" in raw:
            names |= {raw.replace("{policy}", p) for p in HOT_POLICIES}
        else:
            names.add(raw)
    return names


def documented_shard_metric_names():
    doc_name = re.compile(r"`(shard\.[a-z_.{},]+)`")
    names = set()
    for raw in doc_name.findall(OBS_DOC.read_text()):
        match = re.fullmatch(r"([a-z_.]+)\{([a-z_,]+)\}", raw)
        if match:
            prefix, alts = match.groups()
            names |= {prefix + alt for alt in alts.split(",")}
        else:
            names.add(raw)
    return names


def test_every_emitted_shard_metric_is_catalogued():
    assert emitted_shard_metric_names(), "observer hooks must emit shard.*"
    missing = emitted_shard_metric_names() - documented_shard_metric_names()
    assert not missing, (
        f"shard metrics with no catalog row in observability.md: "
        f"{sorted(missing)}"
    )


def test_every_catalogued_shard_metric_is_emitted():
    phantom = documented_shard_metric_names() - emitted_shard_metric_names()
    assert not phantom, (
        f"observability.md catalogues shard metrics the observer never "
        f"emits: {sorted(phantom)}"
    )


# ----------------------------------------------------------------------
# metrics catalogue sync: the lsm.* family (docs/observability.md)
# ----------------------------------------------------------------------
_LSM_EMIT = re.compile(r'(?:counter|timer)\(\s*f?"(lsm\.[^"]+)"')

# The expansion of ``on_tombstone_write``'s f-string kind.
_TOMBSTONE_KINDS = ("point", "range")


def emitted_lsm_metric_names():
    names = set()
    for raw in _LSM_EMIT.findall(OBSERVER_SRC.read_text()):
        if "{kind}" in raw:
            names |= {
                raw.replace("{kind}", k) for k in _TOMBSTONE_KINDS
            }
        else:
            names.add(raw)
    return names


def documented_lsm_metric_names():
    doc_name = re.compile(r"`(lsm\.[a-z_.{},]+)`")
    names = set()
    for raw in doc_name.findall(OBS_DOC.read_text()):
        match = re.fullmatch(r"([a-z_.]+)\{([a-z_,]+)\}", raw)
        if match:
            prefix, alts = match.groups()
            names |= {prefix + alt for alt in alts.split(",")}
        else:
            names.add(raw)
    return names


def test_every_emitted_lsm_metric_is_catalogued():
    assert emitted_lsm_metric_names(), "observer hooks must emit lsm.*"
    missing = emitted_lsm_metric_names() - documented_lsm_metric_names()
    assert not missing, (
        f"lsm metrics with no catalog row in observability.md: "
        f"{sorted(missing)}"
    )


def test_every_catalogued_lsm_metric_is_emitted():
    phantom = documented_lsm_metric_names() - emitted_lsm_metric_names()
    assert not phantom, (
        f"observability.md catalogues lsm metrics the observer never "
        f"emits: {sorted(phantom)}"
    )


# ----------------------------------------------------------------------
# metrics catalogue sync: the retention.* family (docs/observability.md)
# ----------------------------------------------------------------------
_RETENTION_EMIT = re.compile(r'(?:counter|timer)\(\s*f?"(retention\.[^"]+)"')

# The expansion of ``on_retention_node``'s f-string action name
# (``delete``/``set-null``, hyphens mapped to underscores).
_RETENTION_ACTIONS = ("delete", "set_null")


def emitted_retention_metric_names():
    names = set()
    for raw in _RETENTION_EMIT.findall(OBSERVER_SRC.read_text()):
        if "{name}" in raw:
            names |= {
                raw.replace("{name}", a) for a in _RETENTION_ACTIONS
            }
        else:
            names.add(raw)
    return names


def documented_retention_metric_names():
    doc_name = re.compile(r"`(retention\.[a-z_.{},]+)`")
    names = set()
    for raw in doc_name.findall(OBS_DOC.read_text()):
        match = re.fullmatch(r"([a-z_.]+)\{([a-z_,]+)\}", raw)
        if match:
            prefix, alts = match.groups()
            names |= {prefix + alt for alt in alts.split(",")}
        else:
            names.add(raw)
    return names


def test_every_emitted_retention_metric_is_catalogued():
    assert emitted_retention_metric_names(), (
        "observer hooks must emit retention.*"
    )
    missing = (
        emitted_retention_metric_names()
        - documented_retention_metric_names()
    )
    assert not missing, (
        f"retention metrics with no catalog row in observability.md: "
        f"{sorted(missing)}"
    )


def test_every_catalogued_retention_metric_is_emitted():
    phantom = (
        documented_retention_metric_names()
        - emitted_retention_metric_names()
    )
    assert not phantom, (
        f"observability.md catalogues retention metrics the observer "
        f"never emits: {sorted(phantom)}"
    )


def test_rule_namespaces_are_disjoint():
    # A plan/code/effect prefix states which checker owns the rule;
    # one id must never be registered by two checkers.
    assert not set(CODE_RULES) & set(PLAN_RULES)
    assert not set(CODE_RULES) & set(EFFECT_RULES)
    assert not set(PLAN_RULES) & set(EFFECT_RULES)
    assert all(r.startswith("code/") for r in CODE_RULES)
    assert all(r.startswith("plan/") for r in PLAN_RULES)
    assert all(r.startswith("effect/") for r in EFFECT_RULES)

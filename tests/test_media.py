"""The media layer: checksums, read faults, retry/repair, scrubbing.

Covers the ``repro.media`` package end to end at unit granularity —
the exhaustive outcome check lives in ``repro.media.sweep`` (exercised
here on a tiny scenario and in CI at scale):

* disk primitives: checksum stamping, corruption detection, quarantine
  and restore, freed-page access rules,
* :class:`~repro.media.MediaPolicy` validation and
  :class:`~repro.media.MediaRecovery` retry / repair / quarantine
  semantics, including the no-fault fast path being free,
* the scrubber (detection without a media layer, healing with one,
  structural cross-reconciliation) and its gate form,
* integration: the buffer pool hook, ``BulkDeleteOptions.media``,
  ``RecoverableBulkDelete(media=...)``, ``recover(scrub=True)``,
* the ``code/media-error-outside-media`` lint rule,
* ``media.*`` metrics and ``retry`` spans through ``repro.obs``.
"""
# Media tests corrupt and inspect pages below the pool on purpose,
# and pin exact deterministic retry costs:
# lint: allow-file(raw-page-io, float-cost-eq)

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.code_lint import lint_source
from repro.catalog.database import Database
from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.errors import (
    ChecksumMismatch,
    MediaError,
    QuarantinedPage,
    RetriesExhausted,
    StorageError,
    TransientReadError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import LATENT, STUCK, TRANSIENT, FaultPlan
from repro.faults.sweep import SweepScenario, capture_state
from repro.media import (
    MediaPolicy,
    MediaRecovery,
    media_sweep,
    require_scrubbed,
    scrub_database,
    wal_image_source,
)
from repro.obs.observer import Observer, iter_spans, observed
from repro.recovery.restart import RecoverableBulkDelete, recover
from repro.recovery.wal import WriteAheadLog
from repro.storage.disk import SimulatedDisk
from repro.storage.page_formats import page_checksum
from tests.conftest import populate


def one_page_disk(content: bytes = b"x"):
    """A disk with a single written page; returns (disk, pid, image)."""
    disk = SimulatedDisk(page_size=512)
    pid = disk.allocate_page(disk.create_file())
    image = (content * disk.page_size)[: disk.page_size]
    disk.write_page(pid, image)
    return disk, pid, image


def flipped(image: bytes) -> bytes:
    return bytes([image[0] ^ 0xFF]) + image[1:]


# ---------------------------------------------------------------------------
# disk primitives
# ---------------------------------------------------------------------------
def test_writes_stamp_checksums_and_clean_reads_verify():
    disk, pid, image = one_page_disk()
    assert disk.checksums[pid] == page_checksum(image)
    assert disk.verify_page(pid)
    assert disk.read_page(pid) == image


def test_at_rest_corruption_fails_the_next_verified_read():
    disk, pid, image = one_page_disk()
    disk.corrupt_page(pid, flipped(image))
    assert not disk.verify_page(pid)
    assert disk.corrupt_page_ids() == [pid]
    with pytest.raises(ChecksumMismatch) as excinfo:
        disk.read_page(pid)
    assert excinfo.value.page_id == pid


def test_verify_reads_false_restores_the_trusting_read_path():
    disk = SimulatedDisk(page_size=512, verify_reads=False)
    pid = disk.allocate_page(disk.create_file())
    image = b"x" * disk.page_size
    disk.write_page(pid, image)
    disk.corrupt_page(pid, flipped(image))
    assert disk.read_page(pid) == flipped(image)  # silently wrong: opt-in
    assert not disk.verify_page(pid)  # ...but still detectable offline


def test_quarantine_fences_reads_and_writes_until_restore():
    disk, pid, image = one_page_disk()
    disk.quarantine_page(pid)
    with pytest.raises(QuarantinedPage):
        disk.read_page(pid)
    with pytest.raises(QuarantinedPage):
        disk.write_page(pid, image)
    disk.restore_page(pid, image)
    assert disk.quarantined == set()
    assert disk.read_page(pid) == image
    assert disk.verify_page(pid)


def test_restore_page_restamps_the_checksum():
    disk, pid, image = one_page_disk()
    disk.corrupt_page(pid, flipped(image))
    disk.restore_page(pid, flipped(image))  # operator keeps the new bytes
    assert disk.verify_page(pid)
    assert disk.read_page(pid) == flipped(image)


def test_page_ids_sorted_and_excludes_freed():
    disk = SimulatedDisk(page_size=512)
    pids = disk.allocate_pages(disk.create_file(), 3)
    disk.free_page(pids[1])
    assert disk.page_ids() == sorted([pids[0], pids[2]])


def test_strict_mode_read_write_of_freed_page_raises():
    # Satellite regression: the ``allow_freed`` branch of
    # ``SimulatedDisk._require_page``.
    disk = SimulatedDisk(page_size=512, retain_freed=False)
    pid = disk.allocate_page(disk.create_file())
    disk.free_page(pid)
    with pytest.raises(StorageError, match="has been freed"):
        disk.read_page(pid)
    with pytest.raises(StorageError, match="has been freed"):
        disk.write_page(pid, b"z" * disk.page_size)
    with pytest.raises(StorageError, match="has been freed"):
        disk.free_page(pid)


def test_retain_mode_tolerates_freed_access_and_double_free(disk):
    pid = disk.allocate_page(disk.create_file())
    disk.write_page(pid, b"y" * disk.page_size)
    disk.free_page(pid)
    assert disk.read_page(pid) == b"y" * disk.page_size
    disk.free_page(pid)  # ignored


# ---------------------------------------------------------------------------
# read-fault injection
# ---------------------------------------------------------------------------
def test_transient_fault_recovers_on_the_kth_attempt():
    disk, pid, image = one_page_disk()
    plan = FaultPlan(read_fault=TRANSIENT, read_fault_page=pid,
                     read_recover_after=3)
    with FaultInjector(plan).armed(disk):
        for _ in range(2):
            with pytest.raises(TransientReadError):
                disk.read_page(pid)
        assert disk.read_page(pid) == image  # third attempt succeeds


def test_latent_corruption_is_applied_at_arm_time_and_deterministic():
    images = []
    for _ in range(2):
        disk, pid, image = one_page_disk()
        plan = FaultPlan(read_fault=LATENT, read_fault_page=pid,
                         read_fault_seed=11)
        with FaultInjector(plan).armed(disk):
            assert not disk.verify_page(pid)
            images.append(disk.durable_image(pid))
    assert images[0] == images[1]  # same seed, same corruption mask
    assert images[0] != image


def test_stuck_fault_recorrupts_every_repair_write():
    disk, pid, image = one_page_disk()
    plan = FaultPlan(read_fault=STUCK, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        disk.write_page(pid, image)  # a "repair" from a good image
        assert not disk.verify_page(pid)  # ...lands corrupted again


# ---------------------------------------------------------------------------
# MediaPolicy / MediaRecovery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_read_attempts": 0},
        {"backoff_ms": -1.0},
        {"backoff_multiplier": 0.5},
        {"repair_attempts": -1},
    ],
)
def test_media_policy_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        MediaPolicy(**kwargs)


def test_fastpath_read_is_a_plain_disk_read():
    disk, pid, image = one_page_disk()
    media = MediaRecovery(disk)
    before = disk.clock.now_ms
    reads = disk.stats.reads
    assert media.read(pid) == image
    assert media.stats.reads == 1
    assert media.stats.retries == 0 and media.stats.repairs == 0
    assert disk.stats.reads == reads + 1
    # Exactly one read's worth of time — no backoff, no hidden charges.
    assert disk.clock.now_ms - before == pytest.approx(
        disk.parameters.random_ms(disk.page_size)
    )


def test_transient_fault_heals_by_retry_with_backoff():
    disk, pid, image = one_page_disk()
    media = MediaRecovery(disk)  # default: recover_after=3 < 4 attempts
    plan = FaultPlan(read_fault=TRANSIENT, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        before = disk.clock.now_ms
        assert media.read(pid) == image
    assert media.stats.transient_failures == 1  # first attempt only
    assert media.stats.retries == 2
    assert media.stats.backoff_ms == pytest.approx(1.0 + 2.0)
    assert media.stats.repairs == 0
    # 3 charged read attempts + the two backoffs, on the simulated
    # clock (re-reads of the same page bill as near-sequential).
    assert disk.clock.now_ms - before == pytest.approx(
        disk.parameters.random_ms(disk.page_size)
        + 2 * disk.parameters.near_sequential_ms(disk.page_size)
        + 3.0
    )


def test_transient_fault_beyond_budget_exhausts_without_quarantine():
    disk, pid, _ = one_page_disk()
    media = MediaRecovery(disk, policy=MediaPolicy(max_read_attempts=2))
    plan = FaultPlan(read_fault=TRANSIENT, read_fault_page=pid,
                     read_recover_after=5)
    with FaultInjector(plan).armed(disk):
        with pytest.raises(RetriesExhausted) as excinfo:
            media.read(pid)
    assert excinfo.value.page_id == pid
    assert disk.quarantined == set()  # left alone: nothing to repair from


def test_latent_corruption_repairs_from_backup_image():
    disk, pid, image = one_page_disk()
    media = MediaRecovery(disk, image_sources=[("backup", {pid: image}.get)])
    plan = FaultPlan(read_fault=LATENT, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        assert media.read(pid) == image
    assert media.stats.checksum_failures == 1
    assert media.stats.repairs == 1
    assert media.stats.quarantines == 0
    assert disk.verify_page(pid)  # durable bytes healed in place
    assert disk.durable_image(pid) == image


def test_latent_corruption_without_image_exhausts_without_quarantine():
    disk, pid, _ = one_page_disk()
    media = MediaRecovery(disk)
    plan = FaultPlan(read_fault=LATENT, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        with pytest.raises(RetriesExhausted):
            media.read(pid)
    assert disk.quarantined == set()
    assert not disk.verify_page(pid)  # damage detected, left as found


def test_stuck_page_is_quarantined_after_failed_repairs():
    disk, pid, image = one_page_disk()
    media = MediaRecovery(disk, image_sources=[("backup", {pid: image}.get)])
    plan = FaultPlan(read_fault=STUCK, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        with pytest.raises(QuarantinedPage) as excinfo:
            media.read(pid)
    assert excinfo.value.page_id == pid
    assert disk.quarantined == {pid}
    assert media.stats.repairs == MediaPolicy().repair_attempts
    assert media.stats.quarantines == 1
    with pytest.raises(QuarantinedPage):
        disk.read_page(pid)  # fenced until restored
    disk.restore_page(pid, image)
    with FaultInjector(FaultPlan()).armed(disk):
        pass  # the empty plan does not re-corrupt
    assert disk.read_page(pid) == image


def test_image_sources_are_tried_in_order():
    disk, pid, image = one_page_disk()
    media = MediaRecovery(
        disk,
        image_sources=[
            ("wal", lambda page_id: None),  # nothing logged for this page
            ("backup", {pid: image}.get),
        ],
    )
    assert media.has_image(pid)
    observer = Observer(disk)
    disk.observer = observer
    try:
        plan = FaultPlan(read_fault=LATENT, read_fault_page=pid)
        with FaultInjector(plan).armed(disk):
            assert media.read(pid) == image
    finally:
        disk.observer = None
    assert observer.metrics.value("media.repairs.backup") == 1
    assert observer.metrics.value("media.repairs.wal", default=0) == 0


def test_wal_image_source_returns_the_latest_image_per_page():
    log = WriteAheadLog()
    log.append("page_image", page_id=4, image=b"old")
    log.append("page_image", page_id=4, image=b"new")
    log.append("page_image", page_id=9, image=b"other")
    source = wal_image_source(log)
    assert source(4) == b"new"
    assert source(9) == b"other"
    assert source(123) is None


# ---------------------------------------------------------------------------
# scrubber
# ---------------------------------------------------------------------------
def scrub_db(n=60):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    populate(db, n=n)
    return db


def test_scrub_clean_database_reports_ok():
    db = scrub_db()
    report = scrub_database(db)
    assert report.ok
    assert report.pages_checked == len(db.disk.page_ids())
    assert not report.checksum_failures and not report.problems


def test_scrub_detects_corruption_without_a_media_layer():
    db = scrub_db()
    disk = db.disk
    pid = disk.page_ids()[0]
    disk.corrupt_page(pid, flipped(disk.durable_image(pid)))
    report = scrub_database(db)
    assert not report.ok
    assert pid in report.checksum_failures
    assert pid in report.unrepaired
    assert pid not in report.repaired


def test_scrub_heals_with_a_media_layer_and_counts_both_ways():
    db = scrub_db()
    disk = db.disk
    pid = disk.page_ids()[0]
    image = disk.durable_image(pid)
    disk.corrupt_page(pid, flipped(image))
    media = MediaRecovery(disk, image_sources=[("backup", {pid: image}.get)])
    report = scrub_database(db, media=media)
    assert report.ok
    assert report.checksum_failures == [pid]
    assert report.repaired == [pid]
    assert disk.verify_page(pid)


def test_scrub_catches_index_entry_count_drift():
    db = scrub_db()
    tree = db.table("R").indexes["I_R_A"].tree
    tree._entry_count += 1
    report = scrub_database(db)
    assert not report.ok
    assert any("entry_count" in p for p in report.problems)
    tree._entry_count -= 1
    assert scrub_database(db).ok


def test_require_scrubbed_raises_quarantined_first():
    db = scrub_db()
    disk = db.disk
    pid = disk.page_ids()[2]
    disk.quarantine_page(pid)
    with pytest.raises(QuarantinedPage) as excinfo:
        require_scrubbed(db, check_structures=False)
    assert excinfo.value.page_id == pid


def test_require_scrubbed_raises_exhausted_for_unrepaired():
    db = scrub_db()
    disk = db.disk
    pid = disk.page_ids()[0]
    disk.corrupt_page(pid, flipped(disk.durable_image(pid)))
    with pytest.raises(RetriesExhausted) as excinfo:
        require_scrubbed(db, check_structures=False)
    assert excinfo.value.page_id == pid


def test_require_scrubbed_raises_media_error_for_structural_drift():
    db = scrub_db()
    tree = db.table("R").indexes["I_R_A"].tree
    tree._entry_count += 1
    with pytest.raises(MediaError, match="structures disagree"):
        require_scrubbed(db)


# ---------------------------------------------------------------------------
# integration: pool hook, executor option, restart
# ---------------------------------------------------------------------------
def test_bulk_delete_options_media_attaches_for_the_statement():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=120)
    disk = db.disk
    pid = disk.page_ids()[0]
    backup = {p: disk.durable_image(p) for p in disk.page_ids()}
    media = MediaRecovery(disk, image_sources=[("backup", backup.get)])
    keys = sorted(values["A"])[:20]
    plan = FaultPlan(read_fault=LATENT, read_fault_page=pid)
    with FaultInjector(plan).armed(disk):
        result = bulk_delete(
            db, "R", "A", keys,
            options=BulkDeleteOptions(media=media),
            force_vertical=True,
        )
    assert result.records_deleted == len(keys)
    assert db.pool.media is None  # detached afterwards
    assert scrub_database(db, media=media).ok


def test_recoverable_bulk_delete_heals_latent_fault_mid_statement():
    scenario = SweepScenario(records=32)
    # Oracle.
    case = scenario.build()
    RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log, full_page_writes=True
    ).run()
    oracle = capture_state(case.db)
    # Faulted run with a media layer.
    case = scenario.build()
    disk = case.db.disk
    pid = disk.page_ids()[0]
    backup = {p: disk.durable_image(p) for p in disk.page_ids()}
    media = MediaRecovery(
        disk,
        image_sources=[("wal", wal_image_source(case.log)),
                       ("backup", backup.get)],
    )
    plan = FaultPlan(read_fault=LATENT, read_fault_page=pid)
    with FaultInjector(plan).armed(disk, pool=case.db.pool, log=case.log):
        RecoverableBulkDelete(
            case.db, "R", "A", case.keys, case.log,
            full_page_writes=True, media=media,
        ).run()
    assert case.db.pool.media is None
    post = scrub_database(case.db, media=media)
    assert post.ok
    assert capture_state(case.db) == oracle


def test_recover_with_scrub_attaches_a_clean_report():
    scenario = SweepScenario(records=32)
    case = scenario.build()
    RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log, full_page_writes=True
    ).run()
    report = recover(case.db, case.log, scrub=True)
    assert report.scrub_report is not None
    assert report.scrub_report.ok
    assert report.scrub_report.pages_checked == len(case.db.disk.page_ids())


# ---------------------------------------------------------------------------
# observability: metrics and spans
# ---------------------------------------------------------------------------
def test_media_metrics_counted_through_the_observer():
    db = scrub_db(n=80)
    disk = db.disk
    pid = disk.page_ids()[0]
    image = disk.durable_image(pid)
    media = MediaRecovery(disk, image_sources=[("backup", {pid: image}.get)])
    with observed(db) as obs:
        plan = FaultPlan(read_fault=TRANSIENT, read_fault_page=pid)
        with FaultInjector(plan).armed(disk):
            media.read(pid)
        disk.corrupt_page(pid, flipped(image))
        media.read(pid)
        scrub_database(db, media=media)
    m = obs.metrics
    # Attempts 1 and 2 fail (the injector recovers on the 3rd): the
    # disk-side counter sees every failed attempt.
    assert m.value("media.transient_read_errors") == 2
    assert m.value("media.retries") == 2
    assert m.value("media.backoff_ms") == pytest.approx(3.0)
    assert m.value("media.checksum_mismatches") == 1
    assert m.value("media.repairs") == 1
    assert m.value("media.repairs.backup") == 1
    assert m.value("media.scrub.runs") == 1
    assert m.value("media.scrub.pages_checked") == len(disk.page_ids())


def test_retry_span_opened_only_on_the_slow_path():
    db = scrub_db(n=80)
    disk = db.disk
    pid = disk.page_ids()[0]
    image = disk.durable_image(pid)
    media = MediaRecovery(disk, image_sources=[("backup", {pid: image}.get)])
    with observed(db) as obs:
        media.read(pid)  # fast path: no span
        assert [s for s in iter_spans(obs) if s.kind == "retry"] == []
        disk.corrupt_page(pid, flipped(image))
        media.read(pid)
    retry_spans = [s for s in iter_spans(obs) if s.kind == "retry"]
    assert len(retry_spans) == 1
    span = retry_spans[0]
    assert span.target == f"page:{pid}"
    assert span.attrs["error"] == "ChecksumMismatch"
    assert span.attrs["outcome"] == "repaired"
    assert span.attrs["source"] == "backup"


def test_scrub_span_carries_the_sweep_totals():
    db = scrub_db(n=80)
    with observed(db) as obs:
        scrub_database(db)
    scrub_spans = [s for s in iter_spans(obs) if s.kind == "scrub"]
    assert len(scrub_spans) == 1
    assert scrub_spans[0].attrs["pages_checked"] == len(db.disk.page_ids())
    assert scrub_spans[0].attrs["failures"] == 0


# ---------------------------------------------------------------------------
# lint rule
# ---------------------------------------------------------------------------
def lint(snippet: str, **kw):
    return lint_source(textwrap.dedent(snippet), filename="fixture.py", **kw)


def test_lint_flags_media_error_raised_outside_media():
    findings = lint("raise ChecksumMismatch('x', page_id=1)\n")
    assert any(
        f.rule_id == "code/media-error-outside-media" for f in findings
    )


def test_lint_allows_media_errors_in_media_and_storage():
    snippet = "raise QuarantinedPage('x', page_id=1)\n"
    for kw in ({"in_media": True}, {"in_storage": True}):
        findings = lint(snippet, **kw)
        assert not any(
            f.rule_id == "code/media-error-outside-media" for f in findings
        )


def test_lint_does_not_flag_corrupt_log_error():
    findings = lint("raise CorruptLogError('torn tail')\n")
    assert not any(
        f.rule_id == "code/media-error-outside-media" for f in findings
    )


# ---------------------------------------------------------------------------
# the exhaustive driver, kept tiny for the unit suite
# ---------------------------------------------------------------------------
def test_media_sweep_tiny_scenario_heals_or_aborts_cleanly():
    report = media_sweep(SweepScenario(records=24), max_points=2)
    assert report.ok, report.summary()
    outcomes = {o.kind: o.outcome for o in report.outcomes}
    assert outcomes[TRANSIENT] == "healed"
    assert outcomes[LATENT] == "healed"
    assert outcomes[STUCK] == "aborted"
    aborted = [o for o in report.outcomes if o.outcome == "aborted"]
    assert all(o.aborted_with == "QuarantinedPage" for o in aborted)

"""Tests for the workload generator and the benchmark harness."""

import pytest

from repro.bench.harness import run_approach, sweep
from repro.bench.report import format_table, paper_vs_measured, shape_checks
from repro.workload.generator import (
    INT_COLUMNS,
    Workload,
    WorkloadConfig,
    build_workload,
    generate_rows,
    make_schema,
    pick_inner_fanout,
)

SMALL = dict(record_count=1500)


def test_schema_matches_paper_shape():
    schema = make_schema()
    assert schema.column_names[:10] == list(INT_COLUMNS)
    assert schema.column_names[-1] == "K"
    from repro.storage.serializer import RecordSerializer

    assert RecordSerializer(schema).record_size == 512


def test_generate_rows_duplicate_free():
    rows, columns = generate_rows(500, seed=1)
    assert len(rows) == 500
    for name in INT_COLUMNS:
        assert len(set(columns[name])) == 500


def test_generate_rows_deterministic():
    a = generate_rows(100, seed=9)[0]
    b = generate_rows(100, seed=9)[0]
    assert a == b
    c = generate_rows(100, seed=10)[0]
    assert a != c


def test_memory_scaling_ratio():
    config = WorkloadConfig(record_count=20_000, memory_paper_mb=5.0)
    # 5 MB of a 512 MB table ~ 1%; our table is 10.24 MB -> ~100 KiB.
    assert 90_000 < config.memory_bytes < 120_000
    assert config.scale_factor == pytest.approx(50.0)


def test_memory_floor_applies():
    config = WorkloadConfig(record_count=500, memory_paper_mb=2.0)
    assert config.memory_bytes >= 16 * config.page_size


def test_pick_inner_fanout():
    # 88 leaves, natural capacity 254: natural height is 2.
    assert pick_inner_fanout(88, 2, 254) is None
    fanout3 = pick_inner_fanout(88, 3, 254)
    assert fanout3 is not None and 4 <= fanout3 < 254
    with pytest.raises(ValueError):
        pick_inner_fanout(2, 9, 254)


def test_build_workload_end_to_end():
    wl = build_workload(WorkloadConfig(**SMALL))
    assert wl.db.table("R").record_count == 1500
    index = wl.db.table("R").index("I_R_A")
    assert index.tree.entry_count == 1500
    # Measurements were reset after setup.
    assert wl.db.clock.now_ms == 0.0  # lint: allow(float-cost-eq)
    assert wl.db.disk.stats.reads == 0


def test_build_workload_forced_height():
    wl = build_workload(WorkloadConfig(index_height=3, **SMALL))
    assert wl.db.table("R").index("I_R_A").tree.height == 3


def test_build_workload_clustered():
    wl = build_workload(WorkloadConfig(clustered_on="A", **SMALL))
    rows = [v[0] for _, v in wl.db.scan("R")]
    assert rows == sorted(rows)
    assert wl.db.table("R").index("I_R_A").clustered


def test_delete_keys_sampling():
    wl = build_workload(WorkloadConfig(**SMALL))
    keys = wl.delete_keys(0.10)
    assert len(keys) == 150
    assert set(keys) <= set(wl.a_values)
    assert keys != sorted(keys)  # arrival order is random, like table D
    with pytest.raises(ValueError):
        wl.delete_keys(0.0)


def test_run_approach_returns_measurements():
    config = WorkloadConfig(**SMALL)
    result = run_approach("bulk", config, 0.10)
    assert result.records_deleted == 150
    assert result.sim_seconds > 0
    assert result.scaled_minutes > 0
    assert result.io.total_ios > 0


def test_run_approach_rejects_unknown():
    with pytest.raises(ValueError):
        run_approach("magic", WorkloadConfig(**SMALL), 0.1)


def test_bulk_beats_traditional_at_15_percent():
    """The headline result, as a unit test."""
    config = WorkloadConfig(**SMALL)
    bulk = run_approach("bulk", config, 0.15)
    trad = run_approach("not sorted/trad", config, 0.15)
    assert bulk.records_deleted == trad.records_deleted
    assert trad.sim_seconds > 3 * bulk.sim_seconds


def test_bulk_flat_in_delete_fraction():
    config = WorkloadConfig(**SMALL)
    small = run_approach("bulk", config, 0.05)
    large = run_approach("bulk", config, 0.20)
    assert large.sim_seconds < small.sim_seconds * 2


def test_traditional_grows_with_delete_fraction():
    config = WorkloadConfig(**SMALL)
    small = run_approach("sorted/trad", config, 0.05)
    large = run_approach("sorted/trad", config, 0.20)
    assert large.sim_seconds > small.sim_seconds * 2


def test_clustered_sorted_trad_beats_bulk():
    """Figure 10's crossover: the one case the traditional plan wins."""
    config = WorkloadConfig(clustered_on="A", **SMALL)
    trad = run_approach("sorted/trad", config, 0.15)
    bulk = run_approach("bulk", config, 0.15)
    assert trad.sim_seconds < bulk.sim_seconds


def test_all_bulk_variants_agree_on_deletions():
    config = WorkloadConfig(**SMALL)
    results = [
        run_approach(ap, config, 0.10)
        for ap in ("bulk", "bulk-hash", "bulk-partitioned")
    ]
    assert len({r.records_deleted for r in results}) == 1


def test_sweep_produces_series():
    series = sweep(
        "mini", "pct", [5, 10],
        ["bulk"],
        make_config=lambda p: WorkloadConfig(record_count=1000),
        make_fraction=lambda p: p / 100.0,
    )
    assert len(series.scaled_minutes("bulk")) == 2


def test_format_table_renders():
    text = format_table(
        "T", "x", [1, 2],
        {"a": [1.0, 2.0], "b": [float("nan"), 3.0]},
    )
    assert "T" in text and "1.00" in text and "-" in text


def test_paper_vs_measured_interleaves():
    series = sweep(
        "mini", "pct", [5],
        ["bulk"],
        make_config=lambda p: WorkloadConfig(record_count=1000),
        make_fraction=lambda p: p / 100.0,
    )
    text = paper_vs_measured(series, {"bulk": [24.9]})
    assert "bulk (paper)" in text and "bulk (ours)" in text
    assert shape_checks(series)


def test_scenarios_registry():
    from repro.workload.scenarios import (
        build_scenario,
        scenario,
        scenario_names,
    )

    assert "paper-default" in scenario_names()
    with pytest.raises(KeyError):
        scenario("nope")
    wl = build_scenario("clustered", record_count=800)
    assert wl.db.table("R").index("I_R_A").clustered
    rows = [v[0] for _, v in wl.db.scan("R")]
    assert rows == sorted(rows)
    tall = build_scenario("tall-index", record_count=3000)
    assert tall.db.table("R").index("I_R_A").tree.height >= 3

"""Tests for ASCII plots, side-file spilling, and example smoke runs."""

import pathlib
import subprocess
import sys

import pytest

from repro.bench.plots import render_chart
from repro.btree.tree import BLinkTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.txn.sidefile import SideFile, SideFileOp


# ----------------------------------------------------------------------
# plots
# ----------------------------------------------------------------------
def test_render_chart_basic_structure():
    text = render_chart(
        "title", [1, 2, 3],
        {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
        width=30, height=8,
    )
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "* a" in lines[-1] and "+ b" in lines[-1]
    assert any("3.0" in line for line in lines)  # y-axis max label
    assert "*" in text and "+" in text


def test_render_chart_handles_nan():
    text = render_chart(
        "t", [1, 2], {"a": [float("nan"), 5.0]}, width=20, height=6
    )
    assert "5.0" in text


def test_render_chart_single_point():
    text = render_chart("t", [7], {"a": [2.5]}, width=20, height=6)
    assert "7" in text


def test_render_chart_rejects_empty():
    with pytest.raises(ValueError):
        render_chart("t", [], {})
    with pytest.raises(ValueError):
        render_chart("t", [1], {"a": [float("nan")]})


def test_chart_monotone_series_monotone_pixels():
    text = render_chart(
        "t", [1, 2, 3, 4], {"a": [1.0, 2.0, 3.0, 4.0]},
        width=40, height=10,
    )
    grid = text.splitlines()[1:11]
    cols = [
        (row_idx, line.index("*"))
        for row_idx, line in enumerate(grid)
        if "*" in line
    ]
    # Higher values appear on higher rows (smaller row index).
    assert sorted(cols) == cols[:]
    xs = [c for _, c in cols]
    assert xs == sorted(xs, reverse=True)


# ----------------------------------------------------------------------
# side-file spilling
# ----------------------------------------------------------------------
def make_tree():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    return BLinkTree(pool, max_leaf_entries=8), disk


def test_sidefile_spills_past_threshold():
    tree, disk = make_tree()
    side = SideFile("x", disk=disk, spill_threshold=10)
    for i in range(35):
        side.append(SideFileOp.INSERT, i, i)
    assert side.pending == 35
    assert disk.num_pages > 0  # chunks actually hit the disk
    applied = side.apply_batch(tree)
    assert applied == 35
    assert side.pending == 0
    assert tree.entry_count == 35
    assert sorted(k for k, _ in tree.items()) == list(range(35))


def test_sidefile_spill_preserves_fifo_semantics():
    tree, disk = make_tree()
    side = SideFile("x", disk=disk, spill_threshold=4)
    # insert then delete the same entry across a chunk boundary
    for i in range(6):
        side.append(SideFileOp.INSERT, 100, 1000 + i)
    for i in range(6):
        side.append(SideFileOp.DELETE, 100, 1000 + i)
    side.apply_batch(tree)
    assert tree.search(100) == []


def test_sidefile_partial_batch_respects_limit():
    tree, disk = make_tree()
    side = SideFile("x", disk=disk, spill_threshold=5)
    for i in range(20):
        side.append(SideFileOp.INSERT, i, i)
    applied = side.apply_batch(tree, limit=7)
    assert applied == 7
    assert side.pending == 13
    side.apply_batch(tree)
    assert tree.entry_count == 20


def test_sidefile_drain_with_spill():
    tree, disk = make_tree()
    side = SideFile("x", disk=disk, spill_threshold=8)
    for i in range(50):
        side.append(SideFileOp.INSERT, i, i)
    applied, batches = side.drain(tree, quiesce_threshold=4, batch=16)
    assert applied == 50
    assert side.quiesced
    assert tree.entry_count == 50


def test_sidefile_reset_frees_chunks():
    tree, disk = make_tree()
    side = SideFile("x", disk=disk, spill_threshold=4)
    for i in range(20):
        side.append(SideFileOp.INSERT, i, i)
    pages_with_chunks = disk.num_pages
    side.reset()
    assert disk.num_pages < pages_with_chunks
    assert side.pending == 0
    side.append(SideFileOp.INSERT, 1, 1)  # usable again


def test_sidefile_without_disk_never_spills():
    tree, disk = make_tree()
    side = SideFile("x")  # no disk
    for i in range(10_000):
        side.append(SideFileOp.INSERT, i, i)
    assert side.pending == 10_000


# ----------------------------------------------------------------------
# example smoke tests
# ----------------------------------------------------------------------
EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples"
    ).glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    """Every example must run to completion (they self-assert)."""
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"

"""Crash/restart tests: the bulk delete must finish *forward* (§3.2).

Each test runs a recoverable bulk delete with a crash injected at a
different point (losing all unflushed buffer-pool contents), then runs
restart and checks that the final database state is identical to an
uninterrupted execution.
"""

import pytest

from repro import Database
from repro.btree.maintenance import validate_tree
from repro.recovery.restart import (
    RecoverableBulkDelete,
    SimulatedCrash,
    recover,
)
from repro.recovery.wal import WriteAheadLog
from repro.txn.sidefile import SideFile, SideFileOp
from tests.conftest import populate


def build(n=300):
    db = Database(page_size=512, memory_bytes=16 * 512)
    values = populate(db, n=n)
    db.flush()
    return db, values


def final_state(db):
    rows = sorted(v for _, v in db.scan("R"))
    indexes = {
        name: sorted(ix.tree.items())
        for name, ix in db.table("R").indexes.items()
    }
    return rows, indexes


def reference_run(keys, n=300):
    db, values = build(n)
    log = WriteAheadLog(db.disk)
    deleted = RecoverableBulkDelete(db, "R", "A", keys, log).run()
    return final_state(db), deleted


def crash_and_recover(keys, n=300, crash_point=None, crash_mid=None):
    db, values = build(n)
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log,
        crash_point=crash_point, crash_mid_structure=crash_mid,
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    report = recover(db, log)
    return db, log, report


@pytest.fixture(scope="module")
def keys():
    db, values = build()
    import random

    return random.Random(77).sample(values["A"], 90)


def check_equivalent(db, keys):
    expected, _ = reference_run(keys)
    assert final_state(db) == expected
    for ix in db.table("R").indexes.values():
        validate_tree(ix.tree)


def test_completes_without_crash(keys):
    db, values = build()
    log = WriteAheadLog(db.disk)
    deleted = RecoverableBulkDelete(db, "R", "A", keys, log).run()
    assert deleted == 90
    assert log.find_open_bulk_delete() is None
    check_equivalent(db, keys)


def test_crash_after_begin(keys):
    db, log, report = crash_and_recover(keys, crash_point="after_begin")
    assert report.resumed
    assert log.find_open_bulk_delete() is None
    check_equivalent(db, keys)


def test_crash_after_driving(keys):
    db, log, report = crash_and_recover(keys, crash_point="after_driving")
    assert "I_R_A" in report.skipped_structures
    assert "__table__" in report.redone_structures
    check_equivalent(db, keys)


def test_crash_after_table(keys):
    db, log, report = crash_and_recover(keys, crash_point="after_table")
    assert "__table__" in report.skipped_structures
    assert "I_R_B" in report.redone_structures
    check_equivalent(db, keys)


def test_crash_after_last_index(keys):
    db, log, report = crash_and_recover(
        keys, crash_point="after_index:I_R_B"
    )
    assert report.skipped_structures == ["I_R_A", "__table__", "I_R_B"]
    assert report.redone_structures == []
    check_equivalent(db, keys)


def test_crash_before_end(keys):
    db, log, report = crash_and_recover(keys, crash_point="before_end")
    check_equivalent(db, keys)


def test_crash_mid_driving_sweep(keys):
    db, log, report = crash_and_recover(keys, crash_mid=("I_R_A", 2))
    assert "I_R_A" in report.redone_structures
    check_equivalent(db, keys)


def test_crash_mid_table_sweep(keys):
    db, log, report = crash_and_recover(keys, crash_mid=("__table__", 3))
    assert "__table__" in report.redone_structures
    check_equivalent(db, keys)


def test_crash_mid_secondary_index_sweep(keys):
    db, log, report = crash_and_recover(keys, crash_mid=("I_R_B", 2))
    assert "I_R_B" in report.redone_structures
    check_equivalent(db, keys)


def test_crash_mid_structure_with_partial_flush(keys):
    """Evict half the modifications to disk before the crash: the log
    must still reconstruct the complete delete set."""
    db, values = build()
    log = WriteAheadLog(db.disk)

    original = db.pool.capacity_pages
    db.pool.capacity_pages = 4  # brutal eviction pressure
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_mid_structure=("__table__", 4)
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    db.pool.capacity_pages = original
    recover(db, log)
    check_equivalent(db, keys)


def test_recovery_is_idempotent_after_second_crash(keys):
    """Crash during the first recovery, recover again."""
    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_driving"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    # First recovery completes; a second recover() finds nothing open.
    recover(db, log)
    second = recover(db, log)
    assert not second.resumed
    check_equivalent(db, keys)


def test_recovery_reports_deleted_count(keys):
    db, log, report = crash_and_recover(keys, crash_point="after_driving")
    assert report.records_deleted == 90


def test_side_files_applied_after_recovery(keys):
    db, log, report_unused = crash_and_recover(
        keys, crash_point="after_table"
    )
    # Build a second scenario where a side-file is pending at restart.
    db2, values2 = build()
    log2 = WriteAheadLog(db2.disk)
    runner = RecoverableBulkDelete(
        db2, "R", "A", keys, log2, crash_point="after_table"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    side = SideFile("I_R_B")
    side.append(SideFileOp.INSERT, 123456789, 42)
    report = recover(db2, log2, side_files={"I_R_B": side})
    assert report.side_files_applied == {"I_R_B": 1}
    assert db2.table("R").index("I_R_B").tree.contains(123456789, 42)
    assert db2.table("R").index("I_R_B").is_online


def test_log_records_are_durable_and_ordered():
    db, values = build(n=50)
    log = WriteAheadLog(db.disk)
    keys = values["A"][:10]
    RecoverableBulkDelete(db, "R", "A", keys, log).run()
    kinds = [r.kind for r in log.records()]
    assert kinds[0] == "bulk_begin"
    assert kinds[-1] == "bulk_end"
    assert "checkpoint" in kinds
    assert "structure_done" in kinds
    lsns = [r.lsn for r in log.records()]
    assert lsns == sorted(lsns)


def test_side_files_rebuilt_from_wal(keys):
    """§3.2's hard case: the coordinator's side-file capture survives a
    crash *only* through its WAL records; restart reconstructs and
    applies them after finishing the bulk delete forward."""
    from repro.txn.sidefile import SideFile, SideFileOp

    db, values = build()
    log = WriteAheadLog(db.disk)
    # Simulate a concurrent updater whose index change was captured in
    # a WAL-logged side-file before the crash.
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_table"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    live = SideFile("I_R_B", log=log)
    live.append(SideFileOp.INSERT, 424242, 99)
    del live  # the live object dies with the crash; only the WAL remains

    report = recover(db, log)  # no side_files argument!
    assert report.side_files_applied == {"I_R_B": 1}
    tree = db.table("R").index("I_R_B").tree
    assert tree.contains(424242, 99)
    # Replay is recorded, so a second recovery would not re-apply.
    assert any(r.kind == "side_file_applied" for r in log.records())


def test_recovery_reentrant_after_crash_at_restore_point(keys):
    """Crash recovery between the checkpoint-metadata restore and the
    first stage re-run; a second recovery must still converge."""
    from repro.faults import FaultInjector, FaultPlan

    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_driving"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    with pytest.raises(SimulatedCrash):
        recover(db, log, faults=FaultInjector(
            FaultPlan(crash_point="recovery:after_restore")
        ))
    report = recover(db, log)
    assert report.resumed
    assert not recover(db, log).resumed
    check_equivalent(db, keys)


def test_recovery_reentrant_after_crash_mid_recovery_sweep(keys):
    """Crash the *recovery run's* table sweep mid-way, recover again."""
    from repro.faults import FaultInjector, FaultPlan

    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_driving"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    with pytest.raises(SimulatedCrash):
        recover(db, log, faults=FaultInjector(
            FaultPlan(crash_mid_structure=("__table__", 2))
        ))
    recover(db, log)
    check_equivalent(db, keys)


def test_crash_during_side_file_application_applies_once(keys):
    """Crash after the side-file was applied and flushed but before the
    ``side_file_applied`` record: the second recovery replays it
    idempotently — the entry ends up present exactly once."""
    from repro.faults import FaultInjector, FaultPlan

    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_table"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    side = SideFile("I_R_B")
    side.append(SideFileOp.INSERT, 123456789, 42)
    with pytest.raises(SimulatedCrash):
        recover(db, log, side_files={"I_R_B": side},
                faults=FaultInjector(FaultPlan(
                    crash_point="recovery:side_file:I_R_B"
                )))
    assert not any(r.kind == "side_file_applied" for r in log.records())
    report = recover(db, log, side_files={"I_R_B": side})
    tree = db.table("R").index("I_R_B").tree
    entries = [e for e in tree.items() if e == (123456789, 42)]
    assert entries == [(123456789, 42)]
    # The replay skipped the already-present entry: 0 newly applied.
    assert report.side_files_applied == {"I_R_B": 0}
    # Net of the concurrent updater's entry, the state matches an
    # uninterrupted run.
    tree.delete(123456789, 42)
    check_equivalent(db, keys)


def test_side_file_changes_are_durable_before_applied_record(keys):
    """Regression: the tree must be flushed *before* the log claims the
    side-file is applied — otherwise a crash right after recovery
    silently loses the concurrent updater's change."""
    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_table"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    side = SideFile("I_R_B")
    side.append(SideFileOp.INSERT, 123456789, 42)
    recover(db, log, side_files={"I_R_B": side})
    # Power loss immediately after recovery returns.
    db.pool.invalidate_all()
    tree = db.table("R").index("I_R_B").tree
    assert tree.contains(123456789, 42)
    # And the statement's own changes survived too.
    tree.delete(123456789, 42)
    check_equivalent(db, keys)


def test_crash_between_restore_and_side_files_is_recoverable(keys):
    from repro.faults import FaultInjector, FaultPlan

    db, values = build()
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "R", "A", keys, log, crash_point="after_table"
    )
    with pytest.raises(SimulatedCrash):
        runner.run()
    side = SideFile("I_R_B")
    side.append(SideFileOp.INSERT, 123456789, 42)
    with pytest.raises(SimulatedCrash):
        recover(db, log, side_files={"I_R_B": side},
                faults=FaultInjector(FaultPlan(
                    crash_point="recovery:before_side_files"
                )))
    report = recover(db, log, side_files={"I_R_B": side})
    assert report.side_files_applied == {"I_R_B": 1}
    tree = db.table("R").index("I_R_B").tree
    assert tree.contains(123456789, 42)
    tree.delete(123456789, 42)
    check_equivalent(db, keys)


def test_coordinator_side_file_appends_reach_the_wal():
    from repro.txn.coordinator import BulkDeleteCoordinator, UpdateRouter

    db, values = build()
    log = WriteAheadLog(db.disk)
    import random as _r

    keys = _r.Random(3).sample(values["A"], 40)
    coord = BulkDeleteCoordinator(db, "R", "A", keys, log=log)
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    router.insert(txn, "R", (31337001, 31337002, "w"))
    coord.tm.commit(txn)
    ops = [r for r in log.records("side_file_op")]
    assert len(ops) == 1
    assert ops[0].payload["index"] == "I_R_B"
    for name in coord.pending_indexes():
        coord.process_index(name)

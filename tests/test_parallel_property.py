"""Property test: parallel execution is observationally serial.

For any lane count, contention mode and delete fraction, a multi-lane
bulk delete must delete exactly the records the serial plan deletes
and leave every table and index in the identical logical state — the
lanes reorder simulated *time*, never *effects*.  Examples are seeded
(``derandomize=True``) so the suite is deterministic in CI.
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.core.plans import BdMethod
from repro.faults.sweep import capture_state
from repro.parallel import CONTENTION_MODES, SHARED
from repro.workload.generator import WorkloadConfig, build_workload

CONFIG = WorkloadConfig(
    record_count=300, index_columns=("A", "B", "C"), memory_paper_mb=5.0
)


def run_bulk(fraction, lanes, contention):
    wl = build_workload(CONFIG)
    keys = wl.delete_keys(fraction)
    wl.reset_measurements()
    result = bulk_delete(
        wl.db, "R", "A", keys,
        options=BulkDeleteOptions(lanes=lanes, contention=contention),
        prefer_method=BdMethod.SORT_MERGE, force_vertical=True,
    )
    return wl.db, result


@lru_cache(maxsize=None)
def serial_oracle(fraction):
    db, result = run_bulk(fraction, lanes=1, contention="dedicated")
    return (
        result.records_deleted,
        db.clock.now_ms,
        capture_state(db),
    )


@settings(max_examples=12, deadline=None, derandomize=True)
@given(
    lanes=st.integers(min_value=1, max_value=5),
    contention=st.sampled_from(CONTENTION_MODES),
    fraction=st.sampled_from([0.1, 0.25, 0.5]),
)
def test_parallel_equivalent_to_serial(lanes, contention, fraction):
    deleted, serial_ms, state = serial_oracle(fraction)
    db, result = run_bulk(fraction, lanes, contention)
    # Snapshot the clock first: capture_state scans the database and
    # advances the simulated clock like any other reader.
    elapsed_ms = db.clock.now_ms
    assert result.records_deleted == deleted
    assert capture_state(db) == state
    if lanes == 1:
        # The serial special case is bit-identical, not just equal-state.
        assert elapsed_ms == serial_ms  # lint: allow(float-cost-eq)
    elif contention == SHARED:
        assert elapsed_ms > serial_ms
    else:
        assert elapsed_ms <= serial_ms

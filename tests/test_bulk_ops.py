"""Unit tests for the physical bd primitives."""

import random

import pytest

from repro.btree.maintenance import validate_tree
from repro.btree.tree import BLinkTree
from repro.core.bulk_ops import (
    bd_heap_hash_probe,
    bd_heap_sorted_rids,
    bd_index_hash_probe,
    bd_index_partitioned,
    bd_index_sort_merge,
)
from repro.query.hashtable import BoundedHashSet
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.rid import RID
from tests.conftest import populate


@pytest.fixture
def tree_and_disk():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    tree = BLinkTree(pool, max_leaf_entries=8, max_inner_entries=8)
    tree.bulk_load([(i, 1000 + i) for i in range(200)])
    return tree, disk


def test_sort_merge_deletes_exact_pairs(tree_and_disk):
    tree, disk = tree_and_disk
    pairs = sorted((k, 1000 + k) for k in range(0, 200, 7))
    result = bd_index_sort_merge(tree, pairs, disk, match_rid=True)
    assert sorted(result.deleted) == pairs
    assert tree.entry_count == 200 - len(pairs)
    for k, v in pairs:
        assert not tree.contains(k, v)
    validate_tree(tree)


def test_sort_merge_rid_mismatch_keeps_entry(tree_and_disk):
    tree, disk = tree_and_disk
    result = bd_index_sort_merge(tree, [(5, 99999)], disk, match_rid=True)
    assert result.deleted == []
    assert tree.contains(5)


def test_sort_merge_key_only_matches_duplicates():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    tree = BLinkTree(pool, max_leaf_entries=8)
    tree.bulk_load(sorted([(5, i) for i in range(10)] + [(9, 0), (1, 0)]))
    result = bd_index_sort_merge(tree, [(5, 0)], disk, match_rid=False)
    assert len(result.deleted) == 10
    assert tree.search(5) == []
    assert tree.contains(9) and tree.contains(1)
    validate_tree(tree)


def test_sort_merge_visits_each_leaf_once(tree_and_disk):
    tree, disk = tree_and_disk
    leaves = tree.leaf_count()
    result = bd_index_sort_merge(
        tree, [(k, 1000 + k) for k in range(200)], disk
    )
    assert result.pages_visited == leaves


def test_sort_merge_frees_emptied_leaves(tree_and_disk):
    tree, disk = tree_and_disk
    before = tree.leaf_count()
    result = bd_index_sort_merge(
        tree, [(k, 1000 + k) for k in range(100)], disk
    )
    assert result.pages_freed > 0
    assert tree.leaf_count() < before
    validate_tree(tree)


def test_sort_merge_everything_leaves_empty_tree(tree_and_disk):
    tree, disk = tree_and_disk
    bd_index_sort_merge(tree, [(k, 1000 + k) for k in range(200)], disk)
    assert tree.entry_count == 0
    assert list(tree.items()) == []
    validate_tree(tree)


def test_sort_merge_empty_list_is_noop(tree_and_disk):
    tree, disk = tree_and_disk
    result = bd_index_sort_merge(tree, [], disk)
    assert result.pages_visited == 0
    assert tree.entry_count == 200


def test_sort_merge_on_removed_callback(tree_and_disk):
    tree, disk = tree_and_disk
    seen = []
    bd_index_sort_merge(
        tree,
        [(k, 1000 + k) for k in range(0, 40, 3)],
        disk,
        on_removed=lambda removed: seen.extend(removed),
    )
    assert sorted(seen) == [(k, 1000 + k) for k in range(0, 40, 3)]


def test_hash_probe_deletes_by_rid(tree_and_disk):
    tree, disk = tree_and_disk
    victims = {1000 + k for k in range(0, 200, 5)}
    rid_set = BoundedHashSet(1 << 20).build(victims)
    result = bd_index_hash_probe(tree, rid_set, disk)
    assert {v for _, v in result.deleted} == victims
    assert tree.entry_count == 200 - len(victims)
    validate_tree(tree)


def test_hash_probe_respects_undeletable(tree_and_disk):
    tree, disk = tree_and_disk
    rid_set = BoundedHashSet(1 << 20).build({1000, 1001})
    protected = {(1, 1001)}
    result = bd_index_hash_probe(tree, rid_set, disk,
                                 undeletable=protected)
    assert (0, 1000) in result.deleted
    assert (1, 1001) not in result.deleted
    assert tree.contains(1, 1001)


def test_partitioned_matches_hash_probe():
    def build():
        disk = SimulatedDisk(page_size=512)
        pool = BufferPool(disk, capacity_pages=64)
        tree = BLinkTree(pool, max_leaf_entries=8)
        tree.bulk_load([(i, 2000 + i) for i in range(300)])
        return tree, disk

    pairs = [(k, 2000 + k) for k in range(0, 300, 4)]
    tree_a, disk_a = build()
    # Tiny memory forces several partitions.
    result = bd_index_partitioned(tree_a, pairs, memory_bytes=16 * 20,
                                  disk=disk_a)
    assert result.partitions > 1
    tree_b, disk_b = build()
    rid_set = BoundedHashSet(1 << 20).build({v for _, v in pairs})
    bd_index_hash_probe(tree_b, rid_set, disk_b)
    assert list(tree_a.items()) == list(tree_b.items())
    validate_tree(tree_a)


def test_partitioned_single_partition_when_fits(tree_and_disk):
    tree, disk = tree_and_disk
    pairs = [(k, 1000 + k) for k in range(0, 200, 9)]
    result = bd_index_partitioned(tree, pairs, memory_bytes=1 << 20,
                                  disk=disk)
    assert result.partitions == 1
    assert len(result.deleted) == len(pairs)
    validate_tree(tree)


def test_heap_sorted_rids_returns_rows(db):
    values = populate(db, n=100, indexes=())
    table = db.table("R")
    rids = sorted(rid for rid, _ in table.heap.scan())[:30]
    rows, result = bd_heap_sorted_rids(table, rids, db.disk)
    assert len(rows) == 30
    assert result.deleted_count == 30
    assert table.record_count == 70
    for rid, row in rows:
        assert not table.heap.exists(rid)
        assert row[0] in set(values["A"])


def test_heap_hash_probe_equals_sorted(db):
    values = populate(db, n=100, indexes=())
    table = db.table("R")
    all_rids = [rid for rid, _ in table.heap.scan()]
    victims = set(random.Random(4).sample(all_rids, 25))
    rid_set = BoundedHashSet(1 << 20).build(r.pack() for r in victims)
    rows, result = bd_heap_hash_probe(table, rid_set, db.disk)
    assert {rid for rid, _ in rows} == victims
    assert table.record_count == 75
    assert result.pages_visited == len(table.heap.page_ids)


def test_collect_index_matches_read_only(tree_and_disk):
    from repro.core.bulk_ops import collect_index_matches

    tree, disk = tree_and_disk
    keys = [0, 7, 14, 10**6]  # last one missing
    result = collect_index_matches(tree, keys, disk)
    assert sorted(k for k, _ in result.deleted) == [0, 7, 14]
    # Nothing was modified.
    assert tree.entry_count == 200
    assert tree.contains(7)


def test_collect_index_matches_duplicates():
    from repro.core.bulk_ops import collect_index_matches

    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    tree = BLinkTree(pool, max_leaf_entries=4)
    tree.bulk_load(sorted([(5, i) for i in range(10)] + [(1, 0), (9, 0)]))
    result = collect_index_matches(tree, [5], disk)
    assert len(result.deleted) == 10
    assert all(k == 5 for k, _ in result.deleted)


def test_collect_index_matches_empty_inputs(tree_and_disk):
    from repro.core.bulk_ops import collect_index_matches

    tree, disk = tree_and_disk
    assert collect_index_matches(tree, [], disk).deleted == []

"""End-to-end integration tests across the whole stack."""

import random

import pytest

from repro import (
    Attribute,
    Database,
    TableSchema,
    bulk_delete,
    bulk_update,
)
from repro.btree.maintenance import validate_tree
from repro.core.plans import BdMethod
from repro.recovery.restart import RecoverableBulkDelete, recover
from repro.recovery.wal import WriteAheadLog
from repro.sql.interpreter import SqlSession
from repro.txn.coordinator import BulkDeleteCoordinator, UpdateRouter
from repro.workload.generator import WorkloadConfig, build_workload


def test_full_lifecycle_through_sql():
    """DDL -> load -> mixed DML -> bulk delete -> verify, all via SQL."""
    db = Database(page_size=1024, memory_bytes=64 * 1024)
    sql = SqlSession(db, force_vertical=True)
    sql.execute(
        "CREATE TABLE orders (oid INT, cust INT, total INT, pad CHAR(64))"
    )
    sql.execute("CREATE TABLE stale (oid INT)")
    rng = random.Random(21)
    oids = rng.sample(range(10**7), 800)
    for start in range(0, 800, 200):
        rows = ", ".join(
            f"({o}, {rng.randrange(50)}, {rng.randrange(1000)}, 'p')"
            for o in oids[start:start + 200]
        )
        sql.execute(f"INSERT INTO orders VALUES {rows}")
    sql.execute("CREATE UNIQUE INDEX io ON orders (oid)")
    sql.execute("CREATE INDEX ic ON orders (cust)")
    sql.execute("CREATE INDEX it ON orders (total)")

    # Mixed single-row churn.
    sql.execute("DELETE FROM orders WHERE oid IN "
                f"({oids[0]}, {oids[1]})")
    sql.execute(f"INSERT INTO orders VALUES ({oids[0]}, 1, 10, 'back')")
    sql.execute("UPDATE orders SET total = total + 5 WHERE cust = 7")

    # Bulk delete through the paper's statement.
    stale = oids[100:400]
    values = ", ".join(f"({o})" for o in stale)
    sql.execute(f"INSERT INTO stale VALUES {values}")
    result = sql.execute(
        "DELETE FROM orders WHERE oid IN (SELECT oid FROM stale)"
    )
    assert result.affected == 300  # oids[100:400] all alive

    remaining = sql.execute("SELECT oid FROM orders").rows
    assert len(remaining) == 800 - 2 + 1 - 300
    table = db.table("orders")
    for ix in table.indexes.values():
        validate_tree(ix.tree)
        assert ix.tree.entry_count == len(remaining)


def test_delete_update_interleaving_consistency():
    """Alternate bulk deletes and bulk updates; indexes stay exact."""
    db = Database(page_size=512, memory_bytes=64 * 1024)
    schema = TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    )
    db.create_table(schema)
    rng = random.Random(3)
    keys = rng.sample(range(10**6), 600)
    db.load_table("t", [(k, k % 1000) for k in keys])
    db.create_index("t", "k", unique=True)
    db.create_index("t", "v")
    alive = set(keys)
    for round_no in range(4):
        victims = rng.sample(sorted(alive), 60)
        bulk_delete(db, "t", "k", victims)
        alive -= set(victims)
        bulk_update(
            db, "t", "v",
            compute=lambda row: row[1] + 10_000,
            where=lambda row: row[1] < 500,
        )
        table = db.table("t")
        assert table.record_count == len(alive)
        for ix in table.indexes.values():
            validate_tree(ix.tree)
            assert ix.tree.entry_count == len(alive)
    model = {v[0]: v[1] for _, v in db.scan("t")}
    index_v = db.table("t").index("I_t_v").tree
    assert sorted(index_v.items()) == sorted(
        (v, rid.pack())
        for rid, row in db.scan("t")
        for v in [row[1]]
    )


def test_every_method_and_every_option_agree():
    """The vertical execution matrix: 3 methods x 3 reorg options all
    produce identical logical states."""
    from repro.core.executor import BulkDeleteOptions

    combos = []
    for method in (BdMethod.SORT_MERGE, BdMethod.HASH,
                   BdMethod.PARTITIONED_HASH):
        for options in (
            None,
            BulkDeleteOptions(compact_leaves=True),
            BulkDeleteOptions(base_node_reorg=True),
        ):
            wl = build_workload(WorkloadConfig(record_count=1200))
            keys = wl.delete_keys(0.2)
            bulk_delete(wl.db, "R", "A", keys, prefer_method=method,
                        options=options)
            combos.append(sorted(v[:3] for _, v in wl.db.scan("R")))
            for ix in wl.db.table("R").indexes.values():
                validate_tree(ix.tree)
    assert all(c == combos[0] for c in combos[1:])


def test_coordinator_then_recovery_pipeline():
    """Concurrent protocol and crash recovery against the same data."""
    db = Database(page_size=512, memory_bytes=32 * 512)
    schema = TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    )
    db.create_table(schema)
    rng = random.Random(13)
    keys = rng.sample(range(10**6), 500)
    db.load_table("t", [(k, k % 97) for k in keys])
    db.create_index("t", "k", unique=True)
    db.create_index("t", "v")
    db.flush()

    # Round 1: concurrent coordinator delete with a mid-flight insert.
    coord = BulkDeleteCoordinator(db, "t", "k", keys[:100])
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    router.insert(txn, "t", (10**7, 55))
    coord.tm.commit(txn)
    for name in coord.pending_indexes():
        coord.process_index(name)
    assert db.table("t").record_count == 401

    # Round 2: recoverable delete that crashes and restarts.
    log = WriteAheadLog(db.disk)
    runner = RecoverableBulkDelete(
        db, "t", "k", keys[100:200], log, crash_point="after_table"
    )
    from repro.recovery.restart import SimulatedCrash

    with pytest.raises(SimulatedCrash):
        runner.run()
    recover(db, log)
    table = db.table("t")
    assert table.record_count == 301
    for ix in table.indexes.values():
        validate_tree(ix.tree)
        assert ix.tree.entry_count == 301


def test_compound_index_full_pipeline():
    """Compound index maintained through load, bulk delete, update."""
    from repro.catalog.composite import CompositeKeyCodec

    db = Database(page_size=512, memory_bytes=64 * 1024)
    schema = TableSchema.of(
        "t",
        [Attribute.int_("k"), Attribute.int_("a"), Attribute.int_("b")],
    )
    db.create_table(schema)
    db.load_table("t", [(i, i % 8, i % 30) for i in range(500)])
    db.create_index("t", "k", unique=True)
    codec = CompositeKeyCodec.of(8, 16)
    db.create_index("t", "a", name="iab", columns=("a", "b"), codec=codec)

    bulk_delete(db, "t", "k", list(range(0, 500, 5)))
    bulk_update(db, "t", "b", compute=lambda r: r[2] + 100,
                where=lambda r: r[1] == 3)
    table = db.table("t")
    iab = table.index("iab")
    validate_tree(iab.tree)
    assert iab.tree.entry_count == table.record_count
    expected = sorted(
        (codec.pack((row[1], row[2])), rid.pack())
        for rid, row in db.scan("t")
    )
    assert sorted(iab.tree.items()) == expected

"""Tier-1 gate: no dead intra-repository links in the documentation.

Runs ``tools/check_doc_links.py`` over every root-level and ``docs/``
markdown file. A renamed document, a deleted figure report or a
misspelled ``#anchor`` fails here (and in CI) instead of shipping as a
dead link.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
)
check_doc_links = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_doc_links", check_doc_links)
_SPEC.loader.exec_module(check_doc_links)


def test_doc_set_is_nonempty_and_includes_the_guides():
    names = {f.name for f in check_doc_links.doc_files()}
    assert "README.md" in names
    assert "EXPERIMENTS.md" in names
    assert "parallelism.md" in names
    assert "workloads.md" in names


def test_no_dead_intra_repo_links():
    problems, checked = check_doc_links.check_links(
        check_doc_links.doc_files()
    )
    assert checked, "expected the docs to contain intra-repo links"
    assert problems == []


def test_checker_catches_dead_links(tmp_path):
    (tmp_path / "docs").mkdir()
    good = tmp_path / "docs" / "real.md"
    good.write_text("# A Heading\n\nbody\n", encoding="utf-8")
    source = tmp_path / "index.md"
    source.write_text(
        "[ok](docs/real.md)\n"
        "[ok anchor](docs/real.md#a-heading)\n"
        "[gone](docs/missing.md)\n"
        "[bad anchor](docs/real.md#no-such-heading)\n"
        "```\n[inside a fence](docs/also_missing.md)\n```\n"
        "[external](https://example.com/x.md)\n",
        encoding="utf-8",
    )
    problems, checked = check_doc_links.check_links(
        [source, good], root=tmp_path
    )
    assert len(checked) == 4  # fence and external links skipped
    assert len(problems) == 2
    assert any("missing.md" in p for p in problems)
    assert any("no-such-heading" in p for p in problems)


def test_github_slug_rules():
    slug = check_doc_links.github_slug
    assert slug("Determinism under fault injection") == (
        "determinism-under-fault-injection"
    )
    assert slug("`lanes=1` is the paper's testbed, bit for bit") == (
        "lanes1-is-the-papers-testbed-bit-for-bit"
    )
    assert slug("Contention: `dedicated` vs `shared`") == (
        "contention-dedicated-vs-shared"
    )

"""Tests for the logical operator DAG and the CLI."""

import pytest

from repro import Database
from repro.cli import main as cli_main
from repro.core.operator import OpNode, build_dag, render_plan_dag
from repro.core.planner import choose_plan
from repro.core.plans import BdMethod
from tests.conftest import populate


@pytest.fixture
def plan_db(db):
    populate(db, n=300)
    db.create_index("R", "B", name="uniq_b", unique=True)
    return db


def test_opnode_render_tree():
    root = OpNode("root")
    a = root.add(OpNode("a"))
    a.add(OpNode("a1"))
    a.add(OpNode("a2"))
    root.add(OpNode("b"))
    text = "\n".join(root.render())
    assert "|- a" in text or "'- a" in text
    assert "a1" in text and "a2" in text and "b" in text


def test_dag_mirrors_figure_3(plan_db):
    plan = choose_plan(plan_db, "R", "A", 100, force_vertical=True)
    text = render_plan_dag(plan)
    # Driving index feeds a RID list that feeds the table, whose output
    # splits into the remaining indexes.
    assert text.index("I_R_A") < text.index("RID list")
    assert text.index("RID list") < text.index("bd[sort-merge/rid] R")
    assert "I_R_B" in text
    assert "sort_A(D)" in text


def test_dag_hash_plan_mentions_hash(plan_db):
    plan = choose_plan(
        plan_db, "R", "A", 100,
        prefer_method=BdMethod.HASH, force_vertical=True,
    )
    text = render_plan_dag(plan)
    assert "hash(RID list)" in text


def test_dag_without_driving_index():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    populate(db, n=200, indexes=("A",))
    plan = choose_plan(db, "R", "B", 50, force_vertical=True)
    text = render_plan_dag(plan)
    assert "scan(R)" in text
    assert "no index on B" in text


def test_dag_unique_index_fed_by_rids(plan_db):
    # Delete on A: uniq_b is processed before the table via RID probe.
    plan = choose_plan(plan_db, "R", "A", 100, force_vertical=True)
    text = render_plan_dag(plan)
    assert "uniq_b" in text
    assert text.index("uniq_b") < text.index("bd[sort-merge/rid] R")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_sql_script(tmp_path, capsys):
    script = tmp_path / "s.sql"
    script.write_text(
        "CREATE TABLE t (a INT);"
        "INSERT INTO t VALUES (5), (6);"
        "SELECT a FROM t ORDER BY a;"
    )
    assert cli_main(["sql", str(script)]) == 0
    out = capsys.readouterr().out
    assert "table t created" in out
    assert "(2 rows)" in out


def test_cli_experiment_unknown(capsys):
    assert cli_main(["experiment", "figure_42"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_cli_experiment_runs_small(capsys):
    assert cli_main(["experiment", "table_1", "--records", "1200"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "bulk" in out


def test_cli_demo(capsys):
    assert cli_main(["demo", "--records", "1200"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "bd[sort-merge]" in out

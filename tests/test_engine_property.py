"""Engine-level property tests: the whole database against a dict model.

Hypothesis drives sequences of bulk deletes, record inserts, point
deletes and bulk updates against a reference model, verifying after
every step that the heap and every index agree with it exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Attribute, Database, TableSchema, bulk_delete, bulk_update
from repro.btree.maintenance import validate_tree
from repro.core.plans import BdMethod


def build_db(rows):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    ))
    db.load_table("t", rows)
    db.create_index("t", "k", unique=True)
    db.create_index("t", "v")
    return db


def check_against_model(db, model):
    """model: dict k -> v."""
    scanned = {row[0]: row[1] for _, row in db.scan("t")}
    assert scanned == model
    table = db.table("t")
    assert table.record_count == len(model)
    k_tree = table.index("I_t_k").tree
    v_tree = table.index("I_t_v").tree
    validate_tree(k_tree)
    validate_tree(v_tree)
    assert sorted(k for k, _ in k_tree.items()) == sorted(model)
    assert sorted(v for v, _ in v_tree.items()) == sorted(model.values())


row_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=50),
    min_size=1,
    max_size=120,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=row_strategy,
    data=st.data(),
)
def test_bulk_delete_matches_model(rows, data):
    model = dict(rows)
    db = build_db(list(model.items()))
    method = data.draw(st.sampled_from(list(BdMethod)[:3]))
    victims = data.draw(
        st.lists(st.integers(min_value=0, max_value=600), max_size=60)
    )
    bulk_delete(db, "t", "k", victims, prefer_method=method)
    for k in victims:
        model.pop(k, None)
    check_against_model(db, model)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=row_strategy, delta=st.integers(min_value=1, max_value=100),
       threshold=st.integers(min_value=0, max_value=50))
def test_bulk_update_matches_model(rows, delta, threshold):
    model = dict(rows)
    db = build_db(list(model.items()))
    bulk_update(
        db, "t", "v",
        compute=lambda row, d=delta: row[1] + d,
        where=lambda row, t=threshold: row[1] >= t,
    )
    for k, v in model.items():
        if v >= threshold:
            model[k] = v + delta
    check_against_model(db, model)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=row_strategy, data=st.data())
def test_mixed_operation_sequences(rows, data):
    model = dict(rows)
    db = build_db(list(model.items()))
    next_key = 10_000
    for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
        op = data.draw(st.sampled_from(["bulk", "insert", "point"]))
        if op == "bulk" and model:
            victims = data.draw(
                st.lists(st.sampled_from(sorted(model)), max_size=25)
            )
            bulk_delete(db, "t", "k", victims)
            for k in victims:
                model.pop(k, None)
        elif op == "insert":
            value = data.draw(st.integers(min_value=0, max_value=50))
            db.insert("t", (next_key, value))
            model[next_key] = value
            next_key += 1
        elif op == "point" and model:
            k = data.draw(st.sampled_from(sorted(model)))
            rid = None
            for r, row in db.scan("t"):
                if row[0] == k:
                    rid = r
                    break
            db.delete_record("t", rid)
            del model[k]
    check_against_model(db, model)

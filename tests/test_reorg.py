"""Tests for Section 2.3: reorganization during bulk deletion."""

import pytest

from repro.btree.maintenance import validate_tree
from repro.btree.tree import BLinkTree
from repro.core.bulk_ops import bd_index_sort_merge
from repro.core.reorg import compact_leaf_level, sweep_with_base_node_reorg
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(n=200, leaf_cap=8, inner_cap=8):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    tree = BLinkTree(pool, max_leaf_entries=leaf_cap,
                     max_inner_entries=inner_cap)
    tree.bulk_load([(i, 5000 + i) for i in range(n)])
    return tree, disk


def test_compact_after_sparse_deletes():
    tree, disk = make_tree()
    pairs = [(k, 5000 + k) for k in range(200) if k % 3 != 0]
    bd_index_sort_merge(tree, pairs, disk)
    leaves_before = tree.leaf_count()
    freed = compact_leaf_level(tree)
    assert freed >= 0
    assert tree.leaf_count() <= leaves_before
    validate_tree(tree)
    assert [k for k, _ in tree.items()] == [k for k in range(0, 200, 3)]


def test_compact_leaves_are_dense():
    tree, disk = make_tree()
    bd_index_sort_merge(
        tree, [(k, 5000 + k) for k in range(0, 200, 2)], disk
    )
    compact_leaf_level(tree, fill_factor=1.0)
    leaf_ids = list(tree.iter_leaf_ids())
    for pid in leaf_ids[:-1]:
        assert tree.read_leaf(pid).entry_count == tree.leaf_capacity
    validate_tree(tree)


def test_compact_empty_tree():
    tree, disk = make_tree(n=10)
    bd_index_sort_merge(tree, [(k, 5000 + k) for k in range(10)], disk)
    compact_leaf_level(tree)
    assert tree.entry_count == 0
    validate_tree(tree)


def test_compact_preserves_entry_count():
    tree, disk = make_tree()
    before = tree.entry_count
    compact_leaf_level(tree)
    assert tree.entry_count == before
    validate_tree(tree)


def test_base_node_sweep_equals_plain_sweep():
    pairs = sorted((k, 5000 + k) for k in range(0, 200, 7))
    tree_a, disk_a = make_tree()
    res_a = sweep_with_base_node_reorg(tree_a, pairs, disk_a)
    tree_b, disk_b = make_tree()
    res_b = bd_index_sort_merge(tree_b, pairs, disk_b)
    assert sorted(res_a.deleted) == sorted(res_b.deleted)
    assert list(tree_a.items()) == list(tree_b.items())
    validate_tree(tree_a)
    validate_tree(tree_b)


def test_base_node_sweep_heavy_deletes():
    tree, disk = make_tree()
    pairs = [(k, 5000 + k) for k in range(150)]
    result = sweep_with_base_node_reorg(tree, pairs, disk)
    assert result.deleted_count == 150
    assert result.pages_freed > 0
    validate_tree(tree)
    assert [k for k, _ in tree.items()] == list(range(150, 200))


def test_base_node_sweep_everything():
    tree, disk = make_tree(n=100)
    result = sweep_with_base_node_reorg(
        tree, [(k, 5000 + k) for k in range(100)], disk
    )
    assert result.deleted_count == 100
    assert tree.entry_count == 0
    validate_tree(tree)


def test_base_node_sweep_on_single_leaf_tree():
    tree, disk = make_tree(n=4)
    result = sweep_with_base_node_reorg(tree, [(0, 5000)], disk)
    assert result.deleted_count == 1
    validate_tree(tree)


def test_base_node_sweep_empty_delete_list():
    tree, disk = make_tree()
    result = sweep_with_base_node_reorg(tree, [], disk)
    assert result.deleted_count == 0
    assert tree.entry_count == 200


def test_base_node_sweep_taller_tree():
    tree, disk = make_tree(n=400, leaf_cap=4, inner_cap=4)
    assert tree.height >= 4
    pairs = [(k, 5000 + k) for k in range(0, 400, 3)]
    result = sweep_with_base_node_reorg(tree, pairs, disk)
    assert result.deleted_count == len(pairs)
    validate_tree(tree)
    expected = [k for k in range(400) if k % 3 != 0]
    assert [k for k, _ in tree.items()] == expected

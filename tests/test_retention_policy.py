"""Tests for the retention policy compiler (repro.retention.policy).

The headline property (a PR satellite): compilation is deterministic —
the same policy against the same catalog produces a byte-identical DAG
and EXPLAIN text across independent builds, subject-key orderings and
hash seeds.  Hypothesis drives the scenario shape; nothing in the
compiler may depend on set/dict iteration order.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro import Attribute, Database, TableSchema
from repro.core.integrity import ConstraintRegistry, OnDelete
from repro.errors import IntegrityViolationError, PlanningError
from repro.faults.sweep import capture_state
from repro.retention import (
    RetentionPolicy,
    RetentionScenario,
    compile_policy,
)


def _dag_fingerprint(case):
    """Everything order-sensitive about the compiled plans."""
    plans = case.compile()
    explains = "\n\n".join(plan.explain() for plan in plans)
    nodes = [
        (n.table, n.column, n.keys, n.action, n.engine, n.via)
        for plan in plans
        for n in plan.nodes
    ]
    coverage = [
        (tuple(plan.reachable), tuple(plan.restricted), tuple(plan.checked))
        for plan in plans
    ]
    return explains, nodes, coverage


scenario_strategy = st.builds(
    RetentionScenario,
    users=st.integers(min_value=3, max_value=9),
    victims=st.integers(min_value=1, max_value=2),
    orders_per_user=st.integers(min_value=1, max_value=3),
    expired_orders=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=scenario_strategy)
def test_compiler_is_deterministic(scenario):
    # Two fully independent builds of the same catalog + policies must
    # compile to byte-identical DAGs and EXPLAIN text.
    assert _dag_fingerprint(scenario.build()) == _dag_fingerprint(
        scenario.build()
    )


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=scenario_strategy, data=st.data())
def test_subject_key_order_is_irrelevant(scenario, data):
    # The subject list is a *set*: any permutation compiles to the
    # same plan (keys are sorted, nodes keyed by (table, column, action)).
    case = scenario.build()
    policy = case.policies[0]
    shuffled = data.draw(st.permutations(list(policy.subject_keys)))
    reordered = RetentionPolicy(
        policy.name, policy.table, policy.column,
        subject_keys=tuple(shuffled),
    )
    assert (
        compile_policy(case.db, case.registry, reordered).explain()
        == compile_policy(case.db, case.registry, policy).explain()
    )


def test_policy_requires_exactly_one_victim_form():
    with pytest.raises(PlanningError):
        RetentionPolicy("p", "users", "UID")
    with pytest.raises(PlanningError):
        RetentionPolicy("p", "users", "UID", subject_keys=(1,), cutoff=2)


def test_restrict_violation_aborts_at_compile_time():
    case = RetentionScenario().build()
    before = capture_state(case.db)
    uid_idx = case.db.table("users").schema.column_index("UID")
    survivor = next(
        values[uid_idx]
        for _, values in case.db.scan("users")
        if values[uid_idx] not in set(case.victims)
    )
    policy = RetentionPolicy(
        "restricted", "users", "UID", subject_keys=(survivor,)
    )
    with pytest.raises(IntegrityViolationError):
        compile_policy(case.db, case.registry, policy)
    # Compile-time abort: nothing durable happened, nothing to undo.
    assert capture_state(case.db) == before


def test_clean_restrict_tables_are_excluded_from_coverage():
    case = RetentionScenario().build()
    plan = compile_policy(case.db, case.registry, case.policies[0])
    assert "audits" in plan.restricted
    assert all(node.table != "audits" for node in plan.nodes)
    # Children-first: every CASCADE child node precedes the root node.
    order = [node.table for node in plan.nodes]
    assert order.index("orders") < order.index("users")
    assert order.index("events") < order.index("users")


def test_cascade_cycle_is_rejected():
    db = Database(page_size=512, memory_bytes=32 * 512)
    for name in ("A", "B"):
        db.create_table(TableSchema.of(name, [Attribute.int_("X")]))
        db.load_table(name, [(1,), (2,)])
        db.create_index(name, "X")
    registry = ConstraintRegistry(db)
    registry.add_foreign_key("B", "X", "A", "X", OnDelete.CASCADE)
    registry.add_foreign_key("A", "X", "B", "X", OnDelete.CASCADE)
    with pytest.raises(PlanningError, match="cycle"):
        compile_policy(
            db, registry,
            RetentionPolicy("loop", "A", "X", subject_keys=(1,)),
        )


def test_lsm_root_must_use_its_key_column():
    case = RetentionScenario().build()
    with pytest.raises(PlanningError, match="key column"):
        compile_policy(
            case.db, case.registry,
            RetentionPolicy(
                "bad", "events", "EPAYLOAD", cutoff=1,
            ),
        )


def test_cascade_must_follow_the_delete_column():
    case = RetentionScenario().build()
    with pytest.raises(PlanningError, match="delete column"):
        compile_policy(
            case.db, case.registry,
            RetentionPolicy("bad", "users", "REGION", subject_keys=(100,)),
        )

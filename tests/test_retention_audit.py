"""Tests for the unrecoverability auditor and the freed-page contract.

A PR satellite pins the ``durable_image``/freed-page semantics the
auditor is built on: with ``retain_freed`` (the realistic default) a
freed page's last bytes stay durably readable until overwritten —
``read_page`` tolerates the id and ``durable_image`` returns the stale
bytes; with ``retain_freed=False`` normal reads fail, but
``durable_image`` is the forensic *platter* view and still returns
whatever is on the medium under **both** policies.  The auditor sweeps
exactly that surface, so the erase pass must shred freed pages, not
just free them.

This module exercises the raw disk surface (read_page/write_page on
freed pages) on purpose — that *is* the contract under test:

# lint: allow-file(raw-page-io)
"""

import pytest

from repro.errors import StorageError
from repro.retention import (
    ErasureWitness,
    RecoverableRetentionRun,
    RetentionScenario,
    audit_erasure,
    build_witness,
)
from repro.storage.disk import SimulatedDisk

PATTERN = b"S7700001!"


def _freed_page_with_pattern(retain_freed):
    disk = SimulatedDisk(page_size=512, retain_freed=retain_freed)
    file_id = disk.create_file()
    page_id = disk.allocate_page(file_id)
    image = PATTERN + bytes(disk.page_size - len(PATTERN))
    disk.write_page(page_id, image)
    disk.free_page(page_id)
    return disk, page_id, image


def test_retained_freed_page_stays_readable():
    disk, page_id, image = _freed_page_with_pattern(retain_freed=True)
    assert page_id in disk.freed_page_ids()
    assert disk.read_page(page_id) == image
    assert disk.durable_image(page_id) == image


def test_strict_mode_fails_reads_but_not_the_platter_view():
    disk, page_id, image = _freed_page_with_pattern(retain_freed=False)
    with pytest.raises(StorageError):
        disk.read_page(page_id)
    with pytest.raises(StorageError):
        disk.free_page(page_id)  # double free is an error in strict mode
    # The forensic view does not go through the freed-id gate: the
    # bytes are still on the medium and the auditor must see them.
    assert disk.durable_image(page_id) == image


def test_double_free_is_ignored_with_retain_freed():
    disk, page_id, _ = _freed_page_with_pattern(retain_freed=True)
    disk.free_page(page_id)  # no error: freeing a freed page is a no-op
    assert disk.freed_page_ids().count(page_id) == 1


def _clean_run():
    case = RetentionScenario().build()
    plans = case.compile()
    RecoverableRetentionRun(
        case.db, plans, case.log, full_page_writes=True,
    ).run()
    return case, plans


def test_erase_shreds_freed_pages_to_zero():
    # Freeing is not erasing: the erase pass must overwrite every
    # freed-but-retained page, leaving nothing for durable_image to
    # recover.
    case, _ = _clean_run()
    disk = case.db.disk
    freed = disk.freed_page_ids()
    assert freed, "scenario frees pages (heap reclaim, LSM compaction)"
    for page_id in freed:
        assert not any(disk.durable_image(page_id)), (
            f"freed page {page_id} still holds bytes after the erase"
        )


def test_auditor_sweeps_freed_pages():
    # Planting victim bytes on a freed page after a clean run must
    # surface as a 'freed-page' finding — the auditor reads the platter
    # (durable_image), not the live-page set.
    case, plans = _clean_run()
    witness = case.witness(plans)
    assert audit_erasure(case.db, case.log, witness).ok
    disk = case.db.disk
    page_id = disk.freed_page_ids()[0]
    secret = f"S{case.victims[0]}!".encode()
    image = bytes(16) + secret + bytes(disk.page_size - 16 - len(secret))
    disk.corrupt_page(page_id, image)
    report = audit_erasure(case.db, case.log, witness)
    assert any(
        f.location == "freed-page" and f.page_id == page_id
        for f in report.findings
    ), [f.describe() for f in report.findings]


def test_auditor_scans_live_pages_for_witness_bytes():
    case, plans = _clean_run()
    witness = case.witness(plans)
    disk = case.db.disk
    page_id = disk.page_ids()[len(disk.page_ids()) // 2]
    secret = f"S{case.victims[0]}!".encode()
    stale = bytearray(disk.durable_image(page_id))
    stale[40:40 + len(secret)] = secret
    disk.corrupt_page(page_id, bytes(stale))
    report = audit_erasure(case.db, case.log, witness)
    assert any(
        f.location == "page" and f.page_id == page_id
        for f in report.findings
    ), [f.describe() for f in report.findings]


def test_witness_covers_delete_nodes_only():
    # SET NULL children keep their rows: the witness must not demand
    # their erasure, only that nulled references no longer name victims.
    case, plans = _clean_run()
    witness = case.witness(plans)
    assert ("profiles", "PUID") not in witness.keys
    assert ("users", "UID") in witness.keys
    assert ("events", "EUID") in witness.keys
    assert set(case.victims) <= set(witness.keys[("users", "UID")])


def test_empty_witness_audits_clean_on_a_fresh_database():
    case = RetentionScenario().build()
    witness = ErasureWitness(keys={}, patterns=())
    report = audit_erasure(case.db, case.log, witness)
    assert report.ok
    # The audit sweeps live *and* freed-but-retained pages.
    assert report.pages_scanned == len(case.db.disk.page_ids()) + len(
        case.db.disk.freed_page_ids()
    )


def test_build_witness_merges_plans_and_patterns():
    case = RetentionScenario().build()
    plans = case.compile()
    witness = build_witness(plans, patterns=(b"XYZ!",))
    assert b"XYZ!" in witness.patterns
    # Both policies target orders (CASCADE + expiry): one merged entry.
    ts_keys = witness.keys_for("orders", "TS")
    assert set(case.expired_ts) <= set(ts_keys)

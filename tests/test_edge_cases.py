"""Edge cases and failure-injection across subsystems."""

import pytest

from repro import (
    Attribute,
    Database,
    TableSchema,
    bulk_delete,
    traditional_delete,
)
from repro.btree.cursor import LeafCursor
from repro.btree.maintenance import validate_tree
from repro.btree.tree import BLinkTree
from repro.errors import CatalogError, IndexError_, StorageError
from repro.query.sort import ExternalSorter
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.rid import RID
from tests.conftest import populate


# ----------------------------------------------------------------------
# degenerate table shapes
# ----------------------------------------------------------------------
def test_bulk_delete_on_empty_table(db):
    db.create_table(TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    ))
    db.create_index("t", "k")
    result = bulk_delete(db, "t", "k", [1, 2, 3], force_vertical=True)
    assert result.records_deleted == 0


def test_bulk_delete_single_row_table(db):
    db.create_table(TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    ))
    db.insert("t", (7, 70))
    db.create_index("t", "k")
    result = bulk_delete(db, "t", "k", [7], force_vertical=True)
    assert result.records_deleted == 1
    assert list(db.scan("t")) == []


def test_bulk_delete_empty_key_list(db):
    values = populate(db, n=50)
    result = bulk_delete(db, "R", "A", [], force_vertical=True)
    assert result.records_deleted == 0
    assert db.table("R").record_count == 50


def test_traditional_delete_empty_key_list(db):
    populate(db, n=50)
    result = traditional_delete(db, "R", "A", [])
    assert result.records_deleted == 0


def test_repeated_bulk_deletes_converge(db):
    values = populate(db, n=200)
    keys = values["A"][:80]
    first = bulk_delete(db, "R", "A", keys, force_vertical=True)
    second = bulk_delete(db, "R", "A", keys, force_vertical=True)
    assert first.records_deleted == 80
    assert second.records_deleted == 0  # idempotent
    for ix in db.table("R").indexes.values():
        validate_tree(ix.tree)


def test_bulk_delete_then_reinsert_same_keys(db):
    values = populate(db, n=100, unique_a=True)
    keys = values["A"][:30]
    bulk_delete(db, "R", "A", keys, force_vertical=True)
    for key in keys:
        db.insert("R", (key, key + 1, "re"))
    assert db.table("R").record_count == 100
    for ix in db.table("R").indexes.values():
        validate_tree(ix.tree)
        assert ix.tree.entry_count == 100


# ----------------------------------------------------------------------
# cursor / tree edges
# ----------------------------------------------------------------------
def make_tree(entries):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=32)
    tree = BLinkTree(pool, max_leaf_entries=4, max_inner_entries=4)
    tree.bulk_load(sorted(entries))
    return tree


def test_cursor_start_key_beyond_all_keys():
    tree = make_tree([(i, i) for i in range(20)])
    cursor = LeafCursor(tree, start_key=10**9)
    remaining = list(cursor.entries())
    assert remaining == [] or remaining[0][0] >= 16  # last leaf only


def test_cursor_on_empty_tree():
    tree = make_tree([])
    assert list(LeafCursor(tree).entries()) == []


def test_range_scan_empty_interval():
    tree = make_tree([(i, i) for i in range(20)])
    assert list(tree.range_scan(100, 50)) == []
    assert list(tree.range_scan(1000, 2000)) == []


def test_read_leaf_rejects_inner_pages():
    tree = make_tree([(i, i) for i in range(50)])
    assert tree.height >= 2
    with pytest.raises(IndexError_):
        tree.read_leaf(tree.root_id)


# ----------------------------------------------------------------------
# sorter stats and width mismatches
# ----------------------------------------------------------------------
def test_sorter_stats_populated():
    disk = SimulatedDisk(page_size=512)
    sorter = ExternalSorter(disk, memory_bytes=1 << 20, width=1)
    list(sorter.sort([(3,), (1,), (2,)]))
    assert sorter.stats.input_tuples == 3
    assert sorter.stats.runs == 1
    assert not sorter.stats.spilled


def test_sorter_spill_stats():
    disk = SimulatedDisk(page_size=512)
    sorter = ExternalSorter(disk, memory_bytes=1024, width=1)
    list(sorter.sort([(i,) for i in range(1000)]))
    assert sorter.stats.spilled
    assert sorter.stats.spill_pages > 0


# ----------------------------------------------------------------------
# failure injection on the heap path
# ----------------------------------------------------------------------
def test_delete_many_rejects_foreign_rid(db):
    populate(db, n=20, indexes=())
    table = db.table("R")
    with pytest.raises(StorageError):
        table.heap.delete_many_sorted([RID(999999, 0)])


def test_update_rejects_size_change(db):
    populate(db, n=5, indexes=())
    table = db.table("R")
    rid = next(r for r, _ in table.heap.scan())
    with pytest.raises(StorageError):
        table.heap.update(rid, b"short")


def test_unknown_table_everywhere(db):
    with pytest.raises(CatalogError):
        bulk_delete(db, "missing", "A", [1])
    with pytest.raises(CatalogError):
        db.vacuum("missing")


# ----------------------------------------------------------------------
# simulated-clock sanity across a whole operation
# ----------------------------------------------------------------------
def test_clock_monotone_through_bulk_delete(db):
    values = populate(db, n=150)
    t0 = db.clock.now_ms
    bulk_delete(db, "R", "A", values["A"][:50], force_vertical=True)
    t1 = db.clock.now_ms
    assert t1 > t0
    # Time only moves forward; a second op adds more.
    bulk_delete(db, "R", "A", values["A"][50:80], force_vertical=True)
    assert db.clock.now_ms > t1


def test_io_accounting_consistent(db):
    values = populate(db, n=150)
    db.flush()
    before = db.disk.stats.snapshot()
    result = bulk_delete(db, "R", "A", values["A"][:50],
                         force_vertical=True)
    delta = db.disk.stats.delta_since(before)
    assert delta.reads == result.io.reads
    assert delta.writes == result.io.writes
    breakdown = (
        delta.random_reads
        + delta.sequential_reads
        + delta.near_sequential_reads
    )
    assert breakdown == delta.reads

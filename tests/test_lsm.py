"""The delete-aware LSM engine against reference models.

Unit tests pin each layer's contract (memtable resolution, run
build/probe, FADE victim selection, bulk load placement, catalog
integration), and a Hypothesis property test drives random operation
sequences — puts, point/range deletes, flushes, compactions, crashes —
against a dict model, checking visibility after every step and
byte-identical state across recovery.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Attribute, Database, TableSchema
from repro.errors import CatalogError, PlanningError, StorageError
from repro.lsm import (
    LsmConfig,
    LsmTree,
    Memtable,
    RangeTombstone,
    choose_lsm_plan,
    lsm_bulk_delete,
)
from repro.lsm.planning import RANGE_COMPILE_MIN, compile_tombstones
from repro.lsm.sstable import build_run, run_get, run_iter
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk

TINY = LsmConfig(
    memtable_entries=8,
    l0_runs=2,
    run_pages=2,
    level_runs=2,
    fanout=2,
    tombstone_density_trigger=0.2,
    tombstone_age_seqs=1000,
    max_delete_compactions=4,
)


def make_pool(pages: int = 32, page_size: int = 512) -> BufferPool:
    disk = SimulatedDisk(page_size=page_size)
    return BufferPool(disk, capacity_pages=pages)


# ----------------------------------------------------------------------
# memtable
# ----------------------------------------------------------------------
def test_memtable_resolution_is_newest_wins():
    mem = Memtable()
    mem.put(1, 10, b"a")
    mem.put(3, 10, b"b")
    assert mem.resolve(10) == (3, b"b")
    mem.delete(4, 10)
    assert mem.resolve(10) == (4, None)
    mem.put(5, 10, b"c")
    assert mem.resolve(10) == (5, b"c")
    assert mem.resolve(99) is None


def test_memtable_range_tombstone_competes_by_seq():
    mem = Memtable()
    mem.put(5, 10, b"new")
    mem.put(1, 11, b"old")
    mem.delete_range(3, 0, 20)
    # Newer point survives the older range; older point does not.
    assert mem.resolve(10) == (5, b"new")
    assert mem.resolve(11) == (3, None)
    # The range answers for keys it covers even with no point entry.
    assert mem.resolve(15) == (3, None)
    assert mem.resolve(21) is None
    assert mem.entry_count == 3
    assert mem.approx_live == 1


def test_range_tombstone_rejects_empty_interval():
    with pytest.raises(ValueError):
        RangeTombstone(seq=1, lo=5, hi=4)


# ----------------------------------------------------------------------
# sorted runs
# ----------------------------------------------------------------------
def test_run_round_trip_and_fence_probe():
    pool = make_pool()
    file_id = pool.disk.create_file()
    items = [(k, k + 100, f"v{k}".encode()) for k in range(0, 60, 2)]
    meta = build_run(pool, file_id, run_id=1, level=1, items=items)
    assert meta.entry_count == len(items)
    assert (meta.key_min, meta.key_max) == (0, 58)
    assert list(run_iter(pool, meta)) == items
    hit, pages = run_get(pool, meta, 42)
    assert hit == (142, b"v42")
    assert pages == 1  # fence keys route the probe to one page
    miss, _ = run_get(pool, meta, 43)
    assert miss is None


def test_run_build_rejects_unsorted_keys():
    pool = make_pool()
    file_id = pool.disk.create_file()
    with pytest.raises(StorageError):
        build_run(
            pool, file_id, run_id=1, level=1,
            items=[(2, 1, b"a"), (1, 2, b"b")],
        )


# ----------------------------------------------------------------------
# tombstone compilation
# ----------------------------------------------------------------------
def test_compile_tombstones_splits_runs_and_points():
    lo = 100
    block = list(range(lo, lo + RANGE_COMPILE_MIN))
    short = [1, 2, 3]  # consecutive but below the threshold
    scattered = [900, 905]
    points, ranges = compile_tombstones(short + block + scattered)
    assert ranges == [(lo, lo + RANGE_COMPILE_MIN - 1)]
    assert points == short + scattered
    # Duplicates collapse before compilation.
    points2, ranges2 = compile_tombstones(block + block)
    assert (points2, ranges2) == ([], ranges)


# ----------------------------------------------------------------------
# tree vs model (property)
# ----------------------------------------------------------------------
def tree_state(tree):
    return dict(tree.scan())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_tree_matches_model_under_random_ops(data):
    pool = make_pool(pages=48)
    tree = LsmTree(pool, name="t", config=TINY)
    model = {}
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        op = data.draw(st.sampled_from(
            ["put", "delete", "delete_range", "flush", "compact", "fade"]
        ))
        if op == "put":
            for key in data.draw(st.lists(
                st.integers(min_value=0, max_value=120), max_size=20
            )):
                payload = f"v{key}".encode()
                tree.put(key, payload)
                model[key] = payload
        elif op == "delete":
            for key in data.draw(st.lists(
                st.integers(min_value=0, max_value=140), max_size=10
            )):
                tree.delete(key)
                model.pop(key, None)
        elif op == "delete_range":
            lo = data.draw(st.integers(min_value=0, max_value=120))
            hi = lo + data.draw(st.integers(min_value=0, max_value=30))
            tree.delete_range(lo, hi)
            for key in [k for k in model if lo <= k <= hi]:
                del model[key]
        elif op == "flush":
            tree.flush_memtable()
        elif op == "compact":
            tree.compact_all()
            assert tree.tombstone_count == 0
        elif op == "fade":
            tree.delete_aware_compactions()
        assert tree_state(tree) == model
        for key in data.draw(st.lists(
            st.integers(min_value=0, max_value=140), max_size=5
        )):
            assert tree.get(key) == model.get(key)
    # Recovery from durable state matches the model exactly (anything
    # still buffered was logged, so nothing is lost).
    pool.invalidate_all()
    recovered = LsmTree.recover(pool, tree.handle, config=TINY, name="t")
    assert tree_state(recovered) == model


def test_recovery_is_terminal_and_preserves_sequences():
    pool = make_pool(pages=48)
    tree = LsmTree(pool, name="t", config=TINY)
    for key in range(30):
        tree.put(key, b"x%d" % key)
    tree.delete_range(5, 9)
    first = LsmTree.recover(pool, tree.handle, config=TINY, name="t")
    assert tree_state(first) == tree_state(tree)
    # New writes after recovery must win over pre-crash facts.
    first.put(5, b"back")
    assert first.get(5) == b"back"
    second = LsmTree.recover(pool, first.handle, config=TINY, name="t")
    assert tree_state(second) == tree_state(first)


# ----------------------------------------------------------------------
# FADE
# ----------------------------------------------------------------------
def test_fade_density_trigger_picks_tombstone_dense_run():
    pool = make_pool(pages=64)
    tree = LsmTree(pool, name="t", config=TINY)
    for key in range(32):
        tree.put(key, b"p%d" % key)
    tree.compact_all()
    assert tree.tombstone_count == 0
    for key in range(0, 6):  # stays below the 8-entry flush trigger
        tree.delete(key)
    tree.flush_memtable()
    assert tree.tombstone_count > 0
    ran = tree.delete_aware_compactions()
    assert ran > 0
    # Dense tombstones reached the deepest data and were dropped.
    assert tree.tombstone_count == 0
    assert tree_state(tree) == {
        key: b"p%d" % key for key in range(6, 32)
    }


def test_fade_age_trigger_fires_without_density():
    config = LsmConfig(
        memtable_entries=64, l0_runs=8, run_pages=2, level_runs=8,
        fanout=2, tombstone_density_trigger=0.99, tombstone_age_seqs=10,
        max_delete_compactions=4,
    )
    pool = make_pool(pages=64)
    tree = LsmTree(pool, name="t", config=config)
    for key in range(20):
        tree.put(key, b"p%d" % key)
    tree.delete(0)  # 1 tombstone in 21 facts: density ~0.05, never 0.99
    tree.flush_memtable()
    assert tree.delete_aware_compactions() == 0  # too young, too sparse
    for key in range(100, 112):
        tree.put(key, b"q%d" % key)  # age the tombstone past 10 seqs
    assert tree.delete_aware_compactions() > 0
    assert 0 not in dict(tree.scan())


def test_write_only_deletes_defer_all_compaction():
    pool = make_pool(pages=64)
    db_free_tree = LsmTree(pool, name="t", config=TINY)
    for key in range(16):
        db_free_tree.put(key, b"p%d" % key)
    before = db_free_tree.stats.snapshot()
    db_free_tree.delete(3)
    delta = db_free_tree.stats.delta_since(before)
    assert delta.point_deletes == 1
    assert delta.compactions == 0
    # The tombstone is one log append; no data page was touched.
    assert delta.log_appends == 1
    assert delta.compaction_pages_written == 0


# ----------------------------------------------------------------------
# bulk load
# ----------------------------------------------------------------------
def test_bulk_load_places_runs_within_level_budget():
    pool = make_pool(pages=96)
    tree = LsmTree(pool, name="t", config=TINY)
    count = tree.bulk_load(
        (key, b"r%d" % key) for key in range(300)
    )
    assert count == 300
    # Every level respects its run budget, so the next flush does not
    # trigger a rebalancing storm against a deliberately overfull L1.
    for level in range(1, len(tree.levels)):
        assert len(tree.levels[level]) <= tree.config.level_runs * (
            tree.config.fanout ** (level - 1)
        )
    assert tree.stats.log_appends == 0
    assert tree.stats.manifest_commits >= 1
    assert len(tree_state(tree)) == 300


def test_bulk_load_requires_empty_tree_and_dedupes():
    pool = make_pool()
    tree = LsmTree(pool, name="t", config=TINY)
    tree.bulk_load([(1, b"first"), (1, b"last")])
    assert tree.get(1) == b"last"
    with pytest.raises(StorageError):
        tree.bulk_load([(2, b"again")])


# ----------------------------------------------------------------------
# catalog + planner integration
# ----------------------------------------------------------------------
def make_db():
    db = Database(page_size=512, memory_bytes=32 * 512)
    db.create_table(
        TableSchema.of(
            "R", [Attribute.int_("A"), Attribute.char("PAD", 20)]
        ),
        engine="lsm",
        lsm_config=TINY,
    )
    return db


def test_lsm_table_facade_semantics():
    db = make_db()
    db.load_table("R", [(a, f"row{a}") for a in range(20)])
    assert db.insert("R", (20, "late")) is None  # key-addressed: no RID
    assert dict(db.scan("R"))[20] == (20, "late")
    assert db.table("R").is_lsm
    assert db.table("R").record_count == 21
    with pytest.raises(CatalogError):
        db.create_index("R", "A")
    with pytest.raises(CatalogError):
        db.create_hash_index("R", "A")
    with pytest.raises(CatalogError):
        db.delete_record("R", None)


def test_lsm_plan_requires_the_key_column():
    db = make_db()
    db.load_table("R", [(a, f"row{a}") for a in range(20)])
    with pytest.raises(PlanningError):
        choose_lsm_plan(db, "R", "PAD", [1, 2])
    plan = choose_lsm_plan(db, "R", "A", list(range(16)) + [40])
    assert plan.range_tombstones == 1
    assert plan.point_tombstones == 1
    assert plan.estimated_ms > 0
    assert "range" in plan.explain()


def test_lsm_bulk_delete_reconciles_with_vacuum():
    db = make_db()
    db.load_table("R", [(a, f"row{a}") for a in range(40)])
    keys = list(range(8, 28)) + [30, 35]
    result = lsm_bulk_delete(db, "R", "A", keys)
    assert result.records_deleted == len(set(keys))
    assert result.range_tombstones == 1
    survivors = {a for a, _ in db.scan("R")}
    assert survivors == set(range(40)) - set(keys)
    stats = db.vacuum("R")
    assert stats["lsm_data_pages"] > 0
    tree = db.table("R").lsm
    assert tree is not None and tree.tombstone_count == 0
    assert {a for a, _ in db.scan("R")} == survivors


def test_lsm_page_write_accounting_is_exact():
    db = make_db()
    db.load_table("R", [(a, f"row{a}") for a in range(64)])
    tree = db.table("R").lsm
    assert tree is not None
    io_before = db.disk.stats.snapshot()
    stats_before = tree.stats.snapshot()
    lsm_bulk_delete(db, "R", "A", list(range(10, 40)))
    io_delta = db.disk.stats.delta_since(io_before)
    stats_delta = tree.stats.delta_since(stats_before)
    assert io_delta.writes == stats_delta.page_writes

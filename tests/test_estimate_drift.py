"""Gate: planner estimates track measurements on the self-check corpus.

Every corpus case is executed and ``plan.estimated_ms`` compared with
the measured simulated time.  Estimates must land within
``MAX_RATIO`` (2x) of measurement in either direction, except for the
cases in ``ACCEPTED_DRIFT`` — understood gaps that are documented in
``docs/cost_model.md`` ("Known estimate gaps").
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.drift import (
    ACCEPTED_DRIFT,
    MAX_RATIO,
    format_drift_report,
    measure_drift,
    unexplained_drift,
)
from repro.analysis.selfcheck import CASES

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def records():
    return measure_drift()


def test_every_corpus_case_is_measured(records):
    assert {r.case for r in records} == {c.name for c in CASES}
    assert all(r.actual_ms > 0 for r in records)
    assert all(r.estimated_ms > 0 for r in records)


def test_no_unexplained_drift(records):
    bad = unexplained_drift(records)
    assert bad == [], format_drift_report(records)


def test_both_strategies_are_exercised(records):
    strategies = {r.strategy for r in records}
    assert strategies == {"horizontal", "vertical"}


def test_accepted_drift_cases_actually_drift(records):
    """Entries must not linger after the estimate improves."""
    by_name = {r.case: r for r in records}
    for case in ACCEPTED_DRIFT:
        assert case in by_name, f"{case} is not a corpus case"
        assert not by_name[case].within, (
            f"{case} is now within {MAX_RATIO}x; "
            "drop it from ACCEPTED_DRIFT"
        )


def test_accepted_drift_is_documented():
    doc = (REPO_ROOT / "docs" / "cost_model.md").read_text()
    for case in ACCEPTED_DRIFT:
        assert case in doc, (
            f"accepted drift case {case!r} missing from "
            "docs/cost_model.md 'Known estimate gaps'"
        )

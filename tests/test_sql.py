"""Tests for the SQL front-end: lexer, parser, interpreter."""

import pytest

from repro import Database
from repro.errors import CatalogError, SqlBindError, SqlSyntaxError
from repro.sql import ast
from repro.sql.interpreter import SqlSession
from repro.sql.lexer import tokenize
from repro.sql.parser import parse, parse_script


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
def test_tokenize_keywords_case_insensitive():
    tokens = tokenize("select * from R")
    assert tokens[0].is_keyword("SELECT")
    assert tokens[2].is_keyword("FROM")


def test_tokenize_numbers_strings_ops():
    tokens = tokenize("(-5, 'it''s', <=)")
    kinds = [(t.kind, t.value) for t in tokens[:-1]]
    # Minus is an operator token (unary minus is handled by the parser,
    # so that "salary - 5" does not lex as "salary", "-5").
    assert ("op", "-") in kinds
    assert ("number", "5") in kinds
    assert ("string", "it's") in kinds
    assert ("op", "<=") in kinds


def test_parse_negative_literals():
    stmt = parse("INSERT INTO t VALUES (-7, 'x')")
    assert stmt.rows == ((-7, "x"),)


def test_parse_update_statements():
    stmt = parse("UPDATE emp SET salary = salary + 50 WHERE dept = 3")
    assert stmt.set_clause == ast.SetClause("salary", delta=50)
    stmt = parse("UPDATE emp SET salary = salary - 50")
    assert stmt.set_clause == ast.SetClause("salary", delta=-50)
    stmt = parse("UPDATE emp SET salary = 100")
    assert stmt.set_clause == ast.SetClause("salary", value=100)
    with pytest.raises(SqlSyntaxError):
        parse("UPDATE emp SET salary = bonus + 1")
    with pytest.raises(SqlSyntaxError):
        parse("UPDATE emp SET salary = salary * 2")


def test_tokenize_rejects_garbage():
    with pytest.raises(SqlSyntaxError):
        tokenize("select @ from R")


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def test_parse_create_table():
    stmt = parse("CREATE TABLE R (A INT, K CHAR(40))")
    assert isinstance(stmt, ast.CreateTable)
    assert stmt.columns == (
        ast.ColumnDef("A", "INT"),
        ast.ColumnDef("K", "CHAR", 40),
    )


def test_parse_create_unique_clustered_index():
    stmt = parse("CREATE UNIQUE CLUSTERED INDEX ia ON R (A)")
    assert stmt == ast.CreateIndex("ia", "R", "A", True, True)


def test_parse_insert_multi_row():
    stmt = parse("INSERT INTO R VALUES (1, 'x'), (2, 'y')")
    assert stmt.rows == ((1, "x"), (2, "y"))


def test_parse_select_with_where_and_order():
    stmt = parse("SELECT A, B FROM R WHERE A >= 10 ORDER BY B")
    assert stmt.columns == ("A", "B")
    assert stmt.where == ast.Comparison("A", ">=", 10)
    assert stmt.order_by == "B"


def test_parse_the_papers_delete():
    stmt = parse("DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)")
    assert stmt == ast.Delete("R", ast.InSubquery("A", "D", "A"))


def test_parse_delete_in_list():
    stmt = parse("DELETE FROM R WHERE A IN (1, 2, 3)")
    assert stmt == ast.Delete("R", ast.InList("A", (1, 2, 3)))


def test_parse_explain():
    stmt = parse("EXPLAIN DELETE FROM R WHERE A IN (1)")
    assert isinstance(stmt, ast.Explain)
    assert isinstance(stmt.statement, ast.Delete)


def test_parse_script_multiple_statements():
    stmts = parse_script(
        "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"
    )
    assert len(stmts) == 2


def test_parse_errors_report_position():
    with pytest.raises(SqlSyntaxError):
        parse("DELETE R")
    with pytest.raises(SqlSyntaxError):
        parse("SELECT FROM R")
    with pytest.raises(SqlSyntaxError):
        parse("CREATE TABLE t (a FLOAT)")
    with pytest.raises(SqlSyntaxError):
        parse("SELECT * FROM R; SELECT * FROM R", )


# ----------------------------------------------------------------------
# interpreter
# ----------------------------------------------------------------------
@pytest.fixture
def session():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    sql = SqlSession(db)
    sql.execute("CREATE TABLE R (A INT, B INT, K CHAR(16))")
    sql.execute("CREATE TABLE D (A INT)")
    rows = ", ".join(f"({i}, {1000 - i}, 'r{i}')" for i in range(50))
    sql.execute(f"INSERT INTO R VALUES {rows}")
    sql.execute("CREATE UNIQUE INDEX ia ON R (A)")
    sql.execute("CREATE INDEX ib ON R (B)")
    return sql


def test_select_star(session):
    result = session.execute("SELECT * FROM R")
    assert result.kind == "select"
    assert len(result.rows) == 50


def test_select_projection_and_filter(session):
    result = session.execute("SELECT A FROM R WHERE A < 5 ORDER BY A")
    assert result.rows == [(0,), (1,), (2,), (3,), (4,)]


def test_select_filter_operators(session):
    assert len(session.execute("SELECT A FROM R WHERE A <> 0").rows) == 49
    assert len(session.execute("SELECT A FROM R WHERE A >= 48").rows) == 2
    assert len(session.execute("SELECT A FROM R WHERE A IN (1,2)").rows) == 2


def test_delete_with_in_list(session):
    result = session.execute("DELETE FROM R WHERE A IN (1, 2, 3, 999)")
    assert result.kind == "delete"
    assert result.affected == 3
    assert len(session.execute("SELECT * FROM R").rows) == 47


def test_the_papers_statement_runs_bulk(session):
    values = ", ".join(f"({i})" for i in range(0, 50, 2))
    session.execute(f"INSERT INTO D VALUES {values}")
    session.force_vertical = True
    result = session.execute(
        "DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)"
    )
    assert result.affected == 25
    assert result.detail is not None
    assert result.detail.plan.driving_index == "ia"
    survivors = session.execute("SELECT A FROM R").rows
    assert all(a % 2 == 1 for (a,) in survivors)


def test_delete_with_comparison_predicate(session):
    result = session.execute("DELETE FROM R WHERE B > 990")
    assert result.affected == 10  # B in 991..1000 for A in 0..9


def test_unconditional_delete(session):
    result = session.execute("DELETE FROM R")
    assert result.affected == 50
    assert session.execute("SELECT * FROM R").rows == []


def test_explain_shows_plan(session):
    values = ", ".join(f"({i})" for i in range(30))
    session.execute(f"INSERT INTO D VALUES {values}")
    session.force_vertical = True
    result = session.execute(
        "EXPLAIN DELETE FROM R WHERE A IN (SELECT A FROM D)"
    )
    assert result.kind == "explain"
    assert "BULK DELETE FROM R" in result.text
    assert "ia" in result.text
    # EXPLAIN must not execute.
    assert len(session.execute("SELECT * FROM R").rows) == 50


def test_drop_statements(session):
    session.execute("DROP INDEX ib ON R")
    with pytest.raises(CatalogError):
        session.db.table("R").index("ib")
    session.execute("DROP TABLE D")
    with pytest.raises(CatalogError):
        session.db.table("D")


def test_bind_errors(session):
    with pytest.raises(CatalogError):
        session.execute("SELECT * FROM missing")
    with pytest.raises(CatalogError):
        session.execute("SELECT missing FROM R")
    with pytest.raises(SqlBindError):
        session.execute("EXPLAIN SELECT * FROM R")


def test_execute_script(session):
    results = session.execute_script(
        "DELETE FROM R WHERE A IN (0); SELECT A FROM R WHERE A < 2"
    )
    assert results[0].affected == 1
    assert results[1].rows == [(1,)]


def test_update_statement_delta(session):
    result = session.execute("UPDATE R SET B = B + 10000 WHERE A < 10")
    assert result.kind == "update"
    assert result.affected == 10
    big = session.execute("SELECT B FROM R WHERE B > 10000").rows
    assert len(big) == 10
    # The index on B reflects the new values.
    tree = session.db.table("R").index("ib").tree
    for (b,) in big:
        assert tree.contains(b)


def test_update_statement_absolute(session):
    result = session.execute("UPDATE R SET B = 77 WHERE A IN (1, 2)")
    assert result.affected == 2
    rows = session.execute("SELECT A FROM R WHERE B = 77").rows
    assert sorted(rows) == [(1,), (2,)]


def test_update_statement_without_where(session):
    result = session.execute("UPDATE R SET B = 5")
    assert result.affected == 50
    assert {b for (b,) in session.execute("SELECT B FROM R").rows} == {5}


def test_count_star(session):
    assert session.execute("SELECT COUNT(*) FROM R").rows == [(50,)]
    assert session.execute(
        "SELECT COUNT(*) FROM R WHERE A < 10"
    ).rows == [(10,)]


def test_and_conjunctions(session):
    rows = session.execute(
        "SELECT A FROM R WHERE A >= 10 AND A < 20 AND B > 985 ORDER BY A"
    ).rows
    # B = 1000 - A: B > 985 means A < 15.
    assert rows == [(a,) for a in range(10, 15)]


def test_delete_with_and_predicate(session):
    result = session.execute("DELETE FROM R WHERE A < 5 AND B < 999")
    # B = 1000 - A: B < 999 means A > 1 -> A in {2, 3, 4}.
    assert result.affected == 3

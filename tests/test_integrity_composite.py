"""Tests for referential integrity and compound indexes."""

import pytest

from repro import Attribute, Database, TableSchema, bulk_delete
from repro.btree.maintenance import validate_tree
from repro.catalog.composite import CompositeKeyCodec
from repro.core.integrity import (
    ConstraintRegistry,
    OnDelete,
    bulk_delete_with_integrity,
    find_referencing_keys,
)
from repro.errors import (
    CatalogError,
    IntegrityViolationError,
    PlanningError,
    SchemaError,
)


# ----------------------------------------------------------------------
# composite key codec
# ----------------------------------------------------------------------
def test_codec_roundtrip():
    codec = CompositeKeyCodec.of(16, 16, 8)
    values = (1234, 567, 89)
    assert codec.unpack(codec.pack(values)) == values


def test_codec_preserves_lexicographic_order():
    codec = CompositeKeyCodec.of(10, 10)
    tuples = [(a, b) for a in (0, 3, 900) for b in (0, 5, 1023)]
    packed = [codec.pack(t) for t in tuples]
    assert sorted(packed) == [codec.pack(t) for t in sorted(tuples)]


def test_codec_range_checks():
    codec = CompositeKeyCodec.of(4)
    with pytest.raises(SchemaError):
        codec.pack((16,))
    with pytest.raises(SchemaError):
        codec.pack((-1,))
    with pytest.raises(SchemaError):
        codec.pack((1, 2))
    with pytest.raises(SchemaError):
        CompositeKeyCodec.of(40, 40)  # > 63 bits
    with pytest.raises(SchemaError):
        CompositeKeyCodec.of()


def test_codec_prefix_range():
    codec = CompositeKeyCodec.of(8, 8)
    lo, hi = codec.prefix_range((7,))
    assert codec.unpack(lo) == (7, 0)
    assert codec.unpack(hi) == (7, 255)
    assert codec.prefix_range((7, 3)) == (codec.pack((7, 3)),) * 2


# ----------------------------------------------------------------------
# compound indexes through the engine
# ----------------------------------------------------------------------
def build_compound_db(n=200):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    schema = TableSchema.of(
        "T",
        [Attribute.int_("a"), Attribute.int_("b"), Attribute.int_("c")],
    )
    db.create_table(schema)
    rows = [(i, i % 16, i % 7) for i in range(n)]
    db.load_table("T", rows)
    db.create_index("T", "a", unique=True)
    codec = CompositeKeyCodec.of(8, 16)
    db.create_index(
        "T", "b", name="I_bc", columns=("b", "c"), codec=codec
    )
    return db, codec


def test_compound_index_builds_and_scans():
    db, codec = build_compound_db()
    index = db.table("T").index("I_bc")
    assert index.is_compound
    assert index.tree.entry_count == 200
    validate_tree(index.tree)
    lo, hi = codec.prefix_range((5,))
    matches = list(index.tree.range_scan(lo, hi))
    expected = [i for i in range(200) if i % 16 == 5]
    assert len(matches) == len(expected)


def test_compound_index_maintained_by_insert_delete():
    db, codec = build_compound_db()
    rid = db.insert("T", (9999, 3, 4))
    index = db.table("T").index("I_bc")
    assert index.tree.contains(codec.pack((3, 4)), rid.pack())
    db.delete_record("T", rid)
    assert not index.tree.contains(codec.pack((3, 4)), rid.pack())
    validate_tree(index.tree)


def test_compound_index_maintained_by_bulk_delete():
    db, codec = build_compound_db()
    keys = list(range(0, 200, 4))
    result = bulk_delete(db, "T", "a", keys)
    assert result.records_deleted == 50
    index = db.table("T").index("I_bc")
    assert index.tree.entry_count == 150
    validate_tree(index.tree)
    survivors = {v[0] for _, v in db.scan("T")}
    assert survivors == set(range(200)) - set(keys)


def test_compound_index_requires_codec():
    db, codec = build_compound_db()
    from repro.catalog.catalog import IndexInfo

    with pytest.raises(CatalogError):
        IndexInfo(
            name="bad", table_name="T", column="b",
            tree=db.table("T").index("I_bc").tree,
            columns=("b", "c"),  # no codec
        )


def test_compound_not_usable_as_driving_index():
    db, codec = build_compound_db()
    table = db.table("T")
    assert table.indexes_on("b") == []  # compound cannot drive b-deletes
    assert [ix.name for ix in table.indexes_covering("b")] == ["I_bc"]


# ----------------------------------------------------------------------
# referential integrity
# ----------------------------------------------------------------------
def build_parent_child(cascade=False, index_child=True):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "parent", [Attribute.int_("pk"), Attribute.char("p", 20)]
    ))
    db.create_table(TableSchema.of(
        "child", [Attribute.int_("ck"), Attribute.int_("parent_ref")]
    ))
    db.load_table("parent", [(i, "p") for i in range(100)])
    # children reference even parents, two children each
    db.load_table(
        "child",
        [(1000 + i, (i // 2) * 2 % 100) for i in range(200)],
    )
    db.create_index("parent", "pk", unique=True)
    db.create_index("child", "ck", unique=True)
    if index_child:
        db.create_index("child", "parent_ref")
    constraints = ConstraintRegistry(db)
    constraints.add_foreign_key(
        "child", "parent_ref", "parent", "pk",
        on_delete=OnDelete.CASCADE if cascade else OnDelete.RESTRICT,
    )
    return db, constraints


def test_restrict_blocks_before_any_modification():
    db, constraints = build_parent_child()
    before = sorted(v for _, v in db.scan("parent"))
    with pytest.raises(IntegrityViolationError):
        bulk_delete_with_integrity(
            db, constraints, "parent", "pk", [0, 2, 4]
        )
    # Nothing at all was modified — the check ran first.
    assert sorted(v for _, v in db.scan("parent")) == before
    assert db.table("parent").index("I_parent_pk").tree.entry_count == 100


def test_restrict_allows_unreferenced_deletes():
    db, constraints = build_parent_child()
    # Odd parents have no children.
    result, report = bulk_delete_with_integrity(
        db, constraints, "parent", "pk", [1, 3, 5]
    )
    assert result.records_deleted == 3
    assert report.cascade_deleted == 0
    assert len(report.checked) == 1


def test_cascade_deletes_children_first():
    db, constraints = build_parent_child(cascade=True)
    result, report = bulk_delete_with_integrity(
        db, constraints, "parent", "pk", [0, 2, 4]
    )
    assert result.records_deleted == 3
    # Children referencing 0/2/4: ck values derived from the loader.
    refs = {v[1] for _, v in db.scan("child")}
    assert refs.isdisjoint({0, 2, 4})
    assert report.cascade_deleted > 0
    for table in ("parent", "child"):
        for ix in db.table(table).indexes.values():
            validate_tree(ix.tree)


def test_cascade_without_child_index_scans():
    db, constraints = build_parent_child(cascade=True, index_child=False)
    result, report = bulk_delete_with_integrity(
        db, constraints, "parent", "pk", [0]
    )
    assert result.records_deleted == 1
    refs = {v[1] for _, v in db.scan("child")}
    assert 0 not in refs


def test_find_referencing_keys_matches_scan():
    db_i, constraints_i = build_parent_child()
    db_s, constraints_s = build_parent_child(index_child=False)
    fk_i = constraints_i.all_constraints()[0]
    fk_s = constraints_s.all_constraints()[0]
    keys = [0, 2, 3, 98]
    assert find_referencing_keys(db_i, fk_i, keys) == find_referencing_keys(
        db_s, fk_s, keys
    )


def test_cascade_chain_grandchildren():
    db, constraints = build_parent_child(cascade=True)
    db.create_table(TableSchema.of(
        "grandchild", [Attribute.int_("gk"), Attribute.int_("child_ref")]
    ))
    # Each grandchild references one child key.
    db.load_table(
        "grandchild", [(5000 + i, 1000 + i) for i in range(200)]
    )
    db.create_index("grandchild", "child_ref")
    constraints.add_foreign_key(
        "grandchild", "child_ref", "child", "ck",
        on_delete=OnDelete.CASCADE,
    )
    result, report = bulk_delete_with_integrity(
        db, constraints, "parent", "pk", [0]
    )
    assert result.records_deleted == 1
    child_refs = {v[1] for _, v in db.scan("grandchild")}
    surviving_children = {v[0] for _, v in db.scan("child")}
    assert child_refs <= surviving_children


def test_foreign_key_validation():
    db, constraints = build_parent_child()
    with pytest.raises(CatalogError):
        constraints.add_foreign_key("child", "nope", "parent", "pk")
    with pytest.raises(CatalogError):
        constraints.add_foreign_key("child", "ck", "parent", "nope")


def test_cascade_cycle_detected():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "x", [Attribute.int_("k"), Attribute.int_("ref")]
    ))
    db.load_table("x", [(i, i) for i in range(10)])
    db.create_index("x", "k", unique=True)
    constraints = ConstraintRegistry(db)
    constraints.add_foreign_key("x", "k", "x", "k",
                                on_delete=OnDelete.CASCADE)
    with pytest.raises(PlanningError):
        bulk_delete_with_integrity(db, constraints, "x", "k", [1])

"""Unit tests for the catalog and the Database facade."""

import pytest

from repro import Attribute, Database, TableSchema
from repro.btree.maintenance import validate_tree
from repro.catalog.catalog import IndexState
from repro.errors import (
    CatalogError,
    IndexOfflineError,
    SchemaError,
    UniqueViolationError,
)
from tests.conftest import SCHEMA, populate


def test_create_table_and_insert(db):
    db.create_table(SCHEMA)
    rid = db.insert("R", (1, 2, "x"))
    assert db.read("R", rid) == (1, 2, "x")


def test_duplicate_table_rejected(db):
    db.create_table(SCHEMA)
    with pytest.raises(CatalogError):
        db.create_table(SCHEMA)


def test_unknown_table_rejected(db):
    with pytest.raises(CatalogError):
        db.table("nope")


def test_insert_maintains_all_indexes(db):
    values = populate(db, n=100)
    table = db.table("R")
    rid = db.insert("R", (999999, 888888, "n"))
    assert table.index("I_R_A").tree.contains(999999, rid.pack())
    assert table.index("I_R_B").tree.contains(888888, rid.pack())


def test_unique_violation_blocks_whole_insert(db):
    values = populate(db, n=50)
    table = db.table("R")
    count_before = table.record_count
    b_entries = table.index("I_R_B").tree.entry_count
    with pytest.raises(UniqueViolationError):
        db.insert("R", (values["A"][0], 777777, "dup"))
    assert table.record_count == count_before
    assert table.index("I_R_B").tree.entry_count == b_entries


def test_delete_record_removes_from_everything(db):
    values = populate(db, n=60)
    table = db.table("R")
    rid, row = next(db.scan("R"))
    db.delete_record("R", rid)
    assert not table.heap.exists(rid)
    assert not table.index("I_R_A").tree.contains(row[0], rid.pack())
    assert not table.index("I_R_B").tree.contains(row[1], rid.pack())
    validate_tree(table.index("I_R_A").tree)


def test_create_index_backfills_existing_rows(db):
    populate(db, n=80, indexes=())
    index = db.create_index("R", "B")
    assert index.tree.entry_count == 80
    validate_tree(index.tree)


def test_create_index_insert_method_equivalent(db):
    populate(db, n=80, indexes=())
    bulk = db.create_index("R", "A", name="bulk_ix", build_method="bulk")
    ins = db.create_index("R", "B", name="ins_ix", build_method="insert")
    assert ins.tree.entry_count == bulk.tree.entry_count == 80
    validate_tree(ins.tree)


def test_create_index_bad_method(db):
    populate(db, n=10, indexes=())
    with pytest.raises(CatalogError):
        db.create_index("R", "A", build_method="magic")


def test_index_on_char_column_rejected(db):
    populate(db, n=10, indexes=())
    with pytest.raises(SchemaError):
        db.create_index("R", "PAD")


def test_drop_index(db):
    populate(db, n=30)
    db.drop_index("R", "I_R_B")
    with pytest.raises(CatalogError):
        db.table("R").index("I_R_B")


def test_drop_table_frees_pages(db):
    populate(db, n=50)
    pages_before = db.disk.num_pages
    db.drop_table("R")
    assert db.disk.num_pages < pages_before
    with pytest.raises(CatalogError):
        db.table("R")


def test_load_table_requires_no_indexes(db):
    populate(db, n=10)
    with pytest.raises(CatalogError):
        db.load_table("R", [(1, 2, "x")])


def test_two_clustered_indexes_rejected(db):
    populate(db, n=20, indexes=())
    db.create_index("R", "A", clustered=True)
    with pytest.raises(CatalogError):
        db.create_index("R", "B", clustered=True)


def test_offline_index_blocks_dml(db):
    populate(db, n=20)
    table = db.table("R")
    table.index("I_R_B").set_offline()
    assert table.index("I_R_B").state is IndexState.OFFLINE
    with pytest.raises(IndexOfflineError):
        db.insert("R", (123456, 654321, "x"))
    table.index("I_R_B").set_online()
    db.insert("R", (123456, 654321, "x"))


def test_scan_yields_decoded_rows(db):
    values = populate(db, n=25)
    scanned = {v[0] for _, v in db.scan("R")}
    assert scanned == set(values["A"])


def test_indexes_on_column(db):
    populate(db, n=10)
    table = db.table("R")
    assert [ix.name for ix in table.indexes_on("A")] == ["I_R_A"]
    assert table.indexes_on("PAD") == []


def test_io_report_mentions_stats(db):
    populate(db, n=10)
    report = db.io_report()
    assert "buffer hit ratio" in report
    assert "sim time" in report


def test_vacuum_reclaims_after_bulk_delete(db):
    from repro import bulk_delete

    values = populate(db, n=400)
    bulk_delete(
        db, "R", "A", values["A"][:300],
        options=__import__("repro").BulkDeleteOptions(
            reclaim_heap_pages=False
        ),
    )
    table = db.table("R")
    pages_before = table.heap.page_count
    leaves_before = table.index("I_R_A").tree.leaf_count()
    report = db.vacuum("R")
    assert report["heap_pages_freed"] > 0
    assert report["leaves_merged"] > 0
    assert table.heap.page_count < pages_before
    assert table.index("I_R_A").tree.leaf_count() < leaves_before
    from repro.btree.maintenance import validate_tree

    for ix in table.indexes.values():
        validate_tree(ix.tree)
    # Data intact.
    assert {v[0] for _, v in db.scan("R")} == set(values["A"][300:])


def test_vacuum_compacts_tombstoned_heap_pages(db):
    values = populate(db, n=60, indexes=())
    table = db.table("R")
    victims = [rid for rid, _ in table.heap.scan()][::2]
    for rid in victims:
        table.heap.delete(rid)
    report = db.vacuum("R")
    assert report["heap_pages_compacted"] > 0
    assert table.record_count == 30


def test_vacuum_on_clean_table_is_noop(db):
    populate(db, n=50)
    report = db.vacuum("R")
    assert report["heap_pages_freed"] == 0
    assert report["leaves_merged"] >= 0

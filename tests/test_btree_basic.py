"""Unit tests for B-link tree search/insert/delete."""

import random

import pytest

from repro.btree.maintenance import validate_tree
from repro.btree.node import MAX_KEY, MIN_KEY
from repro.btree.tree import BLinkTree
from repro.errors import IndexError_, UniqueViolationError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def tree():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=64)
    # Tiny fan-outs force multi-level trees with few keys.
    return BLinkTree(pool, max_leaf_entries=4, max_inner_entries=4)


def fill(tree, keys):
    for key in keys:
        tree.insert(key, key * 10)


def test_empty_tree_searches(tree):
    assert tree.search(1) == []
    assert tree.search_one(1) is None
    assert not tree.contains(1)
    assert tree.entry_count == 0
    assert tree.height == 1


def test_insert_and_search(tree):
    fill(tree, [5, 1, 9, 3])
    assert tree.search_one(3) == 30
    assert tree.search(9) == [90]
    assert tree.contains(5)
    assert not tree.contains(4)
    validate_tree(tree)


def test_split_grows_height(tree):
    fill(tree, range(20))
    assert tree.height >= 3
    for key in range(20):
        assert tree.search_one(key) == key * 10
    validate_tree(tree)


def test_random_inserts_stay_sorted(tree):
    keys = random.Random(3).sample(range(1000), 200)
    fill(tree, keys)
    assert [k for k, _ in tree.items()] == sorted(keys)
    validate_tree(tree)


def test_delete_leaf_entry(tree):
    fill(tree, range(10))
    assert tree.delete(4)
    assert not tree.contains(4)
    assert tree.entry_count == 9
    validate_tree(tree)


def test_delete_missing_returns_false(tree):
    fill(tree, [1, 2, 3])
    assert not tree.delete(99)
    assert tree.entry_count == 3


def test_delete_with_value_match(tree):
    tree.insert(7, 100)
    tree.insert(7, 200)  # duplicate key, different value
    assert not tree.delete(7, 999)
    assert tree.delete(7, 200)
    assert tree.search(7) == [100]
    validate_tree(tree)


def test_duplicates_across_leaves(tree):
    for i in range(12):
        tree.insert(50, 1000 + i)
    assert sorted(tree.search(50)) == [1000 + i for i in range(12)]
    for i in range(12):
        assert tree.delete(50, 1000 + i)
    assert tree.search(50) == []


def test_delete_everything_collapses_to_empty(tree):
    keys = list(range(40))
    fill(tree, keys)
    random.Random(1).shuffle(keys)
    for key in keys:
        assert tree.delete(key)
    assert tree.entry_count == 0
    assert list(tree.items()) == []
    validate_tree(tree)


def test_free_at_empty_reclaims_pages(tree):
    fill(tree, range(40))
    pages_full = tree.node_count()
    for key in range(40):
        tree.delete(key)
    assert tree.node_count() < pages_full
    assert tree.node_count() == 1  # a single empty leaf remains
    validate_tree(tree)


def test_root_collapse_reduces_height(tree):
    fill(tree, range(40))
    height_full = tree.height
    for key in range(39):
        tree.delete(key)
    assert tree.height < height_full
    assert tree.search_one(39) == 390
    validate_tree(tree)


def test_unique_tree_rejects_duplicates():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=32)
    tree = BLinkTree(pool, unique=True, max_leaf_entries=4)
    tree.insert(1, 10)
    with pytest.raises(UniqueViolationError):
        tree.insert(1, 20)
    assert tree.entry_count == 1


def test_range_scan(tree):
    fill(tree, range(0, 100, 3))
    result = list(tree.range_scan(10, 40))
    assert result == [(k, k * 10) for k in range(12, 41, 3)]


def test_range_scan_open_ended(tree):
    fill(tree, [5, 10, 15])
    assert list(tree.range_scan()) == [(5, 50), (10, 100), (15, 150)]
    assert list(tree.range_scan(lo=11)) == [(15, 150)]
    assert list(tree.range_scan(hi=9)) == [(5, 50)]


def test_extreme_keys(tree):
    tree.insert(MIN_KEY, 1)
    tree.insert(MAX_KEY, 2)
    tree.insert(0, 3)
    assert tree.search_one(MIN_KEY) == 1
    assert tree.search_one(MAX_KEY) == 2
    validate_tree(tree)


def test_interleaved_insert_delete(tree):
    rng = random.Random(9)
    model = {}
    for step in range(400):
        key = rng.randrange(60)
        if key in model and rng.random() < 0.5:
            assert tree.delete(key, model.pop(key))
        else:
            value = step
            tree.insert(key, value)
            if key in model:
                tree.delete(key, model[key])
            model[key] = value
    assert sorted((k, v) for k, v in tree.items()) == sorted(model.items())
    validate_tree(tree)


def test_capacity_clamped_to_page(tree):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=8)
    big = BLinkTree(pool, max_leaf_entries=10**6)
    assert big.leaf_capacity <= (512 - 32) // 16


def test_capacity_minimum_enforced():
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_pages=8)
    with pytest.raises(IndexError_):
        BLinkTree(pool, max_leaf_entries=2)


def test_drop_frees_all_nodes(tree):
    fill(tree, range(30))
    pages = tree.node_count()
    assert pages > 1
    tree.drop()
    assert tree.height == 0

"""Unit tests for the bulk-delete planner."""

import pytest

from repro import Database
from repro.core.planner import (
    choose_plan,
    estimate_horizontal_ms,
    estimate_vertical_ms,
    rid_hash_fits,
)
from repro.core.plans import TABLE_TARGET, BdMethod, BdPredicate
from repro.errors import PlanningError
from tests.conftest import populate


def test_plan_for_unknown_column_rejected(db):
    populate(db, n=50)
    with pytest.raises(PlanningError):
        choose_plan(db, "R", "NOPE", 10)


def test_small_delete_chooses_horizontal(db):
    populate(db, n=500)
    plan = choose_plan(db, "R", "A", 1)
    assert plan.table_step().method is BdMethod.NESTED_LOOPS


def test_large_delete_chooses_vertical(db):
    populate(db, n=500)
    plan = choose_plan(db, "R", "A", 100)
    assert plan.table_step().method is not BdMethod.NESTED_LOOPS
    assert plan.driving_index == "I_R_A"


def test_crossover_is_monotone(db):
    """There is one horizontal->vertical switch point as n grows."""
    populate(db, n=500)
    kinds = [
        choose_plan(db, "R", "A", n).table_step().method
        is BdMethod.NESTED_LOOPS
        for n in [1, 2, 5, 10, 25, 50, 100, 200, 400]
    ]
    # True...True False...False (no flapping back).
    assert kinds == sorted(kinds, reverse=True)
    assert kinds[0] is True
    assert kinds[-1] is False


def test_force_vertical_overrides_crossover(db):
    populate(db, n=500)
    plan = choose_plan(db, "R", "A", 1, force_vertical=True)
    assert plan.table_step().method is not BdMethod.NESTED_LOOPS


def test_driving_index_first_then_table(db):
    populate(db, n=300)
    plan = choose_plan(db, "R", "A", 100, force_vertical=True)
    targets = [step.target for step in plan.steps]
    assert targets[0] == "I_R_A"
    assert targets.index(TABLE_TARGET) < targets.index("I_R_B")


def test_unique_index_scheduled_before_table(db):
    populate(db, n=300, indexes=("B",), unique_a=False)
    db.create_index("R", "A", unique=True, name="uniq_a")
    # Delete on B: A's unique index must be processed before the table.
    plan = choose_plan(db, "R", "B", 100, force_vertical=True)
    targets = [step.target for step in plan.steps]
    assert targets.index("uniq_a") < targets.index(TABLE_TARGET)
    step = next(s for s in plan.steps if s.target == "uniq_a")
    assert step.method is BdMethod.HASH
    assert step.predicate is BdPredicate.RID


def test_clustered_driving_index_skips_rid_sort(db):
    populate(db, n=300, indexes=("A", "B"), clustered_on="A")
    plan = choose_plan(db, "R", "A", 60, force_vertical=True)
    assert plan.sort_rid_list is False
    assert any("clustered" in note for note in plan.notes)


def test_unclustered_driving_index_sorts_rids(db):
    populate(db, n=300)
    plan = choose_plan(db, "R", "A", 60, force_vertical=True)
    assert plan.sort_rid_list is True


def test_no_index_on_column_plans_scan(db):
    populate(db, n=300, indexes=("A",))
    plan = choose_plan(db, "R", "B", 60, force_vertical=True)
    assert plan.driving_index is None
    assert plan.sort_rid_list is False


def test_hash_falls_back_to_partitioned_when_too_big(db):
    populate(db, n=300)
    assert not rid_hash_fits(db, 10**9)
    plan = choose_plan(
        db, "R", "A", 10**9, prefer_method=BdMethod.HASH,
        force_vertical=True,
    )
    index_methods = {
        s.target: s.method for s in plan.steps if not s.is_table
    }
    assert index_methods["I_R_B"] is BdMethod.PARTITIONED_HASH


def test_hash_method_when_it_fits(db):
    populate(db, n=300)
    plan = choose_plan(
        db, "R", "A", 50, prefer_method=BdMethod.HASH, force_vertical=True
    )
    step = next(s for s in plan.steps if s.target == "I_R_B")
    assert step.method is BdMethod.HASH
    assert step.predicate is BdPredicate.RID


def test_estimates_scale_with_workload(db):
    populate(db, n=400)
    table = db.table("R")
    small = estimate_horizontal_ms(db, table, 10)
    large = estimate_horizontal_ms(db, table, 100)
    assert large.io_ms > small.io_ms * 5
    vert_small = estimate_vertical_ms(db, table, 10)
    vert_large = estimate_vertical_ms(db, table, 100)
    # Vertical cost is dominated by sweeps: nearly flat in n.
    assert vert_large.io_ms < vert_small.io_ms * 3


def test_explain_mentions_structure_and_order(db):
    populate(db, n=300)
    plan = choose_plan(db, "R", "A", 100, force_vertical=True)
    text = plan.explain()
    assert "I_R_A" in text
    assert "bd[" in text
    assert "BULK DELETE FROM R" in text

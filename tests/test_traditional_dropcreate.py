"""Tests for the horizontal baselines: traditional and drop & create."""

import random

import pytest

from repro import Database
from repro.btree.maintenance import validate_tree
from repro.core.drop_create import drop_create_delete
from repro.core.traditional import traditional_delete
from repro.errors import PlanningError
from tests.conftest import populate


def fresh(n=300, memory_bytes=32 * 1024, **kw):
    db = Database(page_size=512, memory_bytes=memory_bytes)
    values = populate(db, n=n, **kw)
    db.flush()
    db.clock.reset()
    return db, values


def fresh_tight(n=600, **kw):
    """A workload that does NOT fit in the buffer pool (6 frames), so
    access patterns actually hit the simulated disk."""
    return fresh(n=n, memory_bytes=6 * 512, **kw)


def test_traditional_deletes_correctly():
    db, values = fresh()
    keys = values["A"][:90]
    result = traditional_delete(db, "R", "A", keys)
    assert result.records_deleted == 90
    survivors = {v[0] for _, v in db.scan("R")}
    assert survivors == set(values["A"]) - set(keys)
    for index in db.table("R").indexes.values():
        validate_tree(index.tree)
        assert index.tree.entry_count == 210


def test_traditional_requires_index():
    db = Database(page_size=512, memory_bytes=32 * 1024)
    populate(db, n=50, indexes=("A",))
    with pytest.raises(PlanningError):
        traditional_delete(db, "R", "B", [1, 2, 3])


def test_traditional_counts_missing_keys():
    db, values = fresh()
    result = traditional_delete(
        db, "R", "A", values["A"][:10] + [10**9, 10**9 + 1]
    )
    assert result.records_deleted == 10
    assert result.keys_not_found == 2


def test_sorted_faster_than_unsorted():
    """The paper's core baseline distinction, in simulated time."""
    # One index, as in the paper's Experiment 1: the sorted list turns
    # the driving index's leaf accesses into a single sequential pass.
    db_s, values = fresh_tight(indexes=("A",))
    # A *random* sample in *random* order, like the paper's table D —
    # a prefix of the load order would be physically sequential.
    keys = random.Random(11).sample(values["A"], 300)
    sorted_run = traditional_delete(db_s, "R", "A", keys, presort=True)
    db_u, _ = fresh_tight(indexes=("A",))
    unsorted_run = traditional_delete(db_u, "R", "A", keys, presort=False)
    assert unsorted_run.records_deleted == sorted_run.records_deleted
    assert unsorted_run.elapsed_ms > sorted_run.elapsed_ms


def test_traditional_random_io_grows_with_deletes():
    db, values = fresh_tight()
    r_small = traditional_delete(
        db, "R", "A", random.Random(5).sample(values["A"], 30)
    )
    db2, values2 = fresh_tight()
    r_large = traditional_delete(
        db2, "R", "A", random.Random(5).sample(values2["A"], 300)
    )
    assert r_large.io.random_ios > r_small.io.random_ios * 3


def test_drop_create_correct_state():
    db, values = fresh()
    keys = values["A"][:100]
    result = drop_create_delete(db, "R", "A", keys)
    assert result.records_deleted == 100
    assert result.indexes_recreated == ["I_R_B"]
    table = db.table("R")
    b_tree = table.index("I_R_B").tree
    validate_tree(b_tree)
    assert b_tree.entry_count == 200
    survivors_b = {v[1] for _, v in db.scan("R")}
    assert {k for k, _ in b_tree.items()} == survivors_b


def test_drop_create_timing_split():
    db, values = fresh()
    result = drop_create_delete(db, "R", "A", values["A"][:100])
    assert result.delete_ms > 0
    assert result.recreate_ms > 0
    assert result.elapsed_ms >= result.delete_ms + result.recreate_ms - 1e-6


def test_drop_create_bulk_build_faster_than_insert_build():
    db_a, values = fresh_tight()
    keys = values["A"][:100]
    insert_run = drop_create_delete(db_a, "R", "A", keys,
                                    create_method="insert")
    db_b, _ = fresh_tight()
    bulk_run = drop_create_delete(db_b, "R", "A", keys,
                                  create_method="bulk")
    assert bulk_run.recreate_ms < insert_run.recreate_ms


def test_drop_create_requires_driving_index():
    db = Database(page_size=512, memory_bytes=32 * 1024)
    populate(db, n=50, indexes=("A",))
    with pytest.raises(PlanningError):
        drop_create_delete(db, "R", "B", [1])


def test_drop_create_preserves_unique_flag():
    db, values = fresh()
    db.create_index("R", "B", name="uniq_b2", unique=False)
    drop_create_delete(db, "R", "A", values["A"][:50])
    table = db.table("R")
    assert "uniq_b2" in table.indexes
    assert table.index("I_R_A").unique  # untouched driving index

"""The heap engine adapter adds nothing: bit-identity property tests.

:class:`repro.storage.engine.HeapBTreeEngine` is a delegation-only
adapter — driving a table through the engine seam must be
*bit-identical* to calling ``Database``/``bulk_delete`` directly.
Hypothesis builds two identical databases, drives one directly and one
through the seam, and compares everything observable: the chosen plan,
the simulated clock, every disk counter, the result rollups, and the
durable page bytes themselves.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Attribute, Database, TableSchema, bulk_delete
from repro.core.planner import choose_plan
from repro.errors import CatalogError
from repro.storage.engine import (
    ENGINE_NAMES,
    HeapBTreeEngine,
    engine_for,
    engine_name_of,
)


def build_db(rows):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    ))
    db.load_table("t", rows)
    db.create_index("t", "k", unique=True)
    return db


def durable_image(db):
    """Every live durable page's bytes, after a full flush."""
    db.flush()
    disk = db.disk
    return {
        page_id: disk._pages[page_id]
        for page_id in disk._pages
        if disk.page_exists(page_id)
    }


row_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=400),
    st.integers(min_value=0, max_value=50),
    min_size=1,
    max_size=100,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=row_strategy,
    victims=st.lists(
        st.integers(min_value=0, max_value=500), max_size=50
    ),
    extra=st.tuples(
        st.integers(min_value=1000, max_value=2000),
        st.integers(min_value=0, max_value=50),
    ),
)
def test_heap_engine_is_bit_identical(rows, victims, extra):
    """Insert + plan + bulk delete via the seam == calling directly."""
    items = sorted(rows.items())

    direct = build_db(items)
    seamed = build_db(items)
    engine = engine_for(seamed, "t")
    assert isinstance(engine, HeapBTreeEngine)

    # Insert: same RID comes back, byte-identical state.
    rid_direct = direct.insert("t", extra)
    rid_seamed = engine.insert(extra)
    assert rid_direct == rid_seamed

    # Planning: the seam changes nothing the planner sees.
    plan_direct = choose_plan(direct, "t", "k", len(set(victims)))
    plan_seamed = choose_plan(seamed, "t", "k", len(set(victims)))
    assert plan_direct.explain() == plan_seamed.explain()

    # Execution: same rollups, same simulated clock, same counters.
    result_direct = bulk_delete(direct, "t", "k", victims)
    result_seamed = engine.bulk_delete("k", victims)
    assert result_direct.records_deleted == result_seamed.records_deleted
    assert result_direct.elapsed_ms == result_seamed.elapsed_ms  # lint: allow(float-cost-eq)
    assert direct.clock.now_ms == seamed.clock.now_ms  # lint: allow(float-cost-eq)
    for name in vars(direct.disk.stats):
        assert getattr(direct.disk.stats, name) == getattr(
            seamed.disk.stats, name
        ), name

    # Visibility: identical scans through both surfaces.
    assert list(direct.scan("t")) == list(engine.scan())

    # Durability: the page images are the same bytes.
    assert durable_image(direct) == durable_image(seamed)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=row_strategy, probe=st.integers(min_value=0, max_value=500))
def test_heap_engine_point_lookup_matches_scan(rows, probe):
    db = build_db(sorted(rows.items()))
    engine = engine_for(db, "t")
    expected = next(
        (row for _, row in db.scan("t") if row[0] == probe), None
    )
    assert engine.point_lookup("k", probe) == expected


def test_heap_engine_statistics_are_pure_sizes():
    db = build_db([(k, k % 7) for k in range(100)])
    stats_before = db.disk.stats.snapshot()
    stats = engine_for(db, "t").statistics()
    assert stats.engine == "heap"
    assert stats.table_name == "t"
    assert stats.logical_records == 100
    assert stats.data_pages > 0
    assert stats.structures == 1
    # Collecting statistics is arithmetic over the catalog: no I/O.
    assert db.disk.stats.reads == stats_before.reads
    assert db.disk.stats.writes == stats_before.writes


def test_engine_registry_is_closed():
    db = build_db([(1, 1)])
    table = db.table("t")
    assert engine_name_of(table) == "heap"
    assert engine_name_of(table) in ENGINE_NAMES
    table.engine = "rope-and-pulley"
    with pytest.raises(CatalogError):
        engine_for(db, "t")


def test_point_lookup_requires_an_index():
    db = Database(page_size=512, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "t", [Attribute.int_("k"), Attribute.int_("v")]
    ))
    db.load_table("t", [(1, 2)])
    with pytest.raises(CatalogError):
        engine_for(db, "t").point_lookup("k", 1)

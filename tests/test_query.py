"""Unit tests for the query substrate: spill, sort, hash, partition."""

import pytest

from repro.errors import StorageError
from repro.query.hashtable import (
    BoundedHashMap,
    BoundedHashSet,
    HashTableOverflowError,
)
from repro.query.partition import choose_boundaries, range_partition
from repro.query.sort import ExternalSorter, sort_tuples
from repro.query.spill import SpillFile
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(page_size=512)


# ----------------------------------------------------------------------
# spill files
# ----------------------------------------------------------------------
def test_spill_roundtrip(disk):
    spill = SpillFile(disk, width=2)
    items = [(i, i * i) for i in range(100)]
    spill.extend(items)
    assert list(spill) == items
    assert spill.tuple_count == 100


def test_spill_multiple_pages(disk):
    spill = SpillFile(disk, width=1)
    spill.extend([(i,) for i in range(500)])
    spill.seal()
    assert spill.page_count > 1
    assert list(spill) == [(i,) for i in range(500)]


def test_spill_rejects_wrong_arity(disk):
    spill = SpillFile(disk, width=2)
    with pytest.raises(StorageError):
        spill.append((1,))


def test_spill_rejects_append_after_seal(disk):
    spill = SpillFile(disk, width=1)
    spill.append((1,))
    spill.seal()
    with pytest.raises(StorageError):
        spill.append((2,))


def test_spill_from_pages_reopens(disk):
    spill = SpillFile(disk, width=2)
    spill.extend([(1, 2), (3, 4)])
    spill.seal()
    reopened = SpillFile.from_pages(disk, 2, spill.page_ids, 2)
    assert list(reopened) == [(1, 2), (3, 4)]


def test_spill_free_releases_pages(disk):
    spill = SpillFile(disk, width=1)
    spill.extend([(i,) for i in range(200)])
    spill.seal()
    pages = list(spill.page_ids)
    spill.free()
    for pid in pages:
        assert not disk.page_exists(pid)


def test_spill_writes_are_sequential(disk):
    spill = SpillFile(disk, width=1)
    spill.extend([(i,) for i in range(500)])
    spill.seal()
    assert disk.stats.random_writes <= 1


# ----------------------------------------------------------------------
# external sort
# ----------------------------------------------------------------------
def test_sort_in_memory(disk):
    sorter = ExternalSorter(disk, memory_bytes=1 << 20, width=1)
    out = list(sorter.sort([(5,), (1,), (3,)]))
    assert out == [(1,), (3,), (5,)]
    assert not sorter.stats.spilled
    assert disk.stats.reads == 0  # pure CPU


def test_sort_spills_when_over_budget(disk):
    sorter = ExternalSorter(disk, memory_bytes=1024, width=1)
    items = [(i,) for i in range(2000, 0, -1)]
    out = list(sorter.sort(items))
    assert out == sorted(items)
    assert sorter.stats.spilled
    assert sorter.stats.runs > 1
    assert disk.stats.reads > 0


def test_sort_with_key_function(disk):
    sorter = ExternalSorter(disk, memory_bytes=1 << 20, width=2,
                            key=lambda t: t[1])
    out = list(sorter.sort([(1, 9), (2, 3), (3, 6)]))
    assert out == [(2, 3), (3, 6), (1, 9)]


def test_sort_spilled_with_duplicates(disk):
    sorter = ExternalSorter(disk, memory_bytes=1024, width=1)
    items = [(i % 7,) for i in range(1500)]
    out = list(sorter.sort(items))
    assert out == sorted(items)


def test_sort_empty(disk):
    assert sort_tuples(disk, [], 1 << 20, width=1) == []


def test_sort_budget_validation(disk):
    with pytest.raises(ValueError):
        ExternalSorter(disk, memory_bytes=10, width=1)


def test_sort_run_pages_freed_after_merge(disk):
    sorter = ExternalSorter(disk, memory_bytes=1024, width=1)
    list(sorter.sort([(i,) for i in range(2000)]))
    assert disk.num_pages == 0  # all runs released


# ----------------------------------------------------------------------
# bounded hash structures
# ----------------------------------------------------------------------
def test_hash_set_basics():
    s = BoundedHashSet(1 << 20)
    s.build(range(100))
    assert 50 in s
    assert 1000 not in s
    assert len(s) == 100
    s.discard(50)
    assert 50 not in s


def test_hash_set_overflow():
    s = BoundedHashSet(16 * 10)  # room for 10 entries
    with pytest.raises(HashTableOverflowError):
        s.build(range(100))


def test_hash_set_duplicate_add_is_free():
    s = BoundedHashSet(16)  # capacity 1
    s.add(5)
    s.add(5)  # no growth, no overflow
    assert len(s) == 1


def test_hash_map_basics():
    m = BoundedHashMap(1 << 20)
    m.add(1, (10,))
    m.add(1, (11,))
    m.add(2, (20,))
    assert m.get(1) == [(10,), (11,)]
    assert m.pop_all(1) == [(10,), (11,)]
    assert 1 not in m
    assert len(m) == 1


def test_hash_map_overflow():
    m = BoundedHashMap(24 * 5)
    for i in range(5):
        m.add(i, (i,))
    with pytest.raises(HashTableOverflowError):
        m.add(99, (99,))


# ----------------------------------------------------------------------
# range partitioning
# ----------------------------------------------------------------------
def test_choose_boundaries_splits_evenly():
    bounds = choose_boundaries(list(range(100)), 4)
    assert len(bounds) == 3
    assert bounds == sorted(bounds)


def test_choose_boundaries_degenerate():
    assert choose_boundaries([], 4) == []
    assert choose_boundaries([1, 2, 3], 1) == []


def test_range_partition_covers_everything(disk):
    items = [(k, k * 7) for k in range(200)]
    parts = range_partition(disk, items, key_index=0, width=2,
                            max_tuples_per_partition=50)
    assert len(parts) >= 4
    collected = []
    for part in parts:
        rows = list(part)
        assert len(rows) <= 80  # near the target size
        for key, payload in rows:
            assert part.lo <= key <= part.hi
        collected.extend(rows)
    assert sorted(collected) == items


def test_range_partition_ranges_disjoint(disk):
    items = [(k, 0) for k in range(100)]
    parts = range_partition(disk, items, 0, 2, 30)
    for a, b in zip(parts, parts[1:]):
        assert a.hi <= b.lo or a.hi < b.lo + 1


def test_range_partition_empty(disk):
    assert range_partition(disk, [], 0, 2, 10) == []


def test_range_partition_single_fits(disk):
    items = [(k, 0) for k in range(10)]
    parts = range_partition(disk, items, 0, 2, 100)
    assert len(parts) == 1
    assert list(parts[0]) == items


def test_range_partition_heavy_duplicates(disk):
    items = [(5, i) for i in range(100)]
    parts = range_partition(disk, items, 0, 2, 10)
    # All duplicates share one key: they cannot be split by range.
    assert sum(p.tuple_count for p in parts) == 100

"""Gate tests for the simulation-invariant code lint.

Synthetic fixtures exercise each rule (positive and negative), the
pragma suppression syntax is verified, and — the actual gate — the
real ``src/repro`` tree must lint clean.
"""

import textwrap

from repro.analysis.code_lint import (
    CODE_RULES,
    default_root,
    lint_source,
    lint_tree,
)
from repro.analysis.findings import Severity


def lint(snippet: str, **kw):
    return lint_source(textwrap.dedent(snippet), filename="fixture.py",
                       **kw)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# code/wall-clock
# ---------------------------------------------------------------------------
def test_wall_clock_time_module():
    findings = lint(
        """
        import time
        start = time.time()
        t = time.perf_counter()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock", "code/wall-clock"]
    assert findings[0].line == 3


def test_wall_clock_datetime():
    findings = lint(
        """
        import datetime
        from datetime import datetime as dt
        a = datetime.datetime.now()
        b = dt.now()
        c = datetime.date.today()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"] * 3


def test_wall_clock_from_import_alias():
    findings = lint(
        """
        from time import perf_counter as pc
        x = pc()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]


def test_sim_clock_is_fine():
    assert lint(
        """
        def cost(db):
            return db.clock.now_ms
        """
    ) == []


# ---------------------------------------------------------------------------
# code/unseeded-random
# ---------------------------------------------------------------------------
def test_module_level_random_calls():
    findings = lint(
        """
        import random
        x = random.randint(0, 9)
        random.shuffle([1, 2])
        random.seed(42)
        """
    )
    assert rule_ids(findings) == ["code/unseeded-random"] * 3


def test_unseeded_random_constructor():
    findings = lint(
        """
        import random
        rng = random.Random()
        """
    )
    assert rule_ids(findings) == ["code/unseeded-random"]


def test_seeded_random_is_fine():
    assert lint(
        """
        import random
        rng = random.Random(7)
        y = rng.randint(0, 9)
        """
    ) == []


def test_from_import_random_function():
    findings = lint(
        """
        from random import choice
        x = choice([1, 2])
        """
    )
    assert rule_ids(findings) == ["code/unseeded-random"]


# ---------------------------------------------------------------------------
# code/raw-page-io
# ---------------------------------------------------------------------------
def test_raw_page_io_outside_storage():
    findings = lint(
        """
        def spill(disk, page_id, data):
            disk.write_page(page_id, data)
            return disk.read_page(page_id)
        """
    )
    assert rule_ids(findings) == ["code/raw-page-io"] * 2


def test_raw_page_io_allowed_in_storage():
    assert lint(
        """
        def flush(disk, page_id, data):
            disk.write_page(page_id, data)
        """,
        in_storage=True,
    ) == []


def test_buffer_pool_pin_is_fine():
    assert lint(
        """
        def read(pool, page_id):
            with pool.pin(page_id) as pinned:
                return bytes(pinned.data)
        """
    ) == []


# ---------------------------------------------------------------------------
# code/float-cost-eq
# ---------------------------------------------------------------------------
def test_float_cost_equality_flagged():
    findings = lint(
        """
        def pick(a, b):
            if a.io_ms == b.io_ms:
                return a
            if a.estimated_cost != b.estimated_cost:
                return b
        """
    )
    assert rule_ids(findings) == ["code/float-cost-eq"] * 2


def test_float_cost_ordering_is_fine():
    assert lint(
        """
        def pick(a, b):
            return a if a.io_ms < b.io_ms else b
        """
    ) == []


def test_non_cost_equality_is_fine():
    assert lint(
        """
        def same(a, b):
            return a.name == b.name and a.count == b.count
        """
    ) == []


# ---------------------------------------------------------------------------
# code/adhoc-metrics
# ---------------------------------------------------------------------------
def test_foreign_stats_mutation_flagged():
    findings = lint(
        """
        def sweep(db):
            db.disk.stats.reads += 1
            db.disk.stats.io_time_ms = 5.0
        """
    )
    assert rule_ids(findings) == ["code/adhoc-metrics"] * 2


def test_own_stats_mutation_is_fine():
    assert lint(
        """
        class Sorter:
            def run(self):
                self.stats.runs += 1
                self.stats.spilled = True
        """
    ) == []


def test_whole_stats_reset_is_fine():
    # Replacing the stats object is a measurement reset, not emission.
    assert lint(
        """
        def reset(db):
            db.disk.stats = DiskStats()
        """
    ) == []


def test_adhoc_metrics_allowed_in_storage_and_obs():
    snippet = """
    def account(pool):
        pool.stats.hits += 1
    """
    assert rule_ids(lint(snippet)) == ["code/adhoc-metrics"]
    assert lint(snippet, in_storage=True) == []
    assert lint(snippet, in_obs=True) == []


def test_adhoc_metrics_pragma():
    assert lint(
        """
        def patch(db):
            db.disk.stats.reads += 1  # lint: allow(adhoc-metrics)
        """
    ) == []


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------
def test_pragma_suppresses_by_short_name():
    assert lint(
        """
        import time
        t = time.time()  # lint: allow(wall-clock)
        """
    ) == []


def test_pragma_suppresses_by_full_id():
    assert lint(
        """
        import time
        t = time.time()  # lint: allow(code/wall-clock)
        """
    ) == []


def test_pragma_only_covers_named_rules():
    findings = lint(
        """
        import time
        t = time.time()  # lint: allow(raw-page-io)
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]


def test_pragma_only_covers_its_line():
    findings = lint(
        """
        import time
        a = time.time()  # lint: allow(wall-clock)
        b = time.time()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]
    assert findings[0].line == 4


def test_multi_rule_pragma():
    assert lint(
        """
        import time
        def f(disk, pid):
            t = time.time(); disk.read_page(pid)  # lint: allow(wall-clock, raw-page-io)
        """
    ) == []


# ---------------------------------------------------------------------------
# code/crash-outside-faults
# ---------------------------------------------------------------------------
def test_raise_simulated_crash_flagged():
    findings = lint(
        """
        from repro.faults import SimulatedCrash
        def f():
            raise SimulatedCrash("boom")
        """
    )
    assert rule_ids(findings) == ["code/crash-outside-faults"]


def test_raise_simulated_crash_dotted_flagged():
    findings = lint(
        """
        import repro.faults.plan
        def f():
            raise repro.faults.plan.SimulatedCrash("boom")
        """
    )
    assert rule_ids(findings) == ["code/crash-outside-faults"]


def test_bare_reraise_and_other_exceptions_fine():
    assert lint(
        """
        def f():
            try:
                g()
            except ValueError:
                raise
            raise RuntimeError("not a crash")
        """
    ) == []


def test_raise_simulated_crash_allowed_in_faults():
    findings = lint(
        """
        from repro.faults.plan import SimulatedCrash
        def f():
            raise SimulatedCrash("boom")
        """,
        in_faults=True,
    )
    assert findings == []


def test_raise_simulated_crash_pragma():
    assert lint(
        """
        from repro.faults import SimulatedCrash
        def f():
            raise SimulatedCrash("x")  # lint: allow(crash-outside-faults)
        """
    ) == []


# ---------------------------------------------------------------------------
# misc behaviour
# ---------------------------------------------------------------------------
def test_syntax_error_reported_as_finding():
    findings = lint("def broken(:\n")
    assert rule_ids(findings) == ["code/syntax"]
    assert findings[0].severity is Severity.ERROR


def test_every_rule_documented():
    assert set(CODE_RULES) >= {
        "code/wall-clock",
        "code/unseeded-random",
        "code/raw-page-io",
        "code/float-cost-eq",
        "code/adhoc-metrics",
        "code/crash-outside-faults",
    }
    assert all(CODE_RULES.values())


# ---------------------------------------------------------------------------
# the gate: the real tree is clean
# ---------------------------------------------------------------------------
def test_real_repro_tree_is_clean():
    findings = lint_tree(default_root())
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# pragma line-mapping on multi-line statements
# ---------------------------------------------------------------------------
def test_pragma_covers_multiline_statement():
    # The offending inner call sits two lines below the pragma, which
    # is on the statement's opening line; end_lineno maps them.
    findings = lint(
        """
        import time
        start = max(  # lint: allow(wall-clock)
            0.0,
            time.time(),
        )
        """
    )
    assert findings == []


def test_pragma_multiline_attribute_call():
    clean = lint(
        """
        import time
        values = [
            time.perf_counter()  # lint: allow(wall-clock)
        ]
        wrapped = sorted(  # lint: allow(wall-clock)
            [1.0],
            key=lambda _: time.perf_counter(),
        )
        """
    )
    assert clean == []


def test_pragma_without_multiline_fix_would_have_missed():
    # Same fixture, pragma removed: both findings fire, one of them on
    # a *later* line than the statement opener — the case the
    # end_lineno mapping exists for.
    findings = lint(
        """
        import time
        wrapped = sorted(
            [1.0],
            key=lambda _: time.perf_counter(),
        )
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]
    assert findings[0].line == 5


def test_pragma_on_def_line_does_not_blanket_body():
    # Compound statements are excluded: a pragma on the def header must
    # not suppress findings inside the function body.
    findings = lint(
        """
        import time
        def f():  # lint: allow(wall-clock)
            return time.time()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]


def test_pragma_covers_exact_statement_extent_only():
    findings = lint(
        """
        import time
        a = (  # lint: allow(wall-clock)
            time.time()
        )
        b = time.time()
        """
    )
    assert rule_ids(findings) == ["code/wall-clock"]
    assert findings[0].line == 6


# ---------------------------------------------------------------------------
# file-level pragma
# ---------------------------------------------------------------------------
def test_file_pragma_suppresses_named_rule_everywhere():
    findings = lint(
        """
        # lint: allow-file(wall-clock)
        import time
        a = time.time()
        b = time.perf_counter()
        """
    )
    assert findings == []


def test_file_pragma_leaves_other_rules_alone():
    findings = lint(
        """
        # lint: allow-file(wall-clock)
        import time, random
        a = time.time()
        b = random.random()
        """
    )
    assert rule_ids(findings) == ["code/unseeded-random"]


def test_file_pragma_accepts_full_rule_id_and_lists():
    findings = lint(
        """
        # lint: allow-file(code/wall-clock, unseeded-random)
        import time, random
        a = time.time()
        b = random.random()
        """
    )
    assert findings == []

"""Unit tests for heap files."""

import pytest

from repro.errors import StorageError
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


@pytest.fixture
def heap(pool):
    return HeapFile(pool, name="t")


def rec(i, size=40):
    return (b"%06d" % i).ljust(size, b".")


def test_insert_read_roundtrip(heap):
    rid = heap.insert(rec(1))
    assert heap.read(rid) == rec(1)
    assert heap.record_count == 1


def test_append_spans_pages(heap):
    rids = [heap.append(rec(i, size=120)) for i in range(12)]
    assert heap.page_count > 1
    assert heap.record_count == 12
    for i, rid in enumerate(rids):
        assert heap.read(rid) == rec(i, size=120)


def test_scan_in_physical_order(heap):
    rids = [heap.append(rec(i, size=120)) for i in range(10)]
    scanned = list(heap.scan())
    assert [r for r, _ in scanned] == rids
    assert [payload for _, payload in scanned] == [
        rec(i, size=120) for i in range(10)
    ]


def test_delete_keeps_other_rids_stable(heap):
    rids = [heap.append(rec(i)) for i in range(6)]
    heap.delete(rids[2])
    assert heap.record_count == 5
    assert heap.read(rids[3]) == rec(3)
    assert not heap.exists(rids[2])
    assert heap.exists(rids[3])


def test_insert_reuses_freed_space(heap):
    rids = [heap.append(rec(i, size=120)) for i in range(8)]
    pages_before = heap.page_count
    heap.delete(rids[0])
    new_rid = heap.insert(rec(99, size=120))
    assert heap.page_count == pages_before  # no growth
    assert new_rid.page_id == rids[0].page_id  # hole reused


def test_delete_many_sorted_returns_payloads(heap):
    rids = [heap.append(rec(i, size=100)) for i in range(10)]
    victims = sorted([rids[1], rids[4], rids[7]])
    deleted = heap.delete_many_sorted(victims)
    assert [r for r, _ in deleted] == victims
    assert deleted[0][1] == rec(1, size=100)
    assert heap.record_count == 7


def test_delete_many_sorted_pins_each_page_once(heap):
    rids = [heap.append(rec(i, size=100)) for i in range(12)]
    # Measurement reset before the window under test, not emission.
    heap.pool.stats.hits = heap.pool.stats.misses = 0  # lint: allow(adhoc-metrics)
    victims = sorted(rids)
    heap.delete_many_sorted(victims)
    pages = {r.page_id for r in rids}
    assert heap.pool.stats.accesses == len(pages)


def test_delete_many_page_callback_sees_pre_image(heap):
    rids = sorted(heap.append(rec(i, size=100)) for i in range(6))
    seen = []
    heap.delete_many_sorted(rids, on_page_deletes=lambda b: seen.extend(b))
    assert len(seen) == 6
    assert all(payload for _, payload in seen)


def test_reclaim_empty_pages(heap):
    rids = [heap.append(rec(i, size=120)) for i in range(12)]
    first_page = rids[0].page_id
    victims = sorted(r for r in rids if r.page_id == first_page)
    heap.delete_many_sorted(victims)
    freed = heap.reclaim_empty_pages()
    assert freed == 1
    assert first_page not in heap.page_ids


def test_reclaim_keeps_partial_pages(heap):
    rids = [heap.append(rec(i, size=120)) for i in range(12)]
    heap.delete(rids[0])
    assert heap.reclaim_empty_pages() == 0


def test_bad_rid_raises(heap):
    heap.append(rec(0))
    with pytest.raises(StorageError):
        heap.read(RID(999999, 0))
    with pytest.raises(StorageError):
        heap.delete(RID(999999, 0))
    assert not heap.exists(RID(999999, 0))


def test_drop_frees_all_pages(heap):
    for i in range(12):
        heap.append(rec(i, size=120))
    pages = list(heap.page_ids)
    heap.drop()
    assert heap.page_count == 0
    assert heap.record_count == 0
    for pid in pages:
        assert not heap.pool.disk.page_exists(pid)


def test_scan_pages_groups_by_page(heap):
    for i in range(12):
        heap.append(rec(i, size=120))
    total = 0
    for page_id, records in heap.scan_pages():
        assert records, "scan_pages must skip nothing"
        total += len(records)
    assert total == 12


def test_compact_pages_during_bulk_delete(heap):
    rids = sorted(heap.append(rec(i, size=100)) for i in range(8))
    heap.delete_many_sorted(rids[:4], compact_pages=True)
    # Survivors still readable after compaction.
    for rid in rids[4:]:
        assert heap.read(rid) == rec(rids.index(rid), size=100)

"""Tests for the §3 concurrent bulk-delete protocol."""

import pytest

from repro import Database
from repro.btree.maintenance import validate_tree
from repro.errors import (
    IndexOfflineError,
    LockConflictError,
    TransactionError,
    UniqueViolationError,
)
from repro.storage.rid import RID
from repro.txn.coordinator import (
    BulkDeleteCoordinator,
    Phase,
    PropagationMode,
    UpdateRouter,
)
from repro.txn.locks import LockMode
from repro.txn.sidefile import SideFile, SideFileOp
from repro.txn.transactions import TransactionManager
from tests.conftest import populate


def setup(n=300, mode=PropagationMode.SIDE_FILE):
    db = Database(page_size=512, memory_bytes=64 * 1024)
    values = populate(db, n=n)  # unique index on A, plain index on B
    keys = values["A"][:100]
    coord = BulkDeleteCoordinator(db, "R", "A", keys, mode=mode)
    return db, values, keys, coord


# ----------------------------------------------------------------------
# side-file unit behaviour
# ----------------------------------------------------------------------
def test_sidefile_fifo_replay(db):
    populate(db, n=20)
    tree = db.table("R").index("I_R_B").tree
    side = SideFile("I_R_B")
    side.append(SideFileOp.INSERT, 777, 123)
    side.append(SideFileOp.DELETE, 777, 123)
    applied, _ = side.drain(tree)
    assert applied == 2
    assert not tree.contains(777)


def test_sidefile_quiesce_blocks_appends(db):
    populate(db, n=20)
    tree = db.table("R").index("I_R_B").tree
    side = SideFile("x")
    for i in range(5):
        side.append(SideFileOp.INSERT, 1000 + i, i)
    side.drain(tree, quiesce_threshold=100)
    assert side.quiesced
    with pytest.raises(TransactionError):
        side.append(SideFileOp.INSERT, 9, 9)
    side.reset()
    side.append(SideFileOp.INSERT, 9, 9)  # usable again after reset


# ----------------------------------------------------------------------
# the coordinator protocol
# ----------------------------------------------------------------------
def test_full_protocol_side_file_mode():
    db, values, keys, coord = setup()
    report = coord.run_to_completion()
    assert report.records_deleted == 100
    assert coord.phase is Phase.DONE
    table = db.table("R")
    assert table.record_count == 200
    for index in table.indexes.values():
        assert index.is_online
        assert index.tree.entry_count == 200
        validate_tree(index.tree)


def test_table_locked_during_critical_phase():
    db, values, keys, coord = setup()
    coord.begin()
    other = coord.tm.begin()
    with pytest.raises(LockConflictError):
        coord.tm.locks.lock_row(other.txn_id, "R", "k", LockMode.X)
    coord.process_critical_phase()
    coord.commit_critical()
    # After the commit point the table is free again.
    coord.tm.locks.lock_row(other.txn_id, "R", "k", LockMode.X)


def test_indexes_offline_during_critical_phase():
    db, values, keys, coord = setup()
    coord.begin()
    table = db.table("R")
    assert all(not ix.is_online for ix in table.indexes.values())
    coord.process_critical_phase()
    coord.commit_critical()
    # Unique/driving index back on-line; non-unique B still off-line.
    assert table.index("I_R_A").is_online
    assert not table.index("I_R_B").is_online
    assert coord.pending_indexes() == ["I_R_B"]


def test_concurrent_insert_via_side_file():
    db, values, keys, coord = setup()
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    rid = router.insert(txn, "R", (900001, 900002, "new"))
    coord.tm.commit(txn)
    table = db.table("R")
    # Heap and on-line index updated now; B only in the side-file.
    assert table.index("I_R_A").tree.contains(900001)
    assert not table.index("I_R_B").tree.contains(900002)
    assert coord.side_files["I_R_B"].pending == 1
    coord.process_index("I_R_B")
    assert table.index("I_R_B").tree.contains(900002, rid.pack())
    assert table.index("I_R_B").is_online
    validate_tree(table.index("I_R_B").tree)


def test_concurrent_delete_via_side_file():
    db, values, keys, coord = setup()
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    # Delete a survivor record concurrently.
    survivor_rid, survivor = next(iter(db.scan("R")))
    router.delete(txn, "R", survivor_rid)
    coord.tm.commit(txn)
    coord.process_index("I_R_B")
    table = db.table("R")
    assert not table.index("I_R_B").tree.contains(survivor[1])
    assert table.record_count == 199
    validate_tree(table.index("I_R_B").tree)


def test_unique_constraint_enforced_after_commit_point():
    db, values, keys, coord = setup()
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    survivor = values["A"][150]  # not deleted
    with pytest.raises(UniqueViolationError):
        router.insert(txn, "R", (survivor, 12345, "dup"))
    # And re-inserting a *deleted* key succeeds: it is gone from the
    # unique index because unique indexes were processed first.
    router.insert(txn, "R", (keys[0], 54321, "re"))


def test_update_blocked_while_unique_index_offline():
    db, values, keys, coord = setup()
    coord.begin()  # critical phase: everything off-line
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    with pytest.raises((IndexOfflineError, LockConflictError)):
        router.insert(txn, "R", (910000, 910001, "x"))


def test_direct_propagation_applies_immediately():
    db, values, keys, coord = setup(mode=PropagationMode.DIRECT)
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    rid = router.insert(txn, "R", (920001, 920002, "d"))
    coord.tm.commit(txn)
    table = db.table("R")
    # Direct mode: already installed in the off-line index.
    assert table.index("I_R_B").tree.contains(920002, rid.pack())
    assert (920002, rid.pack()) in coord.undeletable["I_R_B"]
    coord.process_index("I_R_B")
    assert table.index("I_R_B").tree.contains(920002, rid.pack())
    assert table.index("I_R_B").tree.entry_count == 201
    validate_tree(table.index("I_R_B").tree)


def test_direct_propagation_protects_reused_rid():
    """The §3.1.2 race: a concurrent insert re-uses a RID from the
    delete set; its index entry must survive the bulk delete."""
    db, values, keys, coord = setup(mode=PropagationMode.DIRECT)
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    # Inserts after the table phase reuse freed slots, i.e. RIDs from
    # the delete set.
    rid = router.insert(txn, "R", (930001, 930002, "r"))
    coord.tm.commit(txn)
    assert rid.pack() in set(coord._rid_list)  # the race actually occurs
    coord.process_index("I_R_B")
    table = db.table("R")
    assert table.index("I_R_B").tree.contains(930002, rid.pack())


def test_abort_rolls_back_direct_propagation():
    db, values, keys, coord = setup(mode=PropagationMode.DIRECT)
    coord.begin()
    coord.process_critical_phase()
    coord.commit_critical()
    router = UpdateRouter(db, coord)
    txn = coord.tm.begin()
    rid = router.insert(txn, "R", (940001, 940002, "a"))
    coord.tm.abort(txn)
    table = db.table("R")
    assert not table.heap.exists(rid)
    assert not table.index("I_R_A").tree.contains(940001)
    assert not table.index("I_R_B").tree.contains(940002)
    assert (940002, rid.pack()) not in coord.undeletable["I_R_B"]
    coord.process_index("I_R_B")
    assert table.index("I_R_B").tree.entry_count == 200


def test_phase_ordering_enforced():
    db, values, keys, coord = setup()
    with pytest.raises(TransactionError):
        coord.process_critical_phase()
    coord.begin()
    with pytest.raises(TransactionError):
        coord.begin()
    with pytest.raises(TransactionError):
        coord.process_index("I_R_B")


def test_report_counts():
    db, values, keys, coord = setup()
    report = coord.run_to_completion()
    structures = [bd.structure for bd in report.critical_steps]
    assert "I_R_A" in structures and "R" in structures
    assert [bd.structure for bd in report.propagation_steps] == ["I_R_B"]
    assert report.side_file_applied == {"I_R_B": 0}

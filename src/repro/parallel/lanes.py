"""Simulated-time lane scheduler for independent plan branches.

Once the RID list is materialized, the vertical plan's remaining ``bd``
applications are independent branches of the DAG: each consumes the
same (pinned) RID list or row projection and touches a structure no
other branch touches.  On the paper's single-disk testbed they run one
after another and total time is the *sum* of the sweeps; on N disks —
or an async submission queue with N outstanding requests — they can
run concurrently and total time is the *makespan*, the maximum over
lanes.

:class:`LaneScheduler` executes such a region.  Tasks still run one at
a time in host order (Python), but each runs at its lane's simulated
offset: before a task starts, the shared :class:`~repro.storage.disk.
SimClock` is repositioned to ``barrier + lane_busy[lane]``; after the
region, it is advanced to ``barrier + makespan``.  Disk *counters* are
never rewound — only the clock is — so every I/O-count reconciliation
invariant of :mod:`repro.obs` survives unchanged, and per-lane
:class:`~repro.storage.disk.DiskStats` roll up exactly to the region's
global delta.

Contention semantics (``contention=``):

* ``dedicated`` — one spindle per lane.  Streams keep their
  sequentiality discounts and ``makespan = max(lane busy times)``.
* ``shared`` — all lanes interleave on one device.  Every access is
  billed random (the head moves away between any two accesses of a
  stream, see :meth:`SimulatedDisk.begin_lane`) *and* the device
  serializes the requests, so ``makespan = sum(task busy times)`` —
  strictly worse than serial execution, which at least kept the
  discounts.

Determinism: tasks are assigned to lanes by greedy LPT over their
estimated costs (deterministic; ties between equally-busy lanes broken
by a ``random.Random(seed)`` stream), and executed in that fixed
order.  The same ``(tasks, lanes, contention, seed)`` always produces
the same interleaving — which is what keeps the crash-point sweep
replayable under parallel execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.trace import maybe_span
from repro.storage.disk import DiskStats, SimulatedDisk

#: One spindle per lane: discounts kept, makespan = max over lanes.
DEDICATED = "dedicated"
#: One device for all lanes: discounts lost, makespan = sum of tasks.
SHARED = "shared"
CONTENTION_MODES = (DEDICATED, SHARED)

#: Tolerance for float time comparisons in reconciliation checks.
_EPS = 1e-6


@dataclass
class LaneTask:
    """One independent branch: a callable plus scheduling metadata."""

    name: str
    run: Callable[[], Any]
    #: Planner-style cost estimate used for LPT lane assignment.  Zero
    #: estimates degrade to plan order (still deterministic).
    estimated_ms: float = 0.0
    #: Structure the task mutates (span ``target``; lane-safety lint).
    target: Optional[str] = None


@dataclass
class TaskReport:
    """Where and when one task ran, and what it did."""

    name: str
    target: Optional[str]
    index: int  # position in the submitted task list
    lane: int
    start_ms: float
    end_ms: float
    io: DiskStats
    result: Any

    @property
    def busy_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class RegionReport:
    """One parallel region's outcome and its per-lane accounting."""

    name: str
    lanes: int
    contention: str
    barrier_ms: float
    makespan_ms: float = 0.0
    #: Sum of task busy times — what serial execution would have taken
    #: (with dedicated billing this matches the serial code path).
    serial_ms: float = 0.0
    lane_busy_ms: Dict[int, float] = field(default_factory=dict)
    lane_io: Dict[int, DiskStats] = field(default_factory=dict)
    #: Global DiskStats delta over the region (equals the lane rollup).
    io: DiskStats = field(default_factory=DiskStats)
    tasks: List[TaskReport] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Serial time over makespan (1.0 for an empty region)."""
        if self.makespan_ms <= 0.0:
            return 1.0
        return self.serial_ms / self.makespan_ms

    def results(self) -> List[Any]:
        """Task results in *submission* order (not execution order)."""
        return [
            t.result for t in sorted(self.tasks, key=lambda t: t.index)
        ]

    def reconciliation_problems(self) -> List[str]:
        """Pinned rollup invariants; empty list when they all hold.

        * the per-lane rollup equals the region's global delta
          (counters exactly, I/O time within float tolerance),
        * every lane's busy time fits inside the makespan (dedicated)
          or their sum is the makespan (shared),
        * the region's serial time is the sum of its tasks'.
        """
        problems: List[str] = []
        rollup = DiskStats.merged(self.lane_io.values())
        for fname in (
            "reads", "writes", "random_reads", "sequential_reads",
            "near_sequential_reads", "random_writes", "sequential_writes",
            "near_sequential_writes", "pages_allocated", "pages_freed",
        ):
            lane_total = getattr(rollup, fname)
            region_total = getattr(self.io, fname)
            if lane_total != region_total:
                problems.append(
                    f"lane rollup {fname}={lane_total} != region "
                    f"{fname}={region_total}"
                )
        if abs(rollup.io_time_ms - self.io.io_time_ms) > _EPS:
            problems.append(
                f"lane rollup io_time_ms={rollup.io_time_ms} != region "
                f"io_time_ms={self.io.io_time_ms}"
            )
        busy_values = list(self.lane_busy_ms.values())
        if self.contention == SHARED and len(self.tasks) > 1:
            if abs(sum(busy_values) - self.makespan_ms) > _EPS:
                problems.append(
                    "shared makespan is not the sum of lane busy times"
                )
        elif busy_values:
            if max(busy_values) > self.makespan_ms + _EPS:
                problems.append("a lane is busy beyond the makespan")
            if abs(max(busy_values) - self.makespan_ms) > _EPS:
                problems.append(
                    "dedicated makespan is not the max lane busy time"
                )
        if abs(sum(t.busy_ms for t in self.tasks) - self.serial_ms) > _EPS:
            problems.append("serial_ms is not the sum of task busy times")
        return problems


class LaneScheduler:
    """Executes independent tasks on ``lanes`` simulated I/O lanes."""

    def __init__(
        self,
        disk: SimulatedDisk,
        lanes: int,
        contention: str = DEDICATED,
        seed: int = 0,
    ) -> None:
        if lanes < 1:
            raise ReproError(f"lanes must be >= 1, got {lanes}")
        if contention not in CONTENTION_MODES:
            raise ReproError(
                f"contention must be one of {CONTENTION_MODES}, "
                f"got {contention!r}"
            )
        self.disk = disk
        self.lanes = lanes
        self.contention = contention
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def run_region(
        self,
        name: str,
        tasks: Sequence[LaneTask],
        obs: Optional[Any] = None,
    ) -> RegionReport:
        """Run one barrier-to-barrier region of independent tasks.

        Returns when every task has run and the clock stands at
        ``barrier + makespan``.  Exceptions (including injected
        crashes) propagate after the active lane is released; the clock
        is then wherever the failing task left it.
        """
        clock = self.disk.clock
        barrier = clock.now_ms
        report = RegionReport(
            name=name,
            lanes=self.lanes,
            contention=self.contention,
            barrier_ms=barrier,
        )
        if not tasks:
            return report
        lane_busy: Dict[int, float] = {
            lane: 0.0 for lane in range(self.lanes)
        }
        contended = (
            self.contention == SHARED
            and self.lanes > 1
            and len(tasks) > 1
        )
        # Greedy LPT: longest estimate first, original order for ties.
        order = sorted(
            range(len(tasks)),
            key=lambda i: (-tasks[i].estimated_ms, i),
        )
        io_region_before = self.disk.stats.snapshot()
        with maybe_span(
            obs,
            f"parallel[{name}]",
            kind="parallel",
            lanes=self.lanes,
            contention=self.contention,
            tasks=len(tasks),
        ) as region_span:
            for i in order:
                task = tasks[i]
                lane = self._pick_lane(lane_busy)
                start = barrier + lane_busy[lane]
                self._position_clock(start)
                io_before = self.disk.stats.snapshot()
                self.disk.begin_lane(lane, contended=contended)
                try:
                    with maybe_span(
                        obs,
                        f"lane[{lane}] {task.name}",
                        kind="lane",
                        target=task.target,
                        lane=lane,
                    ):
                        outcome = task.run()
                finally:
                    self.disk.end_lane()
                lane_busy[lane] = clock.now_ms - barrier
                report.tasks.append(
                    TaskReport(
                        name=task.name,
                        target=task.target,
                        index=i,
                        lane=lane,
                        start_ms=start,
                        end_ms=clock.now_ms,
                        io=self.disk.stats.delta_since(io_before),
                        result=outcome,
                    )
                )
            report.serial_ms = sum(t.busy_ms for t in report.tasks)
            if contended:
                # The shared device serializes the lanes' requests: the
                # region is over only when their total work has drained.
                makespan = report.serial_ms
            else:
                makespan = max(lane_busy.values())
            self._position_clock(barrier + makespan)
            report.makespan_ms = makespan
            region_span.set(
                makespan_ms=makespan,
                serial_ms=report.serial_ms,
                speedup=report.speedup,
            )
        report.lane_busy_ms = {
            lane: busy for lane, busy in lane_busy.items() if busy > 0.0
        }
        for task_report in report.tasks:
            lane_io = report.lane_io.setdefault(
                task_report.lane, DiskStats()
            )
            lane_io.merge(task_report.io)
        report.io = self.disk.stats.delta_since(io_region_before)
        return report

    # ------------------------------------------------------------------
    def _pick_lane(self, lane_busy: Dict[int, float]) -> int:
        """Least-busy lane; seeded random tie-break for equal lanes."""
        best = min(lane_busy.values())
        tied = [lane for lane, busy in lane_busy.items() if busy <= best]
        if len(tied) == 1:
            return tied[0]
        return tied[self._rng.randrange(len(tied))]

    def _position_clock(self, target_ms: float) -> None:
        clock = self.disk.clock
        if target_ms < clock.now_ms:
            clock.rewind_to(target_ms)
        else:
            clock.advance_ms(target_ms - clock.now_ms)

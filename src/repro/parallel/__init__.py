"""Multi-lane parallel execution of bulk-delete plan branches.

See :mod:`repro.parallel.lanes` for the scheduler and the contention
model, and ``docs/parallelism.md`` for the full write-up (lane model,
makespan formula, determinism guarantees under fault injection).
"""

from repro.parallel.lanes import (
    CONTENTION_MODES,
    DEDICATED,
    SHARED,
    LaneScheduler,
    LaneTask,
    RegionReport,
    TaskReport,
)

__all__ = [
    "CONTENTION_MODES",
    "DEDICATED",
    "SHARED",
    "LaneScheduler",
    "LaneTask",
    "RegionReport",
    "TaskReport",
]

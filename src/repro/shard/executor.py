"""Execution of sharded bulk deletes: one lane region + a serial tail.

Each non-hot fragment becomes one :class:`~repro.parallel.LaneTask`
running the core executor against its own shard's structures — shards
share nothing (separate heaps, separate trees), so the fragments are
independent by construction and the ``shards`` region parallelizes
them exactly like the core executor parallelizes plan branches.  Hot
fragments (serialized or split by the planner) run after the region,
back to back, so the hottest range never competes for lanes while
holding its locks.

Accounting is reconciled, not trusted: per-task lane time must equal
the fragment executor's own elapsed time bit-for-bit, the region
report's invariants must hold, and fragment row counts must sum to the
statement total (:meth:`ShardedDeleteResult.reconciliation_problems`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.catalog.database import Database
from repro.core.executor import (
    BulkDeleteOptions,
    BulkDeleteResult,
    execute_fragment,
)
from repro.errors import PlanValidationError
from repro.parallel import DEDICATED, LaneScheduler, LaneTask
from repro.shard.planning import (
    ShardedDeletePlan,
    ShardFragment,
    choose_sharded_plan,
)
from repro.storage.disk import DiskStats


@dataclass
class ShardedDeleteResult:
    """What one sharded bulk delete did, fragment by fragment."""

    plan: ShardedDeletePlan
    records_deleted: int = 0
    #: ``(fragment, result)`` pairs — parallel fragments first (in
    #: submission order), then the serialized hot fragments.
    fragment_results: List[Tuple[ShardFragment, BulkDeleteResult]] = field(
        default_factory=list
    )
    #: The ``shards`` lane region, when the statement ran with
    #: ``lanes > 1`` (``None`` on the serial path).
    region: Optional[object] = None
    elapsed_ms: float = 0.0
    io: Optional[DiskStats] = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    def reconciliation_problems(self) -> List[str]:
        """Cross-checks between rollups — must come back empty.

        * the region report's own invariants (lane accounting,
          makespan, I/O rollups),
        * per parallel task: lane busy time == the fragment executor's
          ``elapsed_ms``, to the last bit,
        * fragment row counts sum to the statement total.
        """
        problems: List[str] = []
        if self.region is not None:
            problems.extend(self.region.reconciliation_problems())  # type: ignore[attr-defined]
            tasks = sorted(
                self.region.tasks,  # type: ignore[attr-defined]
                key=lambda t: t.index,
            )
            parallel = [
                (frag, res)
                for frag, res in self.fragment_results
                if frag.is_parallel
            ]
            for task, (frag, res) in zip(tasks, parallel):
                if task.busy_ms != res.elapsed_ms:  # lint: allow(float-cost-eq)
                    problems.append(
                        f"shard {frag.shard_id}: lane busy "
                        f"{task.busy_ms!r}ms != fragment elapsed "
                        f"{res.elapsed_ms!r}ms"
                    )
        total = sum(res.records_deleted for _, res in self.fragment_results)
        if total != self.records_deleted:
            problems.append(
                f"fragment rows sum to {total}, statement reports "
                f"{self.records_deleted}"
            )
        return problems

    def summary(self) -> str:
        lines = [
            f"deleted {self.records_deleted} records across "
            f"{len(self.fragment_results)} fragment(s) in "
            f"{self.elapsed_seconds:.2f}s (simulated)"
        ]
        for frag, res in self.fragment_results:
            mode = "lane" if frag.is_parallel else f"serial/{frag.policy}"
            lines.append(
                f"  shard {frag.shard_id} [{mode}]: "
                f"-{res.records_deleted} records, "
                f"{res.elapsed_ms / 1000:.2f}s"
            )
        return "\n".join(lines)


def _make_fragment_task(
    db: Database,
    fragment: ShardFragment,
    options: BulkDeleteOptions,
):
    """Build one lane task body: the core executor on one shard.

    The factory-closure shape (the factory call sits directly in the
    ``LaneTask(run=...)`` argument) keeps the task resolvable by the
    static lane-safety pass; the fragment's structures are
    shard-private, so concurrent tasks never touch a shared page.
    """

    def run() -> BulkDeleteResult:
        return execute_fragment(
            db, fragment.plan, fragment.keys,
            options=options, validate=False,
        )

    return run


def sharded_bulk_delete(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    lanes: int = 1,
    contention: str = DEDICATED,
    options: Optional[BulkDeleteOptions] = None,
    plan: Optional[ShardedDeletePlan] = None,
    hot_factor: float = 4.0,
    lane_seed: int = 0,
    validate: bool = True,
) -> ShardedDeleteResult:
    """Bulk-delete ``keys`` from a range-sharded table.

    Routes the delete list per shard (via :func:`choose_sharded_plan`,
    unless a ``plan`` is supplied), then executes: with ``lanes > 1``
    the non-hot fragments run as one ``shards`` lane region and the
    hot fragments serially after it; with ``lanes == 1`` every
    fragment runs back to back on the exact serial code path — with a
    single shard that is bit-identical to the unsharded executor.

    One flush ends the statement (``options.flush_at_end``); fragments
    themselves never flush, mirroring how the core executor defers
    write-back to the end of the statement.
    """
    table = db.table(table_name)
    if plan is None:
        plan = choose_sharded_plan(
            db, table_name, column, keys,
            lanes=lanes, contention=contention, hot_factor=hot_factor,
        )
    else:
        lanes, contention = plan.lanes, plan.contention
    if validate:
        validate_sharded_plan(db, plan)
    obs = db.obs
    if obs is not None:
        obs.on_shard_route(  # type: ignore[attr-defined]
            table_name, fragments=len(plan.fragments), keys=len(keys)
        )
    for frag in plan.fragments:
        table.note_shard_access(frag.shard_id, len(frag.keys))
        if obs is not None:
            obs.on_shard_access(  # type: ignore[attr-defined]
                table_name, frag.shard_id, len(frag.keys)
            )
            if frag.hot:
                obs.on_shard_hot(  # type: ignore[attr-defined]
                    table_name, frag.shard_id, frag.policy
                )
    base = options or BulkDeleteOptions()
    frag_options = dataclasses.replace(
        base, flush_at_end=False, lanes=1
    )
    start_ms = db.clock.now_ms
    start_io = db.disk.stats.snapshot()
    result = ShardedDeleteResult(plan=plan)

    parallel = plan.parallel_fragments()
    serial: List[ShardFragment] = plan.serial_fragments()
    if lanes > 1 and parallel:
        scheduler = LaneScheduler(db.disk, lanes, contention, seed=lane_seed)
        tasks = [
            LaneTask(
                name=f"shard[{frag.shard_id}] {frag.table_name}",
                run=_make_fragment_task(db, frag, frag_options),
                estimated_ms=frag.estimated_ms,
                target=frag.table_name,
            )
            for frag in parallel
        ]
        region = scheduler.run_region("shards", tasks, obs=obs)
        result.region = region
        for frag, res in zip(parallel, region.results()):
            result.fragment_results.append((frag, res))
            result.records_deleted += res.records_deleted
    else:
        # Serial path: fragments back to back, no scheduler between
        # the executor and the clock (lanes=1 stays bit-identical).
        serial = parallel + serial
    for frag in serial:
        res = execute_fragment(
            db, frag.plan, frag.keys, options=frag_options, validate=False
        )
        result.fragment_results.append((frag, res))
        result.records_deleted += res.records_deleted
    if base.flush_at_end:
        db.flush()
    result.elapsed_ms = db.clock.now_ms - start_ms
    result.io = db.disk.stats.delta_since(start_io)
    return result


def validate_sharded_plan(db: Database, plan: ShardedDeletePlan) -> None:
    """Reject the plan if the static linter finds ERROR findings.

    Every fragment's core plan is linted with full catalog context,
    plus the shard-level rules (``plan/shard-coverage``: every delete
    key routed to exactly one fragment inside its shard's range).
    """
    from repro.analysis.findings import errors as error_findings
    from repro.analysis.plan_lint import lint_sharded_plan

    broken = error_findings(lint_sharded_plan(plan, db))
    if broken:
        detail = "; ".join(
            f"{f.rule_id} @ {f.node}: {f.message}" for f in broken
        )
        raise PlanValidationError(
            f"sharded plan for {plan.table_name} violates "
            f"{len(broken)} invariant(s): {detail}",
            findings=broken,
        )

"""Shard-aware planning: route, cost, and tame hot ranges.

:func:`choose_sharded_plan` is the shard analogue of
:func:`repro.core.planner.choose_plan`: it routes the delete list
through the table's :class:`~repro.shard.map.ShardMap`, asks the core
planner for one vertical plan per non-empty fragment (each priced
against its own shard's statistics), detects *hot* shards, and bounds
their lock footprint before anything executes:

* a shard whose access counter dwarfs its peers' is **serialized** —
  its fragment leaves the parallel region and runs alone after it, so
  the hottest range never holds its locks while every lane is busy
  (the failure mode the CockroachDB hot-range runbook in
  ``/root/related/`` documents),
* a shard whose *fragment* dwarfs the mean fragment is **split** into
  mean-sized sub-fragments that run back to back, each its own
  statement — locks are held per sub-fragment, not for the whole
  oversized range.

Everything here is planning: routing and costing are I/O-free (the
``effect/shard-routing-pure`` contract), access counters are only
*read* — the executor is what bumps them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.catalog.catalog import TableInfo
from repro.catalog.database import Database
from repro.core.planner import estimate_sharded_ms
from repro.core.plans import BdMethod, BulkDeletePlan
from repro.errors import PlanningError
from repro.parallel import DEDICATED
from repro.shard.map import ShardMap

#: Hot-range policies, in the order they win when both trigger.
HOT_SPLIT = "split"
HOT_SERIALIZE = "serialize"
HOT_POLICIES = (HOT_SPLIT, HOT_SERIALIZE)


@dataclass
class ShardFragment:
    """One shard-local delete: its keys and its core plan."""

    shard_id: int
    table_name: str  #: the physical shard table the fragment targets
    keys: List[int]
    plan: BulkDeletePlan
    estimated_ms: float
    hot: bool = False
    #: ``None`` runs in the parallel region; a :data:`HOT_POLICIES`
    #: member runs serially after it.
    policy: Optional[str] = None

    @property
    def is_parallel(self) -> bool:
        return self.policy is None


@dataclass
class ShardedDeletePlan:
    """The full plan for one bulk delete against a sharded table."""

    table_name: str  #: the logical table
    column: str
    shard_map: ShardMap
    fragments: List[ShardFragment] = field(default_factory=list)
    lanes: int = 1
    contention: str = DEDICATED
    estimated_ms: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    def parallel_fragments(self) -> List[ShardFragment]:
        return [f for f in self.fragments if f.is_parallel]

    def serial_fragments(self) -> List[ShardFragment]:
        return [f for f in self.fragments if not f.is_parallel]

    @property
    def total_keys(self) -> int:
        return sum(len(f.keys) for f in self.fragments)

    def explain(self) -> str:
        """Render the sharded plan in the style of the core EXPLAIN."""
        lines = [
            f"SHARDED BULK DELETE FROM {self.table_name} "
            f"WHERE {self.column} IN (delete list)",
            f"  shard map: {self.shard_map.shard_count} ranges on "
            f"{self.shard_map.column}",
            f"  parallelism: {self.lanes} {self.contention} lane(s) for "
            f"{len(self.parallel_fragments())} fragment(s); "
            f"{len(self.serial_fragments())} serialized",
        ]
        for frag in self.fragments:
            marker = ""
            if frag.hot:
                marker = f"  [HOT -> {frag.policy}]"
            lines.append(
                f"  shard {frag.shard_id} "
                f"{self.shard_map.describe(frag.shard_id)}: "
                f"{len(frag.keys)} keys -> {frag.table_name}, "
                f"est {frag.estimated_ms / 1000:.2f}s{marker}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.estimated_ms is not None:
            lines.append(
                f"  estimated cost: {self.estimated_ms / 1000:.2f}s"
            )
        return "\n".join(lines)


def choose_sharded_plan(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    lanes: int = 1,
    contention: str = DEDICATED,
    prefer_method: Optional[BdMethod] = None,
    hot_factor: float = 4.0,
) -> ShardedDeletePlan:
    """Route ``keys`` per shard and plan each fragment.

    ``hot_factor`` is both thresholds: a fragment more than
    ``hot_factor`` times the mean non-empty fragment is oversized
    (split), a shard whose historical access counter exceeds
    ``hot_factor`` times the mean counter is hot by traffic
    (serialized).  ``hot_factor <= 0`` disables detection.
    """
    from repro.core.planner import choose_plan  # circular at import time

    table = db.table(table_name)
    if not table.is_sharded:
        raise PlanningError(
            f"table {table_name} is not range-sharded"
        )
    shard_map = table.shard_map
    assert shard_map is not None
    if column != shard_map.column:
        raise PlanningError(
            f"sharded deletes route by the shard column "
            f"{shard_map.column!r}; cannot route a delete on {column!r}"
        )
    plan = ShardedDeletePlan(
        table_name=table_name,
        column=column,
        shard_map=shard_map,
        lanes=lanes,
        contention=contention,
    )
    routed = shard_map.route(keys)
    nonempty = [frag for frag in routed if frag]
    if not nonempty:
        plan.estimated_ms = 0.0
        plan.notes.append("empty delete list: nothing to route")
        return plan
    mean_keys = sum(len(frag) for frag in nonempty) / len(nonempty)
    hot_by_access = _hot_by_access(table, hot_factor)
    empty = shard_map.shard_count - len(nonempty)
    plan.notes.append(
        f"routed {sum(len(f) for f in nonempty)} keys into "
        f"{len(nonempty)} fragment(s)"
        + (f" ({empty} empty shard(s) skipped)" if empty else "")
    )

    def fragment(
        shard: TableInfo,
        shard_id: int,
        frag_keys: List[int],
        hot: bool,
        policy: Optional[str],
    ) -> ShardFragment:
        core = choose_plan(
            db, shard.name, column, len(frag_keys),
            prefer_method=prefer_method, force_vertical=True,
        )
        assert core.estimated_ms is not None
        return ShardFragment(
            shard_id=shard_id,
            table_name=shard.name,
            keys=frag_keys,
            plan=core,
            estimated_ms=core.estimated_ms,
            hot=hot,
            policy=policy,
        )

    for shard_id, frag_keys in enumerate(routed):
        if not frag_keys:
            continue
        shard = table.shard(shard_id)
        oversized = (
            hot_factor > 0
            and len(nonempty) > 1
            and len(frag_keys) > hot_factor * mean_keys
        )
        if oversized:
            # Split: mean-sized sub-fragments, serial, per-chunk locks.
            chunk = max(1, math.ceil(mean_keys))
            pieces = [
                frag_keys[i:i + chunk]
                for i in range(0, len(frag_keys), chunk)
            ]
            plan.notes.append(
                f"shard {shard_id} is hot (fragment {len(frag_keys)} "
                f"keys > {hot_factor:g}x mean {mean_keys:.0f}): split "
                f"into {len(pieces)} serialized sub-fragment(s)"
            )
            for piece in pieces:
                plan.fragments.append(
                    fragment(shard, shard_id, piece, True, HOT_SPLIT)
                )
        elif shard_id in hot_by_access:
            plan.notes.append(
                f"shard {shard_id} is hot by access counters "
                f"({table.shard_accesses.get(shard_id, 0)} routed keys "
                "historically): serialized to bound its lock footprint"
            )
            plan.fragments.append(
                fragment(shard, shard_id, frag_keys, True, HOT_SERIALIZE)
            )
        else:
            plan.fragments.append(
                fragment(shard, shard_id, frag_keys, False, None)
            )

    cost = estimate_sharded_ms(
        [f.estimated_ms for f in plan.parallel_fragments()],
        [f.estimated_ms for f in plan.serial_fragments()],
        lanes,
        contention,
    )
    plan.estimated_ms = cost.io_ms
    plan.notes.append(cost.detail)
    return plan


def _hot_by_access(table: TableInfo, hot_factor: float) -> List[int]:
    """Shards whose access counter dwarfs the mean counter."""
    if hot_factor <= 0 or not table.shard_accesses:
        return []
    counted = [n for n in table.shard_accesses.values() if n > 0]
    if len(counted) < 2:
        return []
    mean = sum(counted) / len(counted)
    return [
        shard_id
        for shard_id, n in sorted(table.shard_accesses.items())
        if n > hot_factor * mean
    ]

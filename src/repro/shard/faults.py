"""Crash-mid-shard sweep: §3.2 recovery, one shard at a time.

A sharded bulk delete that must survive crashes runs as a *sequence*
of shard-local recoverable statements on one shared WAL — each shard's
statement begins, sweeps its own structures, and commits before the
next shard starts, so at most one statement is ever open and a crash
loses at most one shard's progress.  The sweep turns that claim into a
checked property, exactly like :mod:`repro.faults.sweep` does for the
single-table statement:

1. run the whole multi-shard sequence **fault-free** with one counting
   :class:`~repro.faults.injector.FaultInjector` shared across the
   statements — ``arm()`` never resets the event log, so durable
   events are numbered globally across the sweep — capturing the
   oracle state and the total event count N,
2. for each chosen k in 1..N, rebuild the identical scenario, crash
   right after global durable event k (which lands inside some shard's
   statement), :func:`~repro.recovery.restart.recover`, re-issue the
   statements that verifiably never started (the client's contract),
   and require oracle equivalence + internal consistency + terminal
   recovery.

Scenario builds are deterministic, so global event k always lands on
the same write of the same shard's statement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.faults.sweep import (
    PointOutcome,
    SweepReport,
    _choose_points,
    _diff_states,
    capture_state,
    integrity_problems,
)
from repro.recovery.restart import RecoverableBulkDelete, recover
from repro.recovery.wal import WriteAheadLog
from repro.shard.map import ShardMap


@dataclass(frozen=True)
class ShardSweepScenario:
    """A deterministic sharded workload: every ``build()`` is
    bit-identical.

    Table R is range-sharded on its unique driving column A into
    equi-depth shards; the delete list spreads over every shard, so
    global durable events cover begin/sweep/commit of several
    statements and the sweep exercises crashes between shards as well
    as inside them.
    """

    records: int = 60
    delete_fraction: float = 0.4
    seed: int = 11
    page_size: int = 512
    memory_pages: int = 12
    shards: int = 3

    def build(self) -> "ShardSweepCase":
        db = Database(
            page_size=self.page_size,
            memory_bytes=self.memory_pages * self.page_size,
        )
        rng = random.Random(self.seed)
        n = self.records
        a_vals = rng.sample(range(10 * n), n)
        shard_map = ShardMap.from_quantiles("A", a_vals, self.shards)
        db.create_sharded_table(
            TableSchema.of(
                "R", [Attribute.int_("A"), Attribute.char("PAD", 24)]
            ),
            "A",
            shard_map.bounds,
        )
        db.load_table("R", [(a, "p") for a in a_vals])
        db.create_sharded_index("R", "A", unique=True)
        count = max(1, int(n * self.delete_fraction))
        keys = sorted(rng.sample(a_vals, count))
        # The pre-statement image must be durable: a crash at the very
        # first statement event may not lose any of the build.
        db.flush()
        table = db.table("R")
        statements = [
            (table.shard(shard_id).name, frag_keys)
            for shard_id, frag_keys in enumerate(shard_map.route(keys))
            if frag_keys
        ]
        return ShardSweepCase(
            db=db,
            log=WriteAheadLog(db.disk),
            keys=keys,
            statements=statements,
        )


@dataclass
class ShardSweepCase:
    """One built scenario instance."""

    db: Database
    log: WriteAheadLog
    keys: List[int]
    #: The shard-local statement sequence: ``(physical table, keys)``
    #: per non-empty fragment, in shard order.
    statements: List[Tuple[str, List[int]]]


def shard_crash_sweep(
    scenario: Optional[ShardSweepScenario] = None,
    max_points: Optional[int] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Sweep a crash over every (or ``max_points`` evenly spaced)
    global durable event of the scenario's multi-shard delete."""
    scenario = scenario or ShardSweepScenario()
    say = log_fn or (lambda message: None)

    # Pass 0: pre-statement state, oracle state, global event count.
    case = scenario.build()
    initial = capture_state(case.db)
    counter = FaultInjector()
    for table_name, frag_keys in case.statements:
        RecoverableBulkDelete(
            case.db, table_name, "A", frag_keys, case.log, faults=counter
        ).run()
    oracle = capture_state(case.db)
    oracle_problems = integrity_problems(case.db)
    if oracle_problems:
        raise ReproError(
            "fault-free sharded oracle run is already inconsistent: "
            + "; ".join(oracle_problems)
        )
    report = SweepReport(durable_events=counter.durable_event_count)
    report.points = _choose_points(counter.durable_event_count, max_points)
    say(
        f"sharded oracle: {len(case.statements)} shard statements, "
        f"{counter.durable_event_count} global durable events; "
        f"sweeping {len(report.points)} crash points"
    )
    for k in report.points:
        outcome = _run_shard_point(scenario, k, initial, oracle)
        report.outcomes.append(outcome)
        if not outcome.ok:
            say(f"  event {k}: FAIL: {outcome.problems[0]}")
    return report


def _run_shard_point(
    scenario: ShardSweepScenario,
    event: int,
    initial: dict,
    oracle: dict,
) -> PointOutcome:
    case = scenario.build()
    outcome = PointOutcome(event=event, second_event=None)
    # One injector across the sequence: durable events number globally,
    # so event k lands on the same write as in the oracle pass.
    injector = FaultInjector(FaultPlan(crash_after_event=event))
    crashed_at: Optional[int] = None
    for i, (table_name, frag_keys) in enumerate(case.statements):
        try:
            RecoverableBulkDelete(
                case.db, table_name, "A", frag_keys, case.log,
                faults=injector,
            ).run()
        except SimulatedCrash as exc:
            outcome.crash = str(exc)
            crashed_at = i
            break
    if outcome.crash is None or crashed_at is None:
        outcome.problems.append(
            f"no crash fired at global durable event {event}"
        )
        return outcome

    rec_report = recover(case.db, case.log)

    # The interrupted statement: recovery either finished it, or the
    # client re-issues it — legitimate only from the pristine
    # shard-local state (shards share nothing, so the check is local).
    state = capture_state(case.db)
    table_name, frag_keys = case.statements[crashed_at]
    if rec_report.abandoned or not rec_report.resumed:
        if state.get(table_name) == initial.get(table_name):
            RecoverableBulkDelete(
                case.db, table_name, "A", frag_keys, case.log
            ).run()
        elif state.get(table_name) != oracle.get(table_name):
            outcome.problems.append(
                f"statement on {table_name} neither resumed nor "
                "pristine after recovery; cannot re-issue"
            )
    # Statements after the crashed one never began; the client issues
    # them as on a fresh run.
    for next_name, next_keys in case.statements[crashed_at + 1:]:
        RecoverableBulkDelete(
            case.db, next_name, "A", next_keys, case.log
        ).run()

    state = capture_state(case.db)
    if state != oracle:
        outcome.problems.append(_diff_states(oracle, state))
    outcome.problems.extend(integrity_problems(case.db))
    # Recovery must be terminal: a further restart finds nothing to do.
    if recover(case.db, case.log).resumed:
        outcome.problems.append(
            "recovery is not terminal (a further recover() resumed)"
        )
    return outcome

"""Range-sharded tables: key-range partitioning of heaps and indexes.

The paper's range-partitioned hashing (§2.2) splits one delete into
independent key ranges so each partition fits in memory; ``repro.shard``
promotes the same split to the *storage* layer.  A sharded table is a
logical catalog entry plus one physical table per key range — each with
its own heap file and indexes — so shard-local bulk deletes touch
disjoint structures and can run as independent ``LaneTask``s on the
:mod:`repro.parallel` lane scheduler (genuine data parallelism, not
just plan-branch parallelism).

Layers:

* :mod:`repro.shard.map` — the pure routing core: a
  :class:`~repro.shard.map.ShardMap` of strictly increasing range
  bounds that splits a delete list into per-shard fragments
  (I/O-free; see ``effect/shard-routing-pure``),
* :mod:`repro.shard.planning` — :func:`choose_sharded_plan` routes the
  keys, costs each fragment with the core planner, detects *hot*
  shards (oversized fragments or skewed access counters) and bounds
  their lock footprint by splitting or serializing them, and prices
  the whole shape with
  :func:`repro.core.planner.estimate_sharded_ms`,
* :mod:`repro.shard.executor` — :func:`sharded_bulk_delete` runs the
  fragments as one lane region plus a serial tail, with per-shard
  rollups that reconcile bit-exactly against the observer's spans,
* :mod:`repro.shard.faults` — crash-mid-shard sweep coverage: every
  durable event of a multi-shard recoverable delete is a crash point.

See ``docs/sharding.md`` for the end-to-end walkthrough.
"""

from repro.shard.executor import (
    ShardedDeleteResult,
    sharded_bulk_delete,
    validate_sharded_plan,
)
from repro.shard.faults import ShardSweepScenario, shard_crash_sweep
from repro.shard.map import ShardMap
from repro.shard.planning import (
    HOT_POLICIES,
    ShardedDeletePlan,
    ShardFragment,
    choose_sharded_plan,
)

__all__ = [
    "ShardMap",
    "ShardFragment",
    "ShardedDeletePlan",
    "ShardedDeleteResult",
    "choose_sharded_plan",
    "sharded_bulk_delete",
    "validate_sharded_plan",
    "ShardSweepScenario",
    "shard_crash_sweep",
    "HOT_POLICIES",
]

"""The shard map: key ranges, routing, and nothing else.

Everything here is pure arithmetic over Python lists — no disk, no
clock, no catalog.  Routing feeds the planner's estimators, so the
effect engine holds this module to the same standard as the cost
formulas (``effect/shard-routing-pure`` in ``docs/static_analysis.md``):
a routing step that charged simulated I/O would corrupt every sharded
estimate.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import CatalogError


@dataclass(frozen=True)
class ShardMap:
    """Key-range partitioning of one integer column.

    ``bounds`` holds the strictly increasing interior split points;
    shard ``i`` covers ``[bounds[i-1], bounds[i])`` with open outer
    ends, so a key exactly on a bound belongs to the *upper* shard.
    ``len(bounds) + 1`` shards cover the whole key space and every key
    routes to exactly one shard — the invariant the
    ``plan/shard-coverage`` lint re-checks on every sharded plan.
    """

    column: str
    bounds: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(
            b >= c for b, c in zip(self.bounds, self.bounds[1:])
        ):
            raise CatalogError(
                f"shard bounds must be strictly increasing: {self.bounds}"
            )

    @property
    def shard_count(self) -> int:
        return len(self.bounds) + 1

    def shard_of(self, key: int) -> int:
        """The unique shard covering ``key``."""
        return bisect_right(self.bounds, key)

    def range_of(self, shard_id: int) -> Tuple[Optional[int], Optional[int]]:
        """``(low, high)`` of one shard; ``None`` is an open end."""
        if not 0 <= shard_id < self.shard_count:
            raise CatalogError(
                f"shard {shard_id} out of range (have {self.shard_count})"
            )
        low = self.bounds[shard_id - 1] if shard_id > 0 else None
        high = (
            self.bounds[shard_id]
            if shard_id < len(self.bounds)
            else None
        )
        return low, high

    def covers(self, shard_id: int, key: int) -> bool:
        """Whether ``key`` lies inside shard ``shard_id``'s range."""
        low, high = self.range_of(shard_id)
        return (low is None or key >= low) and (high is None or key < high)

    def describe(self, shard_id: int) -> str:
        low, high = self.range_of(shard_id)
        lo = "-inf" if low is None else str(low)
        hi = "+inf" if high is None else str(high)
        return f"[{lo}, {hi})"

    def route(self, keys: Sequence[int]) -> List[List[int]]:
        """Split ``keys`` into one fragment per shard.

        Input order is preserved within each fragment, and every key
        lands in exactly one fragment — with one shard the fragment
        *is* the input list, which is what makes single-shard
        execution bit-identical to the unsharded path.
        """
        fragments: List[List[int]] = [[] for _ in range(self.shard_count)]
        for key in keys:
            fragments[self.shard_of(key)].append(key)
        return fragments

    @classmethod
    def from_quantiles(
        cls, column: str, values: Sequence[int], shards: int
    ) -> "ShardMap":
        """Equi-depth bounds from observed column values.

        Picks the ``i * n / shards`` order statistics as interior
        bounds, so each shard holds roughly the same number of the
        observed values.  Duplicate order statistics (heavily skewed
        data) collapse; fewer than ``shards - 1`` distinct bounds is
        an error because the caller would silently get fewer shards.
        """
        if shards < 1:
            raise CatalogError("need at least one shard")
        if shards == 1:
            return cls(column=column, bounds=())
        ordered = sorted(values)
        if len(ordered) < shards:
            raise CatalogError(
                f"{len(ordered)} values cannot seed {shards} shards"
            )
        bounds: List[int] = []
        for i in range(1, shards):
            bound = ordered[i * len(ordered) // shards]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        if len(bounds) != shards - 1:
            raise CatalogError(
                f"values too skewed for {shards} equi-depth shards "
                f"(only {len(bounds) + 1} distinct ranges)"
            )
        return cls(column=column, bounds=tuple(bounds))

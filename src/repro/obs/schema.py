"""Validation of exported trace documents (``repro trace --format json``).

The authoritative, tool-friendly description of the format lives in
``docs/trace_schema.json`` (JSON Schema draft-07).  This module is the
runnable twin: a dependency-free validator enforcing the same
constraints plus the *semantic* invariants a generic JSON Schema
cannot express —

* spans nest: every child interval lies within its parent's,
* ``elapsed_ms`` is ``end_ms - start_ms`` and ``self_ms`` is the
  elapsed time minus the *union* of the children's intervals (equal to
  their plain sum for serial children; concurrent lane spans may
  overlap and their overlap counts once),
* inclusive I/O covers the children: no child's counter exceeds its
  parent's, and ``self_io`` is exactly ``io`` minus the children's
  (the reconciliation the accounting tests rely on).

CI runs ``python -m repro trace --selfcheck`` through
``python -m repro.obs.schema`` so the exporter and this contract
cannot drift apart silently.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.trace import BUFFER_FIELDS, IO_FIELDS, interval_union_ms

SCHEMA_VERSION = 1

#: Required numeric keys of a trace entry's ``totals`` object.
TOTAL_FIELDS = (
    "sim_time_ms",
    "reads",
    "writes",
    "random_ios",
    "io_time_ms",
    "buffer_hit_ratio",
)

_EPS = 1e-6


def _num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_io(
    io: Any, where: str, errors: List[str]
) -> Optional[Dict[str, float]]:
    if not isinstance(io, dict):
        errors.append(f"{where}: io block must be an object")
        return None
    for field in IO_FIELDS:
        if field not in io:
            errors.append(f"{where}: io block missing {field!r}")
        elif not _num(io[field]):
            errors.append(f"{where}: io.{field} must be a number")
    return io


def validate_span(
    span: Any, path: str = "span", errors: Optional[List[str]] = None
) -> List[str]:
    """Validate one span object (recursively); returns error strings."""
    errors = [] if errors is None else errors
    if not isinstance(span, dict):
        errors.append(f"{path}: span must be an object")
        return errors
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{path}: missing or empty 'name'")
    if not isinstance(span.get("kind"), str):
        errors.append(f"{path}: missing 'kind'")
    target = span.get("target")
    if target is not None and not isinstance(target, str):
        errors.append(f"{path}: 'target' must be a string or null")
    for field in ("start_ms", "end_ms", "elapsed_ms", "self_ms"):
        if not _num(span.get(field)):
            errors.append(f"{path}: {field!r} must be a number")
            return errors
    if span["end_ms"] + _EPS < span["start_ms"]:
        errors.append(f"{path}: end_ms precedes start_ms")
    if abs(span["elapsed_ms"] - (span["end_ms"] - span["start_ms"])) > _EPS:
        errors.append(f"{path}: elapsed_ms != end_ms - start_ms")
    io = _check_io(span.get("io"), path, errors)
    self_io = _check_io(span.get("self_io"), f"{path}.self_io", errors)
    buffer = span.get("buffer")
    if not isinstance(buffer, dict):
        errors.append(f"{path}: 'buffer' must be an object")
    else:
        for field in BUFFER_FIELDS:
            if not _num(buffer.get(field)):
                errors.append(f"{path}: buffer.{field} must be a number")
    if not isinstance(span.get("attrs"), dict):
        errors.append(f"{path}: 'attrs' must be an object")
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{path}: 'children' must be an array")
        return errors

    child_intervals: List[tuple] = []
    child_io: Dict[str, float] = {field: 0.0 for field in IO_FIELDS}
    for i, child in enumerate(children):
        child_path = f"{path}.children[{i}]"
        validate_span(child, child_path, errors)
        if not isinstance(child, dict):
            continue
        if _num(child.get("start_ms")) and _num(child.get("end_ms")):
            if child["start_ms"] + _EPS < span["start_ms"] or (
                child["end_ms"] > span["end_ms"] + _EPS
            ):
                errors.append(
                    f"{child_path}: child interval escapes its parent "
                    "(spans must nest)"
                )
            child_intervals.append((child["start_ms"], child["end_ms"]))
        if isinstance(child.get("io"), dict):
            for field in IO_FIELDS:
                value = child["io"].get(field)
                if _num(value):
                    child_io[field] += value

    child_elapsed = interval_union_ms(child_intervals)
    if abs(span["self_ms"] - (span["elapsed_ms"] - child_elapsed)) > _EPS:
        errors.append(
            f"{path}: self_ms != elapsed_ms - union(children intervals) "
            "(serial children: their plain sum)"
        )
    if io is not None and self_io is not None:
        for field in IO_FIELDS:
            inclusive = io.get(field)
            exclusive = self_io.get(field)
            if not (_num(inclusive) and _num(exclusive)):
                continue
            if inclusive + _EPS < child_io[field]:
                errors.append(
                    f"{path}: io.{field} smaller than its children's sum "
                    "(inclusive counters must cover the children)"
                )
            if abs(exclusive - (inclusive - child_io[field])) > _EPS:
                errors.append(
                    f"{path}: self_io.{field} != io.{field} - "
                    "sum(children io) (reconciliation broken)"
                )
    return errors


def validate_trace(doc: Any) -> List[str]:
    """Validate a whole export document; returns error strings."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not isinstance(doc.get("generator"), str):
        errors.append("'generator' must be a string")
    if "workload" in doc and not isinstance(doc["workload"], dict):
        errors.append("'workload' must be an object when present")
    traces = doc.get("traces")
    if not isinstance(traces, list):
        errors.append("'traces' must be an array")
        return errors
    for i, entry in enumerate(traces):
        where = f"traces[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not isinstance(entry.get("label"), str) or not entry.get("label"):
            errors.append(f"{where}: missing or empty 'label'")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}: 'metrics' must be an object")
        else:
            for name, value in metrics.items():
                if not isinstance(name, str) or not _num(value):
                    errors.append(
                        f"{where}: metrics entries must map string "
                        f"names to numbers (bad: {name!r})"
                    )
                    break
        totals = entry.get("totals")
        if not isinstance(totals, dict):
            errors.append(f"{where}: 'totals' must be an object")
        else:
            for field in TOTAL_FIELDS:
                if not _num(totals.get(field)):
                    errors.append(
                        f"{where}: totals.{field} must be a number"
                    )
        validate_span(entry.get("span"), f"{where}.span", errors)
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.schema [trace.json ...]`` (or stdin)."""
    args = list(sys.argv[1:] if argv is None else argv)
    failed = False
    if not args:
        docs = [("<stdin>", sys.stdin.read())]
    else:
        docs = [(name, open(name).read()) for name in args]
    for name, text in docs:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{name}: not JSON: {exc}")
            failed = True
            continue
        errors = validate_trace(doc)
        if errors:
            failed = True
            for error in errors:
                print(f"{name}: {error}")
        else:
            spans = doc.get("traces", [])
            print(f"{name}: ok ({len(spans)} trace(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

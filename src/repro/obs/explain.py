"""EXPLAIN ANALYZE: the chosen plan annotated with measured costs.

``EXPLAIN`` shows what the planner *intends*; :func:`explain_analyze`
runs the statement (Postgres-style — the delete really happens) with an
observer attached and renders the operator tree with what each
operator actually cost: simulated time, the page-access breakdown
(random / sequential / near-sequential, reads and writes split), and
the buffer hit rate, next to the planner's estimate.

:func:`render_trace` is the reusable half — the bench harness and
``python -m repro trace --format text`` feed it spans captured
elsewhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.catalog.database import Database
from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.core.planner import choose_plan
from repro.core.plans import BdMethod, BulkDeletePlan
from repro.obs.observer import Observer
from repro.obs.trace import Span
from repro.storage.disk import DiskStats


def _fmt_ms(ms: float) -> str:
    return f"{ms:.2f} ms" if ms < 10000 else f"{ms / 1000:.2f} s"


def _fmt_side(total: int, random: int, seq: int, near: int) -> str:
    return f"{total} ({random} rnd / {seq} seq / {near} near)"


def _io_line(io: DiskStats, buffer_line: str) -> str:
    reads = _fmt_side(
        io.reads, io.random_reads, io.sequential_reads,
        io.near_sequential_reads,
    )
    writes = _fmt_side(
        io.writes, io.random_writes, io.sequential_writes,
        io.near_sequential_writes,
    )
    return (
        f"reads {reads}  writes {writes}  "
        f"io {_fmt_ms(io.io_time_ms)}{buffer_line}"
    )


def _span_lines(span: Span, depth: int, out: List[str]) -> None:
    pad = "    " * depth
    attrs = "".join(
        f"  {key}={span.attrs[key]}" for key in sorted(span.attrs)
    )
    out.append(
        f"{pad}-> {span.name} [{span.kind}]  "
        f"sim {_fmt_ms(span.elapsed_ms)} "
        f"(self {_fmt_ms(span.self_ms)}){attrs}"
    )
    lookups = span.buffer.hits + span.buffer.misses
    buffer_line = (
        f"  buf hit {span.buffer.hit_ratio:.1%} of {lookups}"
        if lookups else ""
    )
    out.append(f"{pad}     {_io_line(span.io, buffer_line)}")
    for child in span.children:
        _span_lines(child, depth + 1, out)


def render_trace(span: Span, grand_total: Optional[DiskStats] = None) -> str:
    """Render a span tree with per-operator measured costs.

    Each operator shows inclusive and exclusive simulated time, the
    page-access breakdown (reads and writes, each split random /
    sequential / near-sequential), its I/O time and buffer hit rate.
    The footer reconciles the tree against ``grand_total`` (the
    simulated disk's delta over the traced region) when given —
    per-operator exclusive costs must sum to it *exactly*.
    """
    lines: List[str] = []
    _span_lines(span, 0, lines)
    total_self = DiskStats()
    for node in span.walk():
        node_self = node.self_io
        total_self.reads += node_self.reads
        total_self.writes += node_self.writes
        total_self.io_time_ms += node_self.io_time_ms
    lines.append(
        f"totals: sim {_fmt_ms(span.elapsed_ms)}, "
        f"{span.io.reads} reads / {span.io.writes} writes "
        f"({span.io.random_ios} random), "
        f"io {_fmt_ms(span.io.io_time_ms)}, "
        f"buf hit {span.buffer.hit_ratio:.1%}"
    )
    if grand_total is not None:
        reconciled = (
            total_self.reads == grand_total.reads == span.io.reads
            and total_self.writes == grand_total.writes == span.io.writes
            and abs(total_self.io_time_ms - grand_total.io_time_ms) < 1e-9
        )
        lines.append(
            f"reconciliation: sum(per-operator self io) = "
            f"{total_self.reads}r/{total_self.writes}w, "
            f"disk grand total = "
            f"{grand_total.reads}r/{grand_total.writes}w -- "
            + ("exact" if reconciled else "MISMATCH")
        )
    return "\n".join(lines)


def explain_analyze(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    plan: Optional[BulkDeletePlan] = None,
    options: Optional[BulkDeleteOptions] = None,
    prefer_method: Optional[BdMethod] = None,
    force_vertical: bool = False,
) -> str:
    """Run ``DELETE FROM table WHERE column IN keys`` and report costs.

    Like ``EXPLAIN ANALYZE`` in a production system this *executes* the
    statement — the records are really gone afterwards.  A fresh
    observer is attached for the duration when the database has none;
    an already-attached observer is reused (and its metrics keep
    accumulating).

    Returns the planner's rendering of the chosen plan followed by the
    measured operator tree (:func:`render_trace`) and an
    estimate-vs-actual comparison against ``plan.estimated_ms``.
    """
    if plan is None:
        opts = options or BulkDeleteOptions()
        plan = choose_plan(
            db,
            table_name,
            column,
            len(keys),
            prefer_method=prefer_method,
            force_vertical=force_vertical,
            lanes=opts.lanes,
            contention=opts.contention,
        )
    attached_here = db.obs is None
    if attached_here:
        Observer.attach(db)
    try:
        io_before = db.disk.stats.snapshot()
        result = bulk_delete(
            db, table_name, column, keys, plan=plan, options=options
        )
        io_delta = db.disk.stats.delta_since(io_before)
    finally:
        if attached_here:
            Observer.detach(db)

    lines = [plan.explain(), "", "measured execution:"]
    root = result.trace
    if isinstance(root, Span):
        lines.append(render_trace(root, grand_total=io_delta))
    else:  # pragma: no cover - defensive; executors always trace
        lines.append("  (no trace captured)")
    if plan.estimated_ms is not None and result.elapsed_ms > 0:
        ratio = result.elapsed_ms / plan.estimated_ms
        lines.append(
            f"estimate vs actual: estimated "
            f"{_fmt_ms(plan.estimated_ms)}, actual "
            f"{_fmt_ms(result.elapsed_ms)} ({ratio:.2f}x)"
        )
    lines.append(
        f"deleted {result.records_deleted} records "
        f"in {result.elapsed_seconds:.2f}s (simulated)"
    )
    return "\n".join(lines)

"""The :class:`Observer` facade: one attach point, many instruments.

``Observer.attach(db)`` switches a database's instrumentation on:

* the simulated disk reports every page access (kind, direction,
  per-file stream) into the metrics registry,
* the buffer pool reports hits, misses, evictions and dirty
  write-backs,
* external sorts report runs, spills and spill pages; spill files
  report pages written and re-read,
* the executors open per-operator :class:`~repro.obs.trace.Span`\\ s.

Detached (the default — ``db.obs is None``), every hook site is a
single attribute test and nothing is recorded anywhere; attaching
never changes simulated results because the observer only *reads*
the clock and the storage layer's own counters.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, _OpenSpan
from repro.query.sort import SortStats
from repro.storage.disk import SimulatedDisk


class Observer:
    """Bundles the metrics registry and the tracer for one database."""

    def __init__(self, disk: SimulatedDisk, pool: Optional[Any] = None) -> None:
        self.disk = disk
        self.pool = pool
        self.metrics = MetricsRegistry(clock=disk.clock)
        self.tracer = Tracer(disk, pool)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, db: Any) -> "Observer":
        """Create an observer and wire it into ``db``'s layers.

        Raises if one is already attached — nested observation would
        double-count; use the existing ``db.obs`` instead.
        """
        if getattr(db, "obs", None) is not None:
            raise RuntimeError("an Observer is already attached to this db")
        observer = cls(db.disk, db.pool)
        db.obs = observer
        db.disk.observer = observer
        return observer

    @classmethod
    def detach(cls, db: Any) -> Optional["Observer"]:
        """Unwire and return the attached observer (or ``None``)."""
        observer = getattr(db, "obs", None)
        db.obs = None
        db.disk.observer = None
        return observer

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        kind: str = "op",
        target: Optional[str] = None,
        **attrs: Any,
    ) -> _OpenSpan:
        return self.tracer.span(name, kind=kind, target=target, **attrs)

    @property
    def root_span(self) -> Optional[Span]:
        return self.tracer.root

    # ------------------------------------------------------------------
    # storage-layer hooks (called with tracing enabled only)
    # ------------------------------------------------------------------
    def on_disk_access(
        self, file_id: int, kind: str, is_write: bool, cost_ms: float
    ) -> None:
        """One page access: ``kind`` is random/sequential/near_sequential."""
        direction = "write" if is_write else "read"
        m = self.metrics
        m.counter(f"disk.{direction}.{kind}").inc()
        m.counter(f"disk.{direction}s").inc()
        m.timer("disk.io_ms").add_ms(cost_ms)
        m.counter(f"disk.file.{file_id}.{direction}s").inc()

    def on_page_alloc(self, file_id: int) -> None:
        self.metrics.counter("disk.pages_allocated").inc()

    def on_page_free(self, page_id: int) -> None:
        self.metrics.counter("disk.pages_freed").inc()

    def on_cpu(self, cost_ms: float) -> None:
        self.metrics.timer("cpu.time_ms").add_ms(cost_ms)

    def on_buffer_hit(self) -> None:
        self.metrics.counter("buffer.hits").inc()

    def on_buffer_miss(self) -> None:
        self.metrics.counter("buffer.misses").inc()

    def on_buffer_eviction(self, dirty: bool) -> None:
        self.metrics.counter("buffer.evictions").inc()
        if dirty:
            self.metrics.counter("buffer.dirty_writebacks").inc()

    def on_buffer_writeback(self) -> None:
        self.metrics.counter("buffer.dirty_writebacks").inc()

    # ------------------------------------------------------------------
    # query-layer hooks
    # ------------------------------------------------------------------
    def on_sort(self, stats: SortStats) -> None:
        """One finished run-generation phase of an external sort."""
        m = self.metrics
        m.counter("sort.sorts").inc()
        m.counter("sort.input_tuples").inc(stats.input_tuples)
        m.counter("sort.runs").inc(stats.runs)
        if stats.spilled:
            m.counter("sort.spilled_sorts").inc()
            m.counter("sort.spill_pages").inc(stats.spill_pages)

    def on_spill_write(self, pages: int = 1) -> None:
        self.metrics.counter("spill.pages_written").inc(pages)

    def on_spill_read(self, pages: int = 1) -> None:
        self.metrics.counter("spill.pages_read").inc(pages)

    # ------------------------------------------------------------------
    # OLTP traffic hooks (repro.workload.traffic)
    # ------------------------------------------------------------------
    def on_user_op(
        self,
        session: int,
        kind: str,
        latency_ms: float,
        service_ms: float,
        stall_kind: Optional[str],
        stall_ms: float,
    ) -> None:
        """One user operation completed under the traffic driver.

        ``latency_ms`` is arrival-to-completion on the simulated clock;
        ``service_ms`` the op's own work; a non-``None`` ``stall_kind``
        (``lock`` or ``lane``) attributes ``stall_ms`` of the latency
        to a concurrent bulk-delete slice.
        """
        m = self.metrics
        m.counter("oltp.ops").inc()
        m.counter(f"oltp.ops.{kind}").inc()
        m.timer("oltp.latency_ms").add_ms(latency_ms)
        m.timer("oltp.service_ms").add_ms(service_ms)
        if stall_kind is not None:
            m.counter(f"oltp.stalls.{stall_kind}").inc()
            m.timer("oltp.stall_ms").add_ms(stall_ms)

    def on_delete_slice(self, label: str, elapsed_ms: float) -> None:
        """One delete slice (critical phase, propagation step or chunk)
        ran between user operations."""
        self.metrics.counter("oltp.delete.slices").inc()
        self.metrics.timer("oltp.delete.busy_ms").add_ms(elapsed_ms)

    # ------------------------------------------------------------------
    # sharding hooks (repro.shard)
    # ------------------------------------------------------------------
    def on_shard_route(self, table: str, fragments: int, keys: int) -> None:
        """One delete list was routed through a shard map into
        per-shard fragments."""
        m = self.metrics
        m.counter("shard.route.calls").inc()
        m.counter("shard.route.fragments").inc(fragments)
        m.counter("shard.route.keys").inc(keys)

    def on_shard_access(self, table: str, shard_id: int, keys: int) -> None:
        """``keys`` delete keys landed on one shard (the same bump the
        hot-range detector's access counters receive)."""
        self.metrics.counter("shard.accesses").inc(keys)

    def on_shard_hot(
        self, table: str, shard_id: int, policy: Optional[str]
    ) -> None:
        """The planner flagged a hot shard fragment and bounded it with
        ``policy`` (``split`` or ``serialize``)."""
        self.metrics.counter("shard.hot.detected").inc()
        if policy is not None:
            self.metrics.counter(f"shard.hot.{policy}").inc()

    # ------------------------------------------------------------------
    # LSM hooks (repro.lsm)
    # ------------------------------------------------------------------
    def on_tombstone_write(self, kind: str) -> None:
        """One tombstone was logged (``kind`` is ``point`` or
        ``range``) — the whole write-side cost of an LSM delete."""
        self.metrics.counter(f"lsm.tombstones.{kind}").inc()

    def on_memtable_flush(self, entries: int, pages: int) -> None:
        """A full memtable became one level-0 run."""
        m = self.metrics
        m.counter("lsm.flushes").inc()
        m.counter("lsm.flush.entries").inc(entries)
        m.counter("lsm.flush.pages").inc(pages)

    def on_compaction(
        self,
        level: int,
        pages_read: int,
        pages_written: int,
        tombstones_dropped: int,
    ) -> None:
        """One compaction (size-triggered or FADE-picked) merged runs."""
        m = self.metrics
        m.counter("lsm.compactions").inc()
        m.counter("lsm.compaction.pages_read").inc(pages_read)
        m.counter("lsm.compaction.pages_written").inc(pages_written)
        m.counter("lsm.compaction.tombstones_dropped").inc(
            tombstones_dropped
        )

    def on_lsm_lookup(self, runs_probed: int, pages_read: int) -> None:
        """One point lookup resolved (read amplification feed)."""
        m = self.metrics
        m.counter("lsm.lookups").inc()
        m.counter("lsm.lookup.runs_probed").inc(runs_probed)
        m.counter("lsm.lookup.pages_read").inc(pages_read)

    # ------------------------------------------------------------------
    # fault-injection hooks (repro.faults)
    # ------------------------------------------------------------------
    def on_fault_event(self, kind: str) -> None:
        """One durable event counted by an armed fault injector
        (``kind`` is ``wal`` or ``page``)."""
        self.metrics.counter("faults.durable_events").inc()
        self.metrics.counter(f"faults.durable_events.{kind}").inc()

    def on_crash(self, description: str) -> None:
        """An injected crash is about to be raised."""
        self.metrics.counter("faults.crashes").inc()
        span = self.tracer.current
        if span is not None:
            span.set(fault=description)

    def on_torn_write(self) -> None:
        self.metrics.counter("faults.torn_page_writes").inc()

    def on_wal_tail_lost(self) -> None:
        """A WAL force that never completed (dropped or torn tail)."""
        self.metrics.counter("faults.wal_tail_lost").inc()

    # ------------------------------------------------------------------
    # media hooks (repro.media + the disk's verified read path)
    # ------------------------------------------------------------------
    def on_checksum_mismatch(self, page_id: int) -> None:
        """A verified read found bytes that fail their stored CRC."""
        self.metrics.counter("media.checksum_mismatches").inc()

    def on_transient_read_error(self, page_id: int) -> None:
        """One read attempt the medium rejected (may recover)."""
        self.metrics.counter("media.transient_read_errors").inc()

    def on_media_retry(self, page_id: int, attempt: int,
                       backoff_ms: float) -> None:
        """The media layer is retrying a failed read after backoff."""
        self.metrics.counter("media.retries").inc()
        self.metrics.timer("media.backoff_ms").add_ms(backoff_ms)

    def on_media_repair(self, page_id: int, source: str) -> None:
        """A page was rewritten from a known-good image
        (``source`` is ``wal`` or ``backup``)."""
        self.metrics.counter("media.repairs").inc()
        self.metrics.counter(f"media.repairs.{source}").inc()

    def on_page_quarantined(self, page_id: int) -> None:
        """Repair gave up; the page is fenced off."""
        self.metrics.counter("media.quarantined_pages").inc()

    def on_scrub(self, pages_checked: int, failures: int,
                 repaired: int) -> None:
        """One scrub pass finished (checksum sweep + reconciliation)."""
        self.metrics.counter("media.scrub.runs").inc()
        self.metrics.counter("media.scrub.pages_checked").inc(pages_checked)
        self.metrics.counter("media.scrub.failures").inc(failures)
        self.metrics.counter("media.scrub.repaired").inc(repaired)

    # ------------------------------------------------------------------
    # retention hooks (repro.retention)
    # ------------------------------------------------------------------
    def on_retention_run(self, policies: int, nodes: int) -> None:
        """A retention run started (``retention_begin`` forced)."""
        self.metrics.counter("retention.runs").inc()
        self.metrics.counter("retention.policies").inc(policies)
        self.metrics.counter("retention.nodes").inc(nodes)

    def on_retention_node(self, action: str, records: int) -> None:
        """One DAG node sealed (``action`` is ``delete``/``set-null``)."""
        name = action.replace("-", "_")
        self.metrics.counter(f"retention.node.{name}").inc()
        self.metrics.counter("retention.records").inc(records)

    def on_retention_resume(self, nodes_skipped: int) -> None:
        """Restart resumed an open retention run to completion."""
        self.metrics.counter("retention.resumes").inc()
        self.metrics.counter("retention.resume.nodes_skipped").inc(
            nodes_skipped
        )

    def on_retention_erase(self, pages_shredded: int,
                           wal_redacted: int) -> None:
        """The erase phase finished (``retention_erased`` forced)."""
        self.metrics.counter("retention.erase.runs").inc()
        self.metrics.counter("retention.erase.pages_shredded").inc(
            pages_shredded
        )
        self.metrics.counter("retention.erase.wal_redacted").inc(wal_redacted)

    def on_retention_audit(self, pages_scanned: int, findings: int) -> None:
        """One unrecoverability audit finished."""
        self.metrics.counter("retention.audits").inc()
        self.metrics.counter("retention.audit.pages_scanned").inc(
            pages_scanned
        )
        self.metrics.counter("retention.audit.findings").inc(findings)


class observed:
    """Context manager: attach an :class:`Observer` for the block.

    ::

        with observed(db) as obs:
            bulk_delete(db, "R", "A", keys)
        print(obs.root_span.elapsed_ms)
    """

    def __init__(self, db: Any) -> None:
        self._db = db
        self.observer: Optional[Observer] = None

    def __enter__(self) -> Observer:
        self.observer = Observer.attach(self._db)
        return self.observer

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        Observer.detach(self._db)


def iter_spans(observer: Observer) -> Iterator[Span]:
    """Every span the observer collected, pre-order, all roots."""
    for root in observer.tracer.roots:
        yield from root.walk()

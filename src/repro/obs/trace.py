"""Per-operator spans over the simulated clock and disk counters.

A :class:`Span` covers one operator (one ``bd`` application, one sort,
one flush...) and records, against **simulated** time:

* when it started and stopped (``SimClock`` milliseconds),
* the exact :class:`~repro.storage.disk.DiskStats` delta its subtree
  caused (reads/writes split by random / sequential / near-sequential),
* the buffer-pool hit/miss/eviction delta,
* free-form attributes (records deleted, runs spilled, ...).

Spans nest like the plan DAG: the *inclusive* cost of a span covers
its children; the *exclusive* (``self_*``) cost subtracts them.  The
root span's inclusive delta therefore equals the disk's grand totals
over the traced region, and the sum of every span's exclusive delta
reconciles with it exactly — the invariant the accounting tests pin.

Spans measure by snapshotting counters the storage layer already
maintains; opening or closing a span never advances the clock, so a
traced run costs exactly what an untraced run costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskStats, SimulatedDisk

#: DiskStats fields exported into traces, in export order.
IO_FIELDS = (
    "reads",
    "writes",
    "random_reads",
    "sequential_reads",
    "near_sequential_reads",
    "random_writes",
    "sequential_writes",
    "near_sequential_writes",
    "pages_allocated",
    "pages_freed",
    "io_time_ms",
)

#: BufferStats fields exported into traces.
BUFFER_FIELDS = ("hits", "misses", "evictions", "dirty_writebacks")


def _io_dict(stats: DiskStats) -> Dict[str, float]:
    return {name: getattr(stats, name) for name in IO_FIELDS}


def _io_minus(a: DiskStats, b: DiskStats) -> DiskStats:
    return a.delta_since(b)


def interval_union_ms(intervals: List[tuple]) -> float:
    """Total length covered by ``(start_ms, end_ms)`` intervals.

    For non-overlapping intervals in ascending order (serial children,
    adjacent or gapped) this sums the individual lengths in list order,
    so it is bit-identical to the plain ``sum(end - start)`` the serial
    accounting always used.  Strictly overlapping intervals (concurrent
    lane spans) are merged so the overlap is counted once.
    """
    total = 0.0
    cover_start: Optional[float] = None
    cover_end = 0.0
    for start, end in sorted(intervals):
        if cover_start is None or start >= cover_end:
            if cover_start is not None:
                total += cover_end - cover_start
            cover_start, cover_end = start, end
        elif end > cover_end:
            cover_end = end
    if cover_start is not None:
        total += cover_end - cover_start
    return total


@dataclass
class Span:
    """One operator's measured interval (simulated time + I/O deltas)."""

    name: str
    kind: str = "op"
    target: Optional[str] = None
    start_ms: float = 0.0
    end_ms: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    buffer: BufferStats = field(default_factory=BufferStats)
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    closed: bool = False

    # -- annotation ----------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (``records_deleted=...``); chainable."""
        self.attrs.update(attrs)
        return self

    # -- derived costs -------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Inclusive simulated time (covers the children)."""
        return self.end_ms - self.start_ms

    @property
    def self_ms(self) -> float:
        """Exclusive simulated time (children subtracted).

        Children are subtracted as the length of the *union* of their
        intervals: for serial (non-overlapping) children this is the
        plain sum of their elapsed times, unchanged; for concurrent
        lane spans — which legitimately overlap in simulated time —
        the overlap counts once, so a parallel region's exclusive time
        is its makespan minus the covered span, never negative.
        """
        return self.elapsed_ms - interval_union_ms(
            [(c.start_ms, c.end_ms) for c in self.children]
        )

    @property
    def self_io(self) -> DiskStats:
        """Exclusive I/O delta (children subtracted)."""
        stats = self.io
        for child in self.children:
            stats = _io_minus(stats, child.io)
        return stats

    @property
    def buffer_hit_ratio(self) -> float:
        return self.buffer.hit_ratio

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (see ``docs/trace_schema.json``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "elapsed_ms": self.elapsed_ms,
            "self_ms": self.self_ms,
            "io": _io_dict(self.io),
            "self_io": _io_dict(self.self_io),
            "buffer": {
                name: getattr(self.buffer, name) for name in BUFFER_FIELDS
            },
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class _OpenSpan:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_io_before", "_buffer_before")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._io_before: Optional[DiskStats] = None
        self._buffer_before: Optional[BufferStats] = None

    def set(self, **attrs: Any) -> "_OpenSpan":
        self.span.set(**attrs)
        return self

    def __enter__(self) -> "_OpenSpan":
        tracer = self._tracer
        self.span.start_ms = tracer.disk.clock.now_ms
        self._io_before = tracer.disk.stats.snapshot()
        if tracer.pool is not None:
            self._buffer_before = tracer.pool.stats.snapshot()
        tracer._push(self.span)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        tracer = self._tracer
        span = self.span
        span.end_ms = tracer.disk.clock.now_ms
        assert self._io_before is not None
        span.io = tracer.disk.stats.delta_since(self._io_before)
        if tracer.pool is not None and self._buffer_before is not None:
            span.buffer = tracer.pool.stats.delta_since(self._buffer_before)
        span.closed = True
        tracer._pop(span)


class _NullSpan:
    """Shared do-nothing stand-in used when no observer is attached."""

    __slots__ = ()
    closed = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def maybe_span(
    observer: Optional[Any],
    name: str,
    kind: str = "op",
    target: Optional[str] = None,
    **attrs: Any,
) -> Any:
    """``observer.span(...)`` or the shared no-op when tracing is off.

    The instrumented executors call this with ``db.obs`` (which is
    ``None`` by default); the disabled path costs one ``is None`` test
    and allocates nothing.
    """
    if observer is None:
        return NULL_SPAN
    return observer.span(name, kind=kind, target=target, **attrs)


class Tracer:
    """Builds the span tree for one traced region.

    Spans opened while another span is open become its children; spans
    opened at the top level are collected in :attr:`roots`.  The usual
    pattern is one root span per statement (``bulk-delete R``) with one
    child per operator.
    """

    def __init__(
        self, disk: SimulatedDisk, pool: Optional[BufferPool] = None
    ) -> None:
        self.disk = disk
        self.pool = pool
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(
        self,
        name: str,
        kind: str = "op",
        target: Optional[str] = None,
        **attrs: Any,
    ) -> _OpenSpan:
        return _OpenSpan(
            self, Span(name=name, kind=kind, target=target, attrs=dict(attrs))
        )

    @property
    def root(self) -> Optional[Span]:
        """The first root span (the usual single-statement case)."""
        return self.roots[0] if self.roots else None

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; spans must nest"
            )
        self._stack.pop()

"""Hierarchical metrics keyed on simulated time.

Metric names are dotted paths (``disk.read.sequential``,
``buffer.hits``, ``sort.spill_pages``, ``disk.file.3.writes``); the
dots are the hierarchy, so a whole subsystem can be read back with
:meth:`MetricsRegistry.subtree`.  Three metric kinds exist:

* :class:`Counter` — monotonically increasing count (pages, hits, runs),
* :class:`Gauge` — last-written value (a level, a ratio),
* :class:`Timer` — accumulated **simulated** milliseconds.  A timer is
  explicitly fed simulated-time deltas (or driven by
  :meth:`Timer.time` around a block); it never reads the host clock —
  the ``code/wall-clock`` lint rule would reject that, and wall time
  means nothing in a simulated cost model.

Metrics are created lazily on first touch: a disabled run (no
:class:`~repro.obs.observer.Observer` attached) therefore has *no*
counters at all, which is what the zero-cost-when-disabled tests pin
down.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from repro.storage.disk import SimClock

MetricValue = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += delta


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """Accumulated simulated milliseconds (plus an observation count)."""

    __slots__ = ("name", "total_ms", "count", "_clock")

    def __init__(self, name: str, clock: Optional[SimClock] = None) -> None:
        self.name = name
        self.total_ms = 0.0
        self.count = 0
        self._clock = clock

    def add_ms(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError(f"timer {self.name} fed a negative delta")
        self.total_ms += delta_ms
        self.count += 1

    def time(self) -> "_TimerBlock":
        """Context manager charging the block's *simulated* elapsed time."""
        if self._clock is None:
            raise ValueError(f"timer {self.name} has no clock to read")
        return _TimerBlock(self, self._clock)


class _TimerBlock:
    __slots__ = ("_timer", "_clock", "_start_ms")

    def __init__(self, timer: Timer, clock: SimClock) -> None:
        self._timer = timer
        self._clock = clock
        self._start_ms = 0.0

    def __enter__(self) -> "_TimerBlock":
        self._start_ms = self._clock.now_ms
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._timer.add_ms(self._clock.now_ms - self._start_ms)


Metric = Union[Counter, Gauge, Timer]


class MetricsRegistry:
    """Lazily created metrics addressed by dotted hierarchical names.

    One registry belongs to one :class:`~repro.obs.observer.Observer`
    (and therefore to one simulated clock); names must keep one kind
    for their lifetime — re-requesting ``disk.reads`` as a gauge after
    it was a counter raises, because the mixed readback would be
    meaningless.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # access / creation
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Timer(name, clock=self._clock)
            self._metrics[name] = metric
        elif not isinstance(metric, Timer):
            raise TypeError(
                f"metric {name} is a {type(metric).__name__}, not a Timer"
            )
        return metric

    def _get(self, name: str, cls: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    # ------------------------------------------------------------------
    # readback
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def value(self, name: str, default: MetricValue = 0) -> MetricValue:
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Timer):
            return metric.total_ms
        return metric.value

    def subtree(self, prefix: str) -> Dict[str, MetricValue]:
        """All metrics under ``prefix.`` (sorted by name)."""
        dotted = prefix + "."
        return {
            name: self.value(name)
            for name in sorted(self._metrics)
            if name.startswith(dotted) or name == prefix
        }

    def snapshot(self) -> Dict[str, MetricValue]:
        """Flat ``name -> value`` view of every metric (sorted)."""
        return {name: self.value(name) for name in sorted(self._metrics)}

    def as_tree(self) -> Dict[str, object]:
        """Nested-dict view: ``a.b.c`` becomes ``{'a': {'b': {'c': v}}}``.

        A name that is both a leaf and an inner node (``disk`` and
        ``disk.reads``) stores its leaf value under the ``''`` key of
        its dict — trace consumers prefer :meth:`snapshot`; this view
        is for humans.
        """
        tree: Dict[str, object] = {}
        for name, value in self.snapshot().items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.get(part)
                if not isinstance(nxt, dict):
                    nxt = {} if nxt is None else {"": nxt}
                    node[part] = nxt
                node = nxt
            leaf = parts[-1]
            existing = node.get(leaf)
            if isinstance(existing, dict):
                existing[""] = value
            else:
                node[leaf] = value
        return tree

    def items(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

"""Building trace export documents (the ``repro trace`` JSON format).

One document holds one or more labelled traces, each pairing a span
tree with the metrics snapshot taken when it was captured.  The format
is described by ``docs/trace_schema.json`` and enforced by
:mod:`repro.obs.schema`; exporters validate their own output before
emitting it so a drifting producer fails loudly, not in CI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.schema import SCHEMA_VERSION, validate_trace
from repro.obs.trace import Span


def trace_entry(
    label: str,
    span: Span,
    metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """One labelled trace: the span tree plus derived totals."""
    return {
        "label": label,
        "span": span.to_dict(),
        "metrics": dict(metrics or {}),
        "totals": {
            "sim_time_ms": span.elapsed_ms,
            "reads": span.io.reads,
            "writes": span.io.writes,
            "random_ios": span.io.random_ios,
            "io_time_ms": span.io.io_time_ms,
            "buffer_hit_ratio": span.buffer.hit_ratio,
        },
    }


def export_document(
    entries: List[Dict[str, Any]],
    workload: Optional[Dict[str, Any]] = None,
    generator: str = "repro trace",
) -> Dict[str, Any]:
    """Assemble and self-validate a full export document."""
    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "generator": generator,
        "traces": entries,
    }
    if workload is not None:
        doc["workload"] = workload
    errors = validate_trace(doc)
    if errors:
        raise ValueError(
            "trace export failed its own schema: " + "; ".join(errors)
        )
    return doc

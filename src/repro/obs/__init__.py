"""Execution observability: metrics, traces, and EXPLAIN ANALYZE.

The paper's whole argument is about *which pages are touched in which
order*; end-to-end simulated time alone cannot attribute a plan's cost
to the operators that incurred it.  ``repro.obs`` is the measurement
layer every performance claim goes through:

* :class:`~repro.obs.metrics.MetricsRegistry` — hierarchical counters,
  gauges and timers keyed on **simulated** time (never the wall clock),
* :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.Span` —
  per-operator spans with simulated start/stop and the exact
  :class:`~repro.storage.disk.DiskStats` /
  :class:`~repro.storage.buffer.BufferStats` deltas each operator
  caused, nested like the plan DAG,
* :class:`~repro.obs.observer.Observer` — the facade the storage and
  query layers report into.  ``Observer.attach(db)`` (or the
  :func:`~repro.obs.observer.observed` context manager) switches a
  database's instrumentation on; when nothing is attached every hook is
  a single ``is None`` check and no counter exists at all.

Surfaces:

* ``EXPLAIN ANALYZE DELETE ...`` (SQL) /
  :func:`~repro.obs.explain.explain_analyze` — runs the statement and
  annotates the operator tree with measured costs next to the
  planner's estimates,
* ``python -m repro trace`` — JSON trace export (one span per
  operator, nestable), validated by :mod:`repro.obs.schema`,
* the bench harness records a trace per run so every report in
  ``benchmarks/_reports/`` carries a per-operator cost breakdown.

Observation is strictly read-only with respect to the simulation: no
hook advances the :class:`~repro.storage.disk.SimClock` or touches a
page, so enabling tracing never changes a simulated result.
"""

from repro.obs.export import export_document, trace_entry
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.observer import Observer, iter_spans, observed
from repro.obs.schema import validate_trace
from repro.obs.trace import NULL_SPAN, Span, Tracer, maybe_span


def __getattr__(name: str) -> object:
    # repro.obs.explain renders executor results, and the executor
    # imports repro.obs.trace for its spans; loading explain lazily
    # keeps that from becoming an import cycle.
    if name in ("explain_analyze", "render_trace"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "Observer",
    "observed",
    "iter_spans",
    "trace_entry",
    "export_document",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "maybe_span",
    "explain_analyze",
    "render_trace",
    "validate_trace",
]

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``sql [script.sql]`` — run a SQL script against a fresh in-memory
  database, or start an interactive shell (``EXPLAIN DELETE ...`` shows
  plans; ``\\stats`` prints I/O counters; ``\\quit`` exits),
* ``experiment <name>`` — regenerate one of the paper's figures/tables
  (``figure_1``, ``figure_7``, ``figure_8``, ``table_1``, ``figure_9``,
  ``figure_10``, or ``all``),
* ``demo`` — a one-minute tour: build a workload, show the plan, run
  the bulk delete and the traditional baseline,
* ``trace`` — run a traced bulk delete (a generated workload, or the
  planner self-check corpus with ``--selfcheck``) and export the
  per-operator spans as JSON (``docs/trace_schema.json``) or text,
* ``oltp`` — the live-traffic interference harness: seeded multi-
  session OLTP traffic (point reads, pad updates, inserts) runs
  concurrently with a bulk delete on one simulated clock, and the
  per-session latency histograms plus the stall-attribution report
  quantify the interference (``--strategy sidefile|chunked|both``;
  ``--selfcheck`` asserts the methodology's invariants end to end;
  see :mod:`repro.workload.traffic` and ``docs/workloads.md``),
* ``faultsweep`` — exhaustive crash-point sweep for the recovery
  path: crash a recoverable bulk delete after every durable event
  (WAL force / page write), recover, and assert the result matches
  the fault-free oracle (see :mod:`repro.faults`); ``--traffic N``
  commits N concurrent user writes at the statement's stage
  boundaries and additionally requires zero lost committed writes,
  and ``--shards K`` sweeps the crash over every global durable event
  of a K-shard recoverable statement sequence instead,
* ``shard`` — range-sharded bulk delete: route a delete list across
  key-range shards (each with its own heap and indexes) and run the
  fragments as independent lane tasks (``--lanes``, ``--shards``);
  ``--selfcheck`` asserts exact-once routing, 1-shard bit-identity
  with the unsharded executor, lane speedup, exact rollup
  reconciliation, and hot-range taming (see :mod:`repro.shard` and
  ``docs/sharding.md``),
* ``mediasweep`` — the media-failure analogue: inject every read-fault
  kind (transient / latent / stuck) on every durable page and assert
  the statement either self-heals to the fault-free oracle or aborts
  typed and clean (see :mod:`repro.media.sweep`),
* ``scrub`` — the online amcheck-style scrubber: checksum-sweep every
  live page and cross-reconcile heaps against their indexes;
  ``--selfcheck`` injects known faults and verifies detection,
  healing, and quarantine end to end,
* ``lint`` (alias ``analysis``) — run the static checkers of
  :mod:`repro.analysis`: the simulation-invariant code lint over the
  package and the plan linter over representative planner output,
* ``effects`` — the whole-program effect engine alone: build the call
  graph, infer per-function effect sets, and check the layering
  contracts and lane safety (``--dot`` dumps the annotated graph).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import Database
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import format_table, shape_checks
from repro.errors import ReproError
from repro.sql.interpreter import SqlSession


def _cmd_sql(args: argparse.Namespace) -> int:
    db = Database(page_size=args.page_size,
                  memory_bytes=args.memory_kb * 1024)
    session = SqlSession(db)
    if args.script:
        with open(args.script) as handle:
            text = handle.read()
        for result in session.execute_script(text):
            _print_result(result)
        return 0
    print("repro sql shell — \\quit to exit, \\stats for I/O counters")
    buffer: List[str] = []
    while True:
        try:
            prompt = "repro> " if not buffer else "  ...> "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        stripped = line.strip()
        if stripped == "\\quit":
            return 0
        if stripped == "\\stats":
            print(db.io_report())
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(buffer)
            buffer = []
            try:
                for result in session.execute_script(statement):
                    _print_result(result)
            except ReproError as exc:
                print(f"error: {exc}")


def _print_result(result) -> None:
    if result.kind == "select":
        for row in result.rows:
            print("  " + "\t".join(str(v) for v in row))
        print(f"({len(result.rows)} rows)")
    elif result.kind == "explain":
        print(result.text)
    elif result.kind == "ddl":
        print(result.text)
    else:
        print(f"{result.kind}: {result.affected} row(s)")


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = (
        list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    )
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; one of "
                  f"{', '.join(ALL_EXPERIMENTS)} or 'all'")
            return 2
        print(f"running {name} at {args.records} records ...")
        series = ALL_EXPERIMENTS[name](record_count=args.records)
        columns = {
            approach: series.scaled_minutes(approach)
            for approach in series.rows
        }
        print(format_table(series.title, series.x_label,
                           series.x_values, columns))
        if args.plot:
            from repro.bench.plots import render_series

            print()
            print(render_series(series))
        for note in shape_checks(series):
            print("  " + note)
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_approach
    from repro.core.operator import render_plan_dag
    from repro.core.planner import choose_plan
    from repro.workload.generator import WorkloadConfig, build_workload

    config = WorkloadConfig(record_count=args.records,
                            index_columns=("A", "B", "C"))
    print(f"building R with {config.record_count} records "
          f"(512 B each) and 3 indexes ...")
    workload = build_workload(config)
    keys = workload.delete_keys(0.15)
    plan = choose_plan(workload.db, "R", "A", len(keys),
                       force_vertical=True)
    print("\nthe vertical plan (cf. the paper's Figure 3):")
    print(render_plan_dag(plan))
    print()
    bulk = run_approach("bulk", config, 0.15)
    trad = run_approach("not sorted/trad", config, 0.15)
    print(f"bulk delete:        {bulk.sim_seconds:8.2f}s simulated "
          f"({bulk.scaled_minutes:6.1f} paper-scale minutes)")
    print(f"traditional delete: {trad.sim_seconds:8.2f}s simulated "
          f"({trad.scaled_minutes:6.1f} paper-scale minutes)")
    print(f"speedup: {trad.sim_seconds / bulk.sim_seconds:.1f}x")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.core.executor import bulk_delete
    from repro.obs.explain import render_trace
    from repro.obs.export import export_document, trace_entry
    from repro.obs.observer import observed
    from repro.obs.trace import Span

    entries = []
    roots = []
    if args.selfcheck:
        # Execute the planner self-check corpus end-to-end: one trace
        # per case.  CI pipes the JSON through repro.obs.schema.
        from repro.analysis.selfcheck import CASES, _build_case_db

        workload = {"corpus": "planner-selfcheck", "cases": len(CASES)}
        for case in CASES:
            db = _build_case_db(case)
            with observed(db) as obs:
                bulk_delete(
                    db,
                    "R",
                    "A",
                    list(range(case.n_deletes)),
                    prefer_method=case.prefer_method,
                    force_vertical=case.force_vertical,
                )
                root = obs.tracer.root
                assert isinstance(root, Span)
                entries.append(
                    trace_entry(case.name, root, obs.metrics.snapshot())
                )
                roots.append((case.name, root))
    else:
        from repro.workload.generator import WorkloadConfig, build_workload

        config = WorkloadConfig(
            record_count=args.records, index_columns=("A", "B", "C")
        )
        generated = build_workload(config)
        keys = generated.delete_keys(args.fraction)
        workload = {
            "records": args.records,
            "fraction": args.fraction,
            "n_deletes": len(keys),
        }
        db = generated.db
        with observed(db) as obs:
            bulk_delete(db, "R", "A", keys, force_vertical=True)
            root = obs.tracer.root
            assert isinstance(root, Span)
            entries.append(
                trace_entry("bulk-delete", root, obs.metrics.snapshot())
            )
            roots.append(("bulk-delete", root))

    if args.format == "json":
        text = json.dumps(
            export_document(entries, workload=workload), indent=2
        )
    else:
        blocks = []
        for label, root in roots:
            blocks.append(f"== {label} ==\n" + render_trace(root))
        text = "\n\n".join(blocks)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(entries)} trace(s) to {args.out}")
    else:
        print(text)
    return 0


def _cmd_oltp(args: argparse.Namespace) -> int:
    from repro.workload.traffic import (
        TrafficConfig,
        build_interference_report,
        run_interference_comparison,
    )

    strategies = (
        ["sidefile", "chunked"]
        if args.strategy == "both" or args.selfcheck
        else [args.strategy]
    )
    if args.selfcheck:
        # Small but non-degenerate: enough sessions and ops that both
        # stall kinds occur and the percentile ordering is meaningful.
        records, sessions, ops = 1200, 6, 30
    else:
        records, sessions, ops = args.records, args.sessions, args.ops
    config = TrafficConfig(
        sessions=sessions, ops_per_session=ops, seed=args.seed
    )
    results = run_interference_comparison(
        record_count=records,
        sessions=config.sessions,
        ops_per_session=config.ops_per_session,
        seed=config.seed,
        fraction=args.fraction,
        chunk_rows=args.chunk_rows,
        strategies=tuple(strategies),
    )
    failures: List[str] = []
    for name in strategies:
        result = results[name]
        report = build_interference_report(result)
        print(report.render())
        print()
        problems = result.reconcile(result.workload.db.obs)
        for problem in problems:
            failures.append(f"{name}: {problem}")
    if args.selfcheck:
        p99 = {
            name: results[name].phase_hist("during").percentile(99)
            for name in strategies
        }
        if not p99["sidefile"] < p99["chunked"]:
            failures.append(
                "selfcheck: side-file p99-during "
                f"{p99['sidefile']:.1f}ms is not below chunked "
                f"{p99['chunked']:.1f}ms"
            )
        for name in strategies:
            if results[name].records_deleted == 0:
                failures.append(f"selfcheck: {name} deleted nothing")
        status = "ok" if not failures else f"{len(failures)} failure(s)"
        print(f"oltp selfcheck: {status}")
    for failure in failures:
        print(f"  FAIL: {failure}")
    return 1 if failures else 0


def _sweep_payload(kind: str, report: object) -> dict:
    """Machine-readable sweep outcome (``faultsweep --format json``)."""
    import dataclasses

    data = dataclasses.asdict(report)  # type: ignore[call-overload]
    data["sweep"] = kind
    data["ok"] = report.ok  # type: ignore[attr-defined]
    data["failures"] = len(report.failures)  # type: ignore[attr-defined]
    return data


def _emit_sweep(args: argparse.Namespace, kind: str, report: object) -> int:
    """Print one sweep report in the selected format; exit status."""
    import json

    if args.format == "json":
        print(json.dumps(_sweep_payload(kind, report), indent=2))
        return 0 if report.ok else 1  # type: ignore[attr-defined]
    print(report.summary())  # type: ignore[attr-defined]
    if not report.ok:  # type: ignore[attr-defined]
        for failure in report.failures:  # type: ignore[attr-defined]
            print(f"  {failure}")
        return 1
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults import crash_point_sweep
    from repro.faults.sweep import SweepScenario

    verbose = print if args.verbose and args.format != "json" else None

    if args.retention:
        import json

        from repro.retention import (
            audit_mutation_checks,
            retention_media_sweep,
            retention_sweep,
        )

        crash_report = retention_sweep(
            max_points=args.max_points, log_fn=verbose,
        )
        media_report = retention_media_sweep(
            max_points=args.max_points, log_fn=verbose,
        )
        mutation_failures = audit_mutation_checks(log_fn=verbose)
        ok = (
            crash_report.ok and media_report.ok and not mutation_failures
        )
        if args.format == "json":
            print(json.dumps({
                "sweep": "retention",
                "ok": ok,
                "crash": _sweep_payload("retention-crash", crash_report),
                "media": _sweep_payload("retention-media", media_report),
                "mutations": {
                    "ok": not mutation_failures,
                    "checks": 4,
                    "failures": mutation_failures,
                },
            }, indent=2))
            return 0 if ok else 1
        print("crash pass:  " + crash_report.summary())
        print("media pass:  " + media_report.summary())
        print(
            "mutation pass: 4 planted traces, "
            f"{len(mutation_failures)} missed"
        )
        for failure in mutation_failures:
            print(f"  FAIL {failure}")
        return 0 if ok else 1

    if args.lsm:
        from repro.lsm import LsmSweepScenario, lsm_crash_sweep

        report = lsm_crash_sweep(
            scenario=dataclasses.replace(
                LsmSweepScenario(), records=args.records, torn=args.torn,
            ),
            max_points=args.max_points,
            log_fn=verbose,
        )
        return _emit_sweep(args, "lsm", report)

    if args.shards > 0:
        from repro.shard import ShardSweepScenario, shard_crash_sweep

        report = shard_crash_sweep(
            scenario=dataclasses.replace(
                ShardSweepScenario(),
                records=args.records, shards=args.shards,
            ),
            max_points=args.max_points,
            log_fn=verbose,
        )
        return _emit_sweep(args, "shard", report)

    scenario = dataclasses.replace(
        SweepScenario(), records=args.records, lanes=args.lanes,
        traffic_ops=args.traffic,
    )
    report = crash_point_sweep(
        scenario=scenario,
        max_points=args.max_points,
        double_crash=not args.no_double,
        torn_writes=args.torn,
        wal_tail=args.wal_tail,
        log_fn=verbose,
    )
    return _emit_sweep(args, "crash", report)


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.selfcheck:
        return _shard_selfcheck()
    from repro.shard import sharded_bulk_delete
    from repro.workload.generator import (
        WorkloadConfig,
        build_sharded_workload,
    )

    config = WorkloadConfig(
        record_count=args.records, index_columns=("A",),
        memory_paper_mb=5.0,
    )
    workload = build_sharded_workload(config, shards=args.shards)
    keys = workload.delete_keys(0.15)
    workload.reset_measurements()
    result = sharded_bulk_delete(
        workload.db, "R", "A", keys, lanes=args.lanes
    )
    print(result.plan.explain())
    print(result.summary())
    problems = result.reconciliation_problems()
    for problem in problems:
        print(f"  reconciliation problem: {problem}")
    return 0 if not problems else 1


def _shard_selfcheck() -> int:
    """Assert the sharding layer's invariants on fixed scenarios."""
    from repro.core.executor import bulk_delete
    from repro.shard import choose_sharded_plan, sharded_bulk_delete
    from repro.shard.planning import HOT_SERIALIZE, HOT_SPLIT
    from repro.workload.generator import (
        WorkloadConfig,
        build_sharded_workload,
        build_workload,
    )

    failures: List[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    config = WorkloadConfig(
        record_count=2000, index_columns=("A",), memory_paper_mb=5.0
    )

    # 1. Routing covers every key exactly once and the plan lints clean.
    workload = build_sharded_workload(config, shards=4)
    keys = workload.delete_keys(0.15)
    plan = choose_sharded_plan(workload.db, "R", "A", keys, lanes=2)
    routed = [k for frag in plan.fragments for k in frag.keys]
    check(
        "every key routed to exactly one fragment",
        sorted(routed) == sorted(keys),
    )
    from repro.analysis.plan_lint import lint_sharded_plan
    check(
        "sharded plan lints clean",
        not lint_sharded_plan(plan, workload.db),
    )

    # 2. One shard on one lane is bit-identical to the unsharded
    #    executor (same keys, same simulated clock, to the last bit).
    plain = build_workload(config)
    plain_keys = plain.delete_keys(0.15)
    plain.reset_measurements()
    serial_result = bulk_delete(
        plain.db, "R", "A", plain_keys, force_vertical=True
    )
    single = build_sharded_workload(config, shards=1)
    single_keys = single.delete_keys(0.15)
    single.reset_measurements()
    sharded_result = sharded_bulk_delete(
        single.db, "R", "A", single_keys, lanes=1
    )
    check(
        "1 shard x 1 lane is bit-identical to the unsharded executor",
        plain_keys == single_keys
        and sharded_result.elapsed_ms == serial_result.elapsed_ms  # lint: allow(float-cost-eq)
        and single.db.clock.now_ms == plain.db.clock.now_ms  # lint: allow(float-cost-eq)
        and sharded_result.records_deleted == serial_result.records_deleted,
    )

    # 3. Four shards on two dedicated lanes: the region speeds up and
    #    the logical outcome matches the serial sharded run.
    workload = build_sharded_workload(config, shards=4)
    keys = workload.delete_keys(0.15)
    workload.reset_measurements()
    observer = workload.db.observe()
    result = sharded_bulk_delete(workload.db, "R", "A", keys, lanes=2)
    workload.db.unobserve()
    baseline = build_sharded_workload(config, shards=4)
    baseline.reset_measurements()
    serial = sharded_bulk_delete(baseline.db, "R", "A", keys, lanes=1)
    check(
        "2 dedicated lanes beat serial over 4 shards (>=1.9x region)",
        result.region is not None and result.region.speedup >= 1.9,
    )
    check(
        "parallel and serial sharded runs delete the same rows",
        result.records_deleted == serial.records_deleted
        and sorted(r[0] for r in workload.db.scan("R"))
        == sorted(r[0] for r in baseline.db.scan("R")),
    )

    # 4. Rollups reconcile exactly and the shard.* metrics were fed.
    check(
        "lane/fragment/row rollups reconcile exactly",
        not result.reconciliation_problems()
        and not serial.reconciliation_problems(),
    )
    metrics = observer.metrics
    check(
        "shard.* metrics record the routing",
        metrics.value("shard.route.calls") == 1
        and metrics.value("shard.route.keys") == len(keys)
        and metrics.value("shard.accesses") == len(keys),
    )

    # 5. Hot ranges are tamed: an oversized fragment splits, a
    #    traffic-skewed shard serializes.  (The factor-2 threshold
    #    needs the skew to *double* the mean — a fragment can never be
    #    hot-by-size against only one sibling.)
    workload = build_sharded_workload(config, shards=4)
    table = workload.db.table("R")
    bounds = table.shard_map.bounds
    skewed = [a for a in workload.a_values if a < bounds[0]][:200]
    skewed += [
        a for a in workload.a_values if bounds[0] <= a < bounds[1]
    ][:10]
    skewed += [a for a in workload.a_values if a >= bounds[-1]][:10]
    hot_plan = choose_sharded_plan(
        workload.db, "R", "A", skewed, lanes=2, hot_factor=2.0
    )
    check(
        "oversized fragment is split into serialized pieces",
        any(f.policy == HOT_SPLIT for f in hot_plan.fragments),
    )
    for shard_id in (0, 1, 3):
        table.note_shard_access(shard_id, 10)
    for _ in range(70):
        table.note_shard_access(2, 10)
    even = workload.delete_keys(0.15)
    skew_plan = choose_sharded_plan(
        workload.db, "R", "A", even, lanes=2, hot_factor=2.0
    )
    check(
        "traffic-skewed shard is serialized out of the lane region",
        any(
            f.policy == HOT_SERIALIZE and f.shard_id == 2
            for f in skew_plan.fragments
        ),
    )

    status = "ok" if not failures else f"{len(failures)} failure(s)"
    print(f"shard selfcheck: {status}")
    return 0 if not failures else 1


def _cmd_lsm(args: argparse.Namespace) -> int:
    if args.selfcheck:
        return _lsm_selfcheck()
    from repro.catalog.database import Database
    from repro.catalog.schema import Attribute, TableSchema
    from repro.core.planner import choose_plan
    from repro.lsm import LsmConfig, lsm_bulk_delete

    db = Database(page_size=4096, memory_bytes=64 * 4096)
    db.create_table(
        TableSchema.of(
            "R", [Attribute.int_("A"), Attribute.char("PAD", 24)]
        ),
        engine="lsm",
        lsm_config=LsmConfig(memtable_entries=64),
    )
    db.load_table(
        "R", [(a, f"row{a}") for a in range(args.records)]
    )
    # Half the delete list is one contiguous block (compiled to a
    # range tombstone), half is scattered points.
    n_keys = int(args.records * args.fraction)
    block = list(range(args.records // 4, args.records // 4 + n_keys // 2))
    scattered = [
        k for k in range(0, args.records, 5) if k not in set(block)
    ][: n_keys - len(block)]
    keys = block + scattered
    plan = choose_plan(db, "R", "A", keys)
    print(plan.explain())
    result = lsm_bulk_delete(db, "R", "A", keys, plan=plan)
    tree = db.table("R").lsm
    assert tree is not None
    print(
        f"deleted {result.records_deleted} rows in "
        f"{result.elapsed_ms / 1000:.2f}s: "
        f"{result.point_tombstones} point + "
        f"{result.range_tombstones} range tombstones, "
        f"{result.flushes} flushes, {result.compactions} compactions "
        f"({result.tombstones_dropped} tombstones dropped)"
    )
    print(
        f"tree after delete: levels {tree.level_shape()}, "
        f"{tree.data_pages} data pages, "
        f"{tree.tombstone_count} live tombstones"
    )
    return 0


def _lsm_selfcheck() -> int:
    """Exercise the LSM engine end to end on fixed tiny scenarios."""
    from repro.catalog.database import Database
    from repro.catalog.schema import Attribute, TableSchema
    from repro.core.planner import choose_plan
    from repro.lsm import (
        LsmConfig,
        LsmTree,
        lsm_bulk_delete,
    )
    from repro.lsm.planning import LsmDeletePlan

    failures: List[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    def fresh() -> Database:
        db = Database(page_size=512, memory_bytes=24 * 512)
        db.create_table(
            TableSchema.of(
                "R", [Attribute.int_("A"), Attribute.char("PAD", 20)]
            ),
            engine="lsm",
            lsm_config=LsmConfig(
                memtable_entries=8, l0_runs=2, run_pages=2,
                level_runs=2, fanout=2,
                tombstone_density_trigger=0.2, tombstone_age_seqs=64,
                max_delete_compactions=4,
            ),
        )
        return db

    def tree_of(db: Database) -> LsmTree:
        tree = db.table("R").lsm
        assert tree is not None
        return tree

    # 1. Inserts through the log path are visible from the memtable,
    #    across flushes, and survive overwrites (last write wins).
    db = fresh()
    model = {}
    for a in range(40):
        db.insert("R", (a, f"row{a}"))
        model[a] = (a, f"row{a}")
    db.insert("R", (7, "seven"))
    model[7] = (7, "seven")
    check(
        "inserts + overwrite visible across memtable flushes",
        dict(db.scan("R")) == model
        and tree_of(db).run_count > 0,
    )

    # 2. Point and range deletes hide rows exactly, scan == dict model.
    for a in (3, 11, 39):
        tree_of(db).delete(a)
        model.pop(a)
    tree_of(db).delete_range(20, 29)
    for a in range(20, 30):
        model.pop(a, None)
    check(
        "point + range tombstones hide exactly the targeted rows",
        dict(db.scan("R")) == model,
    )

    # 3. Flush + compaction preserve the visible state and eventually
    #    drop every tombstone without resurrecting a row.
    tree = tree_of(db)
    tree.flush_memtable()
    tree.compact_all()
    check(
        "compact_all drops every tombstone, resurrects nothing",
        dict(db.scan("R")) == model and tree.tombstone_count == 0,
    )

    # 4. choose_plan dispatches LSM tables to an exact tombstone plan.
    db = fresh()
    db.load_table("R", [(a, f"row{a}") for a in range(64)])
    keys = list(range(16, 36)) + list(range(40, 64, 2))
    plan = choose_plan(db, "R", "A", keys)
    check(
        "choose_plan returns an exact LsmDeletePlan",
        isinstance(plan, LsmDeletePlan)
        and plan.range_tombstones == 1
        and plan.point_tombstones == 12,
    )

    # 5. The executed delete reconciles with its plan and the model.
    result = lsm_bulk_delete(db, "R", "A", keys, plan=plan)
    survivors = {a: (a, f"row{a}") for a in range(64) if a not in set(keys)}
    check(
        "lsm_bulk_delete deletes exactly the targeted live rows",
        result.records_deleted == len(set(keys))
        and dict(db.scan("R")) == survivors,
    )
    check(
        "executed tombstone mix matches the plan",
        result.point_tombstones == plan.point_tombstones
        and result.range_tombstones == plan.range_tombstones,
    )

    # 6. FADE ran during the delete and dropped tombstones at depth.
    check(
        "FADE compactions fired and dropped tombstones",
        result.compactions > 0 and result.tombstones_dropped > 0,
    )

    # 7. Recovery from durable state alone is byte-identical, twice.
    table = db.table("R")
    assert table.lsm is not None
    db.pool.invalidate_all()
    table.lsm = LsmTree.recover(
        db.pool, table.lsm.handle, config=table.lsm.config, name="R"
    )
    once = dict(db.scan("R"))
    db.pool.invalidate_all()
    table.lsm = LsmTree.recover(
        db.pool, table.lsm.handle, config=table.lsm.config, name="R"
    )
    check(
        "recovery is byte-identical and terminal",
        once == survivors and dict(db.scan("R")) == survivors,
    )

    # 8. bulk_load lands the same visible state as the log path.
    loaded = fresh()
    loaded.load_table("R", [(a, f"row{a}") for a in range(40)])
    logged = fresh()
    for a in range(40):
        logged.insert("R", (a, f"row{a}"))
    check(
        "bulk_load state matches the log-path state",
        dict(loaded.scan("R")) == dict(logged.scan("R")),
    )
    check(
        "bulk_load is cheaper than the log path",
        loaded.disk.stats.writes < logged.disk.stats.writes,
    )

    # 9. vacuum compacts to a tombstone-free tree through the facade.
    stats = db.vacuum("R")
    check(
        "vacuum reports compactions and leaves zero tombstones",
        "lsm_compactions" in stats
        and tree_of(db).tombstone_count == 0
        and dict(db.scan("R")) == survivors,
    )

    status = "ok" if not failures else f"{len(failures)} failure(s)"
    print(f"lsm selfcheck: {status}")
    return 0 if not failures else 1


def _cmd_mediasweep(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults.sweep import SweepScenario
    from repro.media import media_sweep

    scenario = dataclasses.replace(SweepScenario(), records=args.records)
    report = media_sweep(
        scenario=scenario,
        max_points=args.max_points,
        log_fn=print if args.verbose else None,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults.sweep import SweepScenario
    from repro.media import scrub_database

    scenario = dataclasses.replace(SweepScenario(), records=args.records)
    if args.selfcheck:
        return _scrub_selfcheck(scenario)
    case = scenario.build()
    report = scrub_database(case.db)
    print(report.summary())
    return 0 if report.ok else 1


def _scrub_selfcheck(scenario) -> int:
    """Inject known media faults and verify the scrubber end to end."""
    from repro.errors import QuarantinedPage
    from repro.faults import STUCK, TRANSIENT, FaultInjector, FaultPlan
    from repro.media import MediaRecovery, require_scrubbed, scrub_database

    failures: List[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    # 1. A clean database scrubs clean, every live page verified.
    case = scenario.build()
    db, disk = case.db, case.db.disk
    report = scrub_database(db)
    check(
        "clean database scrubs clean",
        report.ok and report.pages_checked == len(disk.page_ids()),
    )

    # 2. Latent corruption is detected even without a media layer ...
    page = disk.page_ids()[len(disk.page_ids()) // 2]
    image = disk.durable_image(page)
    disk.corrupt_page(page, bytes([image[0] ^ 0xFF]) + image[1:])
    report = scrub_database(db)
    check(
        "latent corruption detected (no media layer)",
        page in report.checksum_failures
        and page in report.unrepaired
        and not report.ok,
    )

    # 3. ... and healed in place with one.
    media = MediaRecovery(disk, image_sources=[("backup", {page: image}.get)])
    report = scrub_database(db, media=media)
    check(
        "latent corruption healed from a backup image",
        report.ok and page in report.repaired,
    )
    check("healed bytes match the original", disk.durable_image(page) == image)

    # 4. Transient read faults heal by retrying with simulated backoff.
    case = scenario.build()
    db, disk = case.db, case.db.disk
    page = disk.page_ids()[0]
    injector = FaultInjector(
        FaultPlan(read_fault=TRANSIENT, read_fault_page=page)
    )
    media = MediaRecovery(disk)
    with injector.armed(disk):
        report = scrub_database(db, media=media)
    check(
        "transient fault healed by retry",
        report.ok and media.stats.retries == 2,
    )
    check(
        "backoff charged to the simulated clock",
        media.stats.backoff_ms > 0,
    )

    # 5. Cross-reconciliation catches structures that drift apart.
    table = db.table("R")
    tree = next(iter(table.indexes.values())).tree
    tree._entry_count += 1
    report = scrub_database(db)
    check(
        "entry-count drift detected by reconciliation",
        any("entry_count" in problem for problem in report.problems),
    )
    tree._entry_count -= 1

    # 6. Stuck bits defeat repair: quarantine + typed abort; replacing
    #    the medium (restore_page) lifts the fence.
    case = scenario.build()
    db, disk = case.db, case.db.disk
    page = disk.page_ids()[1]
    backup = {pid: disk.durable_image(pid) for pid in disk.page_ids()}
    injector = FaultInjector(
        FaultPlan(read_fault=STUCK, read_fault_page=page)
    )
    media = MediaRecovery(disk, image_sources=[("backup", backup.get)])
    aborted_on: Optional[int] = None
    with injector.armed(disk):
        try:
            require_scrubbed(db, media=media, check_structures=False)
        except QuarantinedPage as exc:
            aborted_on = exc.page_id
    check(
        "stuck bits abort typed (QuarantinedPage names the page)",
        aborted_on == page and disk.quarantined == {page},
    )
    disk.restore_page(page, backup[page])
    report = scrub_database(db)
    check("restore_page lifts the quarantine", report.ok)

    status = "ok" if not failures else f"{len(failures)} failure(s)"
    print(f"scrub selfcheck: {status}")
    return 0 if not failures else 1


def _cmd_retention(args: argparse.Namespace) -> int:
    from repro.retention import RetentionScenario, audit_erasure

    if args.selfcheck:
        return _retention_selfcheck()

    scenario = RetentionScenario()
    case = scenario.build()
    obs = case.db.observe()
    plans = case.compile()
    print("compiled retention DAG (children-first, engine-dispatched):")
    for plan in plans:
        print()
        print(plan.explain())

    from repro.retention.run import RecoverableRetentionRun

    report = RecoverableRetentionRun(
        case.db, plans, case.log, full_page_writes=True,
    ).run()
    print()
    print(
        f"run @lsn {report.run_lsn}: {report.nodes} node(s), "
        f"{report.records_deleted} record(s) deleted, "
        f"{report.records_nulled} reference(s) nulled"
    )
    erase = report.erase
    print(
        "erase pass: "
        f"{erase.heap_pages_compacted} heap page(s) compacted, "
        f"{erase.btree_pages_scrubbed} B-tree page(s) scrubbed, "
        f"{erase.lsm_compactions} LSM compaction(s), "
        f"{erase.pages_shredded} page(s) shredded, "
        f"{erase.wal_records_redacted} WAL record(s) redacted, "
        f"{erase.wal_images_replaced} WAL image(s) replaced"
    )

    audit = audit_erasure(case.db, case.log, case.witness(plans))
    print(f"audit: {audit.summary()}")
    for finding in audit.findings[:10]:
        print(f"  {finding.describe()}")

    print()
    print("retention.* metrics:")
    for name, value in obs.metrics.snapshot().items():
        if name.startswith("retention."):
            print(f"  {name} = {value}")
    return 0 if audit.ok else 1


def _retention_selfcheck() -> int:
    """End-to-end retention checks on the fixed two-policy scenario."""
    import copy

    from repro.analysis.plan_lint import lint_retention_plan
    from repro.errors import IntegrityViolationError
    from repro.faults import FaultInjector, FaultPlan, SimulatedCrash
    from repro.faults.sweep import capture_state
    from repro.retention import (
        RecoverableRetentionRun,
        RetentionPolicy,
        RetentionScenario,
        audit_erasure,
        audit_mutation_checks,
        compile_policy,
        recover_retention,
        retention_integrity_problems,
        retention_media_sweep,
        retention_sweep,
    )

    failures: List[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    scenario = RetentionScenario()

    # 1. The compiler is deterministic: two independent builds of the
    #    same scenario produce byte-identical EXPLAIN text.
    def explains() -> str:
        case = scenario.build()
        return "\n\n".join(plan.explain() for plan in case.compile())

    check("policy compiler is deterministic", explains() == explains())

    # 2. A clean run erases everything: zero-finding audit, internal
    #    consistency, and a terminal recovery (nothing left to resume).
    case = scenario.build()
    plans = case.compile()
    report = RecoverableRetentionRun(
        case.db, plans, case.log, full_page_writes=True,
    ).run()
    check(
        "clean run deletes and nulls records",
        report.records_deleted > 0 and report.records_nulled > 0,
    )
    audit = audit_erasure(case.db, case.log, case.witness(plans))
    check("clean run passes the unrecoverability audit", audit.ok)
    check(
        "post-run state is internally consistent",
        not retention_integrity_problems(
            case.db, case.registry, case.victims
        ),
    )
    check(
        "recovery after a complete run is terminal",
        not recover_retention(case.db, case.log).resumed,
    )
    oracle = capture_state(case.db)

    # 3. Resume from a representative mid-run crash point.
    counter = FaultInjector()
    probe = scenario.build()
    RecoverableRetentionRun(
        probe.db, probe.compile(), probe.log,
        faults=counter, full_page_writes=True,
    ).run()
    midpoint = counter.durable_event_count // 2
    case = scenario.build()
    plans = case.compile()
    crashed = False
    try:
        RecoverableRetentionRun(
            case.db, plans, case.log,
            faults=FaultInjector(FaultPlan(crash_after_event=midpoint)),
            full_page_writes=True,
        ).run()
    except SimulatedCrash:
        crashed = True
    recovery = recover_retention(case.db, case.log, full_page_writes=True)
    check(
        "mid-run crash resumes to the oracle state",
        crashed
        and recovery.resumed
        and capture_state(case.db) == oracle,
    )
    check(
        "resumed run passes the audit",
        audit_erasure(case.db, case.log, case.witness(plans)).ok,
    )

    # 4. A RESTRICT violation aborts at compile time, pre-durable.
    case = scenario.build()
    before = capture_state(case.db)
    uid_idx = case.db.table("users").schema.column_index("UID")
    survivor = next(
        values[uid_idx]
        for _, values in case.db.scan("users")
        if values[uid_idx] not in set(case.victims)
    )
    restricted = RetentionPolicy(
        "restricted", "users", "UID", subject_keys=(survivor,),
    )
    aborted = False
    try:
        compile_policy(case.db, case.registry, restricted)
    except IntegrityViolationError:
        aborted = True
    check(
        "RESTRICT aborts at compile time with nothing durable",
        aborted and capture_state(case.db) == before,
    )

    # 5. The coverage lint: clean plans lint clean; a dropped node is
    #    a coverage hole the linter must flag.
    case = scenario.build()
    plans = case.compile()
    check(
        "retention plans lint clean",
        all(not lint_retention_plan(p, db=case.db) for p in plans),
    )
    broken = copy.deepcopy(plans[0])
    broken.nodes = broken.nodes[1:]
    check(
        "lint flags a dropped DAG node",
        bool(lint_retention_plan(broken, db=case.db)),
    )

    # 6. The audit is not vacuously green: planted traces are caught.
    mutation_failures = audit_mutation_checks(scenario)
    check("audit mutation checks (4 planted traces)",
          not mutation_failures)
    for failure in mutation_failures:
        print(f"    {failure}")

    # 7. Bounded crash + media sweeps (the CI-sized versions of
    #    `faultsweep --retention`).
    crash_report = retention_sweep(scenario, max_points=6)
    check(
        f"bounded crash sweep ({len(crash_report.points)} points)",
        crash_report.ok,
    )
    media_report = retention_media_sweep(scenario, max_points=4)
    check(
        f"bounded media sweep ({len(media_report.pages)} pages)",
        media_report.ok,
    )

    status = "ok" if not failures else f"{len(failures)} failure(s)"
    print(f"retention selfcheck: {status}")
    return 0 if not failures else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.__main__ import main as analysis_main

    argv: List[str] = ["--format", args.format]
    if args.root:
        argv += ["--root", args.root]
    if args.skip_code:
        argv.append("--skip-code")
    if args.skip_plans:
        argv.append("--skip-plans")
    if args.skip_effects:
        argv.append("--skip-effects")
    if args.strict:
        argv.append("--strict")
    return analysis_main(argv)


def _cmd_effects(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.code_lint import default_root
    from repro.analysis.effects import analyze_effects
    from repro.analysis.findings import Severity, render_findings

    root = Path(args.root) if args.root else default_root()
    # The checked-in baseline describes the repro tree; a custom root
    # runs against an empty baseline (see analysis/__main__.py).
    if root == default_root():
        report = analyze_effects(root)
    else:
        report = analyze_effects(root, baseline=())
    if args.dot:
        try:
            print(report.graph.to_dot())
        except BrokenPipeError:  # `repro effects --dot | head` is fine
            pass
        return 0
    graph = report.graph
    errors = sum(
        1 for f in report.findings if f.severity is Severity.ERROR
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": errors == 0,
                    "functions": len(graph.functions),
                    "call_edges": sum(
                        len(n.calls) for n in graph.functions.values()
                    ),
                    "lane_dispatches": len(graph.lane_dispatches),
                    "findings": [f.to_dict() for f in report.findings],
                    "suppressed": [
                        f.to_dict() for f in report.suppressed
                    ],
                },
                indent=2,
            )
        )
    else:
        if report.findings:
            print(render_findings(report.findings))
        print(
            f"repro effects: {len(graph.functions)} functions, "
            f"{len(graph.lane_dispatches)} lane dispatch sites, "
            f"{len(report.findings)} finding(s) "
            f"({len(report.suppressed)} baselined) — "
            + ("FAIL" if errors else "ok")
        )
    return 1 if errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient Bulk Deletes in Relational Databases "
        "(ICDE 2001) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sql = sub.add_parser("sql", help="run a SQL script or a shell")
    p_sql.add_argument("script", nargs="?", help="SQL script file")
    p_sql.add_argument("--page-size", type=int, default=4096)
    p_sql.add_argument("--memory-kb", type=int, default=256)
    p_sql.set_defaults(func=_cmd_sql)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure")
    p_exp.add_argument("name", help="figure_1|figure_7|figure_8|table_1|"
                                    "figure_9|figure_10|all")
    p_exp.add_argument("--records", type=int, default=8000)
    p_exp.add_argument("--plot", action="store_true",
                       help="draw an ASCII chart of the series")
    p_exp.set_defaults(func=_cmd_experiment)

    p_demo = sub.add_parser("demo", help="one-minute guided tour")
    p_demo.add_argument("--records", type=int, default=5000)
    p_demo.set_defaults(func=_cmd_demo)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced bulk delete and export per-operator spans",
    )
    p_trace.add_argument("--selfcheck", action="store_true",
                         help="trace the planner self-check corpus "
                         "instead of a generated workload")
    p_trace.add_argument("--records", type=int, default=2000,
                         help="workload size (ignored with --selfcheck)")
    p_trace.add_argument("--fraction", type=float, default=0.15,
                         help="fraction of records to delete")
    p_trace.add_argument("--format", choices=("json", "text"),
                         default="json")
    p_trace.add_argument("--out", default=None,
                         help="write to a file instead of stdout")
    p_trace.set_defaults(func=_cmd_trace)

    p_oltp = sub.add_parser(
        "oltp",
        help="run seeded multi-session OLTP traffic concurrent with a "
        "bulk delete and print the latency-interference report",
    )
    p_oltp.add_argument("--sessions", type=int, default=8,
                        help="concurrent simulated user sessions")
    p_oltp.add_argument("--ops", type=int, default=40,
                        help="operations per session")
    p_oltp.add_argument("--records", type=int, default=2000,
                        help="rows in the table under traffic")
    p_oltp.add_argument("--seed", type=int, default=1042,
                        help="seed for arrivals, op mix and key choice")
    p_oltp.add_argument("--strategy",
                        choices=("sidefile", "chunked", "both"),
                        default="both",
                        help="delete strategy to run against the "
                        "traffic (default: both, for comparison)")
    p_oltp.add_argument("--fraction", type=float, default=0.15,
                        help="fraction of records the delete removes")
    p_oltp.add_argument("--chunk-rows", type=int, default=64,
                        help="rows per chunk for the chunked strategy")
    p_oltp.add_argument("--selfcheck", action="store_true",
                        help="run both strategies on a fixed small "
                        "scenario and assert the methodology's "
                        "invariants (exact reconciliation, side-file "
                        "beating chunked on p99)")
    p_oltp.set_defaults(func=_cmd_oltp)

    p_sweep = sub.add_parser(
        "faultsweep",
        help="crash the recovery scenario at every durable event and "
        "assert the recovered state matches the fault-free oracle",
    )
    p_sweep.add_argument("--max-points", type=int, default=None,
                         help="bound the sweep to K evenly spaced crash "
                         "points (default: every durable event)")
    p_sweep.add_argument("--records", type=int, default=48,
                         help="rows in the swept table")
    p_sweep.add_argument("--no-double", action="store_true",
                         help="skip the crash-during-recovery pass")
    p_sweep.add_argument("--torn", action="store_true",
                         help="make every crashing write a torn (half) "
                         "page write; enables full-page-write logging")
    p_sweep.add_argument("--wal-tail", choices=("keep", "drop", "torn"),
                         default="keep",
                         help="what happens to the WAL record being "
                         "forced when the crash lands on it")
    p_sweep.add_argument("--lanes", type=int, default=1,
                         help="run the post-table index stages on K "
                         "concurrent simulated I/O lanes (default 1, "
                         "serial); the seeded scheduler keeps every "
                         "crash point replayable")
    p_sweep.add_argument("--traffic", type=int, default=0,
                         help="commit K concurrent user writes at the "
                         "statement's stage boundaries and require "
                         "zero lost committed writes after recovery")
    p_sweep.add_argument("--shards", type=int, default=0,
                         help="sweep a range-sharded delete instead: "
                         "crash after every global durable event of a "
                         "K-shard statement sequence (ignores the "
                         "single-table-only flags)")
    p_sweep.add_argument("--lsm", action="store_true",
                         help="sweep the LSM engine instead: crash "
                         "after every durable event (log appends, run "
                         "builds, manifest commits, superblock flips) "
                         "of a tombstone bulk delete and require "
                         "recovery to an oracle-consistent state with "
                         "no resurrected rows (--torn tears the "
                         "crashing write; other single-table flags "
                         "are ignored)")
    p_sweep.add_argument("--retention", action="store_true",
                         help="sweep the retention subsystem instead: "
                         "crash every durable event and transient-fault "
                         "every durable page of a two-policy cascading "
                         "erasure run, require recovery to the oracle "
                         "with a zero-finding unrecoverability audit, "
                         "and mutation-test the audit itself")
    p_sweep.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="json emits machine-readable outcomes "
                         "(point counts, per-point problems) matching "
                         "`repro lint --format json` conventions")
    p_sweep.add_argument("--verbose", action="store_true",
                         help="print per-point progress (text format)")
    p_sweep.set_defaults(func=_cmd_faultsweep)

    p_shard = sub.add_parser(
        "shard",
        help="range-sharded bulk delete: route a delete list across "
        "key-range shards and run the fragments on parallel lanes",
    )
    p_shard.add_argument("--records", type=int, default=8000,
                         help="rows in the sharded workload")
    p_shard.add_argument("--shards", type=int, default=4,
                         help="equi-depth key ranges on the driving "
                         "column A")
    p_shard.add_argument("--lanes", type=int, default=2,
                         help="dedicated lanes for the shard region "
                         "(1 = the exact serial code path)")
    p_shard.add_argument("--selfcheck", action="store_true",
                         help="assert the sharding invariants on fixed "
                         "scenarios: exact-once routing, 1-shard "
                         "bit-identity, lane speedup, exact rollup "
                         "reconciliation, hot-range taming")
    p_shard.set_defaults(func=_cmd_shard)

    p_lsm = sub.add_parser(
        "lsm",
        help="bulk delete on the delete-aware LSM engine: compile "
        "tombstones, run FADE compactions, report the tree shape",
    )
    p_lsm.add_argument("--records", type=int, default=2000,
                       help="rows bulk-loaded into the LSM table")
    p_lsm.add_argument("--fraction", type=float, default=0.15,
                       help="fraction of records to delete")
    p_lsm.add_argument("--selfcheck", action="store_true",
                       help="exercise the engine on fixed tiny "
                       "scenarios: visibility, tombstone semantics, "
                       "compaction invariants, planner dispatch, "
                       "FADE, recovery, bulk load, vacuum")
    p_lsm.set_defaults(func=_cmd_lsm)

    p_media = sub.add_parser(
        "mediasweep",
        help="inject every read-fault kind on every durable page and "
        "assert the statement self-heals to the fault-free oracle or "
        "aborts typed and clean",
    )
    p_media.add_argument("--max-points", type=int, default=None,
                         help="bound the sweep to K evenly sampled "
                         "pages per fault kind (default: every page)")
    p_media.add_argument("--records", type=int, default=48,
                         help="rows in the swept table")
    p_media.add_argument("--verbose", action="store_true",
                         help="print per-point progress")
    p_media.set_defaults(func=_cmd_mediasweep)

    p_scrub = sub.add_parser(
        "scrub",
        help="checksum-sweep every live page and cross-reconcile heaps "
        "against their indexes (amcheck-style)",
    )
    p_scrub.add_argument("--records", type=int, default=48,
                         help="rows in the scrubbed scenario")
    p_scrub.add_argument("--selfcheck", action="store_true",
                         help="inject known media faults and verify "
                         "detection, healing, and quarantine")
    p_scrub.set_defaults(func=_cmd_scrub)

    p_ret = sub.add_parser(
        "retention",
        help="retention/compliance deletion: compile policies into a "
        "cascading multi-engine delete DAG, run it crash-resumably, "
        "erase every trace, and audit unrecoverability",
    )
    p_ret.add_argument("--selfcheck", action="store_true",
                       help="verify the subsystem end to end: compiler "
                       "determinism, clean run + zero-finding audit, "
                       "mid-run crash resume, RESTRICT abort, coverage "
                       "lint, audit mutation tests, bounded sweeps")
    p_ret.set_defaults(func=_cmd_retention)

    for lint_name in ("lint", "analysis"):
        p_lint = sub.add_parser(
            lint_name,
            help="run the static checkers (plan linter + code lint)",
        )
        p_lint.add_argument("--format", choices=("text", "json"),
                            default="text")
        p_lint.add_argument("--root", default=None,
                            help="package dir to code-lint (default: "
                            "the installed repro package)")
        p_lint.add_argument("--skip-code", action="store_true")
        p_lint.add_argument("--skip-plans", action="store_true")
        p_lint.add_argument("--skip-effects", action="store_true")
        p_lint.add_argument("--strict", action="store_true",
                            help="fail on warnings too")
        p_lint.set_defaults(func=_cmd_lint)

    p_eff = sub.add_parser(
        "effects",
        help="whole-program effect inference: layering contracts "
        "and static lane safety",
    )
    p_eff.add_argument("--format", choices=("text", "json"),
                       default="text")
    p_eff.add_argument("--root", default=None,
                       help="package dir to analyze (default: the "
                       "installed repro package)")
    p_eff.add_argument("--dot", action="store_true",
                       help="dump the effect-annotated call graph as "
                       "GraphViz instead of checking")
    p_eff.set_defaults(func=_cmd_effects)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""A delete-aware LSM storage engine on the simulated cost model.

The package reproduces the comparison the source paper could not make
in 2001: vertical bulk deletes on heap + B+-tree storage versus
tombstone + compaction deletes on a log-structured merge tree.  The
design follows Lethe ("Lethe: A Tunable Delete-Aware LSM Engine",
PAPERS.md): deletes write point/range tombstones instead of touching
data in place, and a FADE-style compaction picker chases
tombstone-dense and tombstone-old runs so deleted space and lookup
amplification are reclaimed promptly, not eventually.

Layers (see ``docs/storage_engines.md``):

* :mod:`repro.lsm.memtable` — the in-memory write buffer (point
  entries + range tombstones, resolved by sequence number),
* :mod:`repro.lsm.sstable` — immutable sorted runs on buffer-pool
  pages, with in-memory fence keys,
* :mod:`repro.lsm.tree` — the leveled tree: write-ahead log pages,
  memtable flushes, leveled + delete-aware compaction, a
  double-buffered superblock/manifest commit protocol,
* :mod:`repro.lsm.engine` — the :class:`repro.storage.engine
  .StorageEngine` implementation the catalog binds to
  ``engine="lsm"`` tables,
* :mod:`repro.lsm.planning` — pure-arithmetic cost estimation
  (``choose_plan`` dispatches here for LSM tables),
* :mod:`repro.lsm.sweep` — the crash-mid-compaction sweep
  (``python -m repro faultsweep --lsm``).
"""

from repro.lsm.engine import LsmDeleteResult, LsmEngine, lsm_bulk_delete
from repro.lsm.memtable import Memtable, RangeTombstone
from repro.lsm.planning import LsmDeletePlan, choose_lsm_plan
from repro.lsm.sstable import RunMeta
from repro.lsm.sweep import LsmSweepScenario, lsm_crash_sweep
from repro.lsm.tree import LsmConfig, LsmStats, LsmTree

__all__ = [
    "LsmConfig",
    "LsmDeletePlan",
    "LsmDeleteResult",
    "LsmEngine",
    "LsmStats",
    "LsmSweepScenario",
    "LsmTree",
    "Memtable",
    "RangeTombstone",
    "RunMeta",
    "choose_lsm_plan",
    "lsm_bulk_delete",
    "lsm_crash_sweep",
]

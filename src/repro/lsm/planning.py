"""Cost estimation for LSM bulk deletes — pure arithmetic.

``choose_plan`` dispatches here for ``engine="lsm"`` tables.  Like the
heap planner's estimators, everything below is arithmetic over
in-memory metadata (run counts, page counts, config knobs, disk
parameters): the ``effect/planner-estimates-pure`` contract statically
verifies that planning an LSM delete performs no I/O and advances no
clock.

The model mirrors what :func:`repro.lsm.engine.lsm_bulk_delete`
actually executes:

* one log append (a sequential write of a fresh log page — the log is
  pure append) per tombstone written — consecutive key runs compile to
  a single range tombstone, so the tombstone count can be far below
  ``n_deletes``,
* the memtable flushes the tombstones trigger (sequential run writes
  plus a manifest commit each), and
* the delete-aware compactions FADE is expected to schedule, costed
  at the sequential rate over the affected runs' pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.errors import PlanningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.database import Database
    from repro.lsm.tree import LsmTree

#: Sorted consecutive key runs at least this long compile to one range
#: tombstone instead of per-key point tombstones.
RANGE_COMPILE_MIN = 16


def compile_tombstones(
    keys: Sequence[int],
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Split a delete list into point keys and ``[lo, hi]`` ranges.

    Maximal consecutive runs of at least :data:`RANGE_COMPILE_MIN`
    keys become ranges; everything else stays a point delete.  Pure
    (shared by the planner and the executor so the estimate and the
    execution always agree on the tombstone mix).
    """
    uniq = sorted(set(keys))
    points: List[int] = []
    ranges: List[Tuple[int, int]] = []
    i = 0
    while i < len(uniq):
        j = i
        while j + 1 < len(uniq) and uniq[j + 1] == uniq[j] + 1:
            j += 1
        if j - i + 1 >= RANGE_COMPILE_MIN:
            ranges.append((uniq[i], uniq[j]))
        else:
            points.extend(uniq[i : j + 1])
        i = j + 1
    return points, ranges


@dataclass
class LsmDeletePlan:
    """The chosen tombstone mix and its cost model."""

    table_name: str
    column: str
    n_deletes: int
    point_tombstones: int
    range_tombstones: int
    expected_flushes: int
    expected_compaction_pages: int
    estimated_ms: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def tombstone_writes(self) -> int:
        return self.point_tombstones + self.range_tombstones

    def explain(self) -> str:
        lines = [
            f"LSM DELETE {self.table_name} WHERE {self.column} IN "
            f"[{self.n_deletes} keys]",
            f"  tombstones: {self.point_tombstones} point + "
            f"{self.range_tombstones} range "
            f"({self.tombstone_writes} log appends)",
            f"  expected flushes: {self.expected_flushes}, "
            f"compaction pages: {self.expected_compaction_pages}",
            f"  estimated: {self.estimated_ms / 1000:.2f}s",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def choose_lsm_plan(
    db: "Database",
    table_name: str,
    column: str,
    keys_or_count: Union[int, Sequence[int]],
) -> LsmDeletePlan:
    """Plan a bulk delete against an LSM table.

    Accepts the actual delete list (preferred — the point/range split
    is then exact) or a bare count (ranges unknown, planned as all
    points).  Raises :class:`PlanningError` when the column is not the
    table's LSM key column: secondary predicates would need a full
    merge scan, which the engine deliberately does not hide behind a
    point-delete API.
    """
    table = db.table(table_name)
    tree: Optional["LsmTree"] = getattr(table, "lsm", None)
    if tree is None:
        raise PlanningError(
            f"table {table_name} is not an LSM table; use choose_plan"
        )
    key_column = getattr(table, "lsm_key_column", None)
    if column != key_column:
        raise PlanningError(
            f"LSM deletes must target the key column "
            f"{key_column!r}, not {column!r}"
        )
    if isinstance(keys_or_count, int):
        n_deletes = keys_or_count
        points, ranges = n_deletes, 0
        exact = False
    else:
        uniq_points, uniq_ranges = compile_tombstones(keys_or_count)
        points, ranges = len(uniq_points), len(uniq_ranges)
        n_deletes = len(set(keys_or_count))
        exact = True

    cfg = tree.config
    params = db.disk.parameters
    page_size = db.page_size
    seq_ms = params.sequential_ms(page_size)

    tombstone_writes = points + ranges
    buffered = tree.memtable.entry_count
    expected_flushes = (buffered + tombstone_writes) // cfg.memtable_entries

    # A flush writes the memtable's entries as one small run plus a
    # manifest commit (~2 pages); FADE then merges tombstone-dense
    # runs downward — bounded by the configured compaction budget over
    # run-sized inputs and outputs.
    flush_pages = expected_flushes * 3
    data_pages = tree.data_pages
    touched_fraction = min(1.0, n_deletes / max(1, tree.approx_records))
    compaction_pages = min(
        2 * cfg.max_delete_compactions * cfg.run_pages * (1 + cfg.fanout),
        int(2 * data_pages * touched_fraction) + 2 * cfg.run_pages,
    )

    estimated_ms = (
        tombstone_writes * seq_ms
        + flush_pages * seq_ms
        + compaction_pages * seq_ms
    )
    plan = LsmDeletePlan(
        table_name=table_name,
        column=column,
        n_deletes=n_deletes,
        point_tombstones=points,
        range_tombstones=ranges,
        expected_flushes=expected_flushes,
        expected_compaction_pages=compaction_pages,
        estimated_ms=estimated_ms,
    )
    if not exact:
        plan.notes.append(
            "planned from a bare count: range compilation unknown, "
            "costed as all point tombstones"
        )
    if ranges:
        plan.notes.append(
            f"{ranges} consecutive key run(s) compiled to range "
            f"tombstones (≥{RANGE_COMPILE_MIN} keys each)"
        )
    return plan

"""Immutable sorted runs (SSTables) on buffer-pool pages.

A run is a sequence of slotted pages holding ``(kind, seq, key,
payload)`` entries in key order, plus run-level metadata
(:class:`RunMeta`): fence keys (first key per page, the in-memory
index that makes a point lookup one page read), the covering key
range, sequence bounds, and the run's range tombstones.  Metadata is
durable through the tree's manifest, not through the data pages — the
classic LSM split between immutable data blocks and a mutable
manifest.

Every page the builder writes is flushed through the buffer pool
immediately, so a run is fully durable (and every write is a
crash-sweep event) before its metadata can reach a manifest commit.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.lsm.memtable import RangeTombstone, Resolution
from repro.storage.buffer import BufferPool
from repro.storage.page_formats import SlottedPage

#: On-page entry header: kind (0 = put, 1 = point tombstone), seq, key.
ENTRY = struct.Struct("<bqq")
KIND_PUT = 0
KIND_TOMBSTONE = 1

#: One entry as a flush/merge item: ``(key, seq, payload | None)``.
Item = Tuple[int, int, Optional[bytes]]


def encode_entry(key: int, seq: int, payload: Optional[bytes]) -> bytes:
    kind = KIND_PUT if payload is not None else KIND_TOMBSTONE
    return ENTRY.pack(kind, seq, key) + (payload or b"")


def decode_entry(record: bytes) -> Item:
    kind, seq, key = ENTRY.unpack_from(record, 0)
    payload = record[ENTRY.size:]
    if kind == KIND_TOMBSTONE:
        return key, seq, None
    if kind != KIND_PUT:
        raise StorageError(f"corrupt run entry kind {kind}")
    return key, seq, bytes(payload)


@dataclass(frozen=True)
class RunMeta:
    """Everything the tree knows about one immutable run.

    ``key_min``/``key_max`` bound the run's *responsibility*, not just
    its resident entries: compaction may assign a run a covering span
    wider than its first/last key so range tombstones keep masking
    keys that only exist at deeper levels.  Within a level ≥ 1 the
    covering spans partition the key space (no overlap), which is what
    makes the per-level lookup a single binary search.
    """

    run_id: int
    level: int
    page_ids: Tuple[int, ...]
    #: First key on each page (parallel to ``page_ids``).
    fences: Tuple[int, ...]
    key_min: int
    key_max: int
    seq_min: int
    seq_max: int
    #: Point entries on the pages (puts + point tombstones).
    entry_count: int
    #: Point tombstones among ``entry_count``.
    tombstones: int
    ranges: Tuple[RangeTombstone, ...]
    #: Oldest tombstone sequence in the run (points or ranges), or -1
    #: when the run holds no tombstones — the age input of the FADE
    #: compaction picker.
    tombstone_seq_min: int

    @property
    def data_pages(self) -> int:
        return len(self.page_ids)

    @property
    def live_entries(self) -> int:
        return self.entry_count - self.tombstones

    @property
    def tombstone_density(self) -> float:
        """Tombstone facts per point entry (ranges each count once)."""
        dead = self.tombstones + len(self.ranges)
        return dead / max(1, self.entry_count)

    def covers(self, key: int) -> bool:
        return self.key_min <= key <= self.key_max


def build_run(
    pool: BufferPool,
    file_id: int,
    run_id: int,
    level: int,
    items: Sequence[Item],
    ranges: Sequence[RangeTombstone] = (),
    cover_lo: Optional[int] = None,
    cover_hi: Optional[int] = None,
) -> RunMeta:
    """Write ``items`` (key-sorted) as one run and return its metadata.

    Each filled page is flushed before the next is started, so the
    run's bytes are durable when this returns; the caller makes the run
    *reachable* with a manifest commit afterwards.  ``cover_lo`` /
    ``cover_hi`` widen the responsibility span (see :class:`RunMeta`).
    """
    page_ids: List[int] = []
    fences: List[int] = []
    page: Optional[SlottedPage] = None
    current_id: Optional[int] = None
    seqs: List[int] = []
    tombstones = 0
    tombstone_seqs: List[int] = []

    def close_page() -> None:
        assert current_id is not None
        pool.unpin(current_id, dirty=True)
        pool.flush_page(current_id)

    last_key: Optional[int] = None
    for key, seq, payload in items:
        if last_key is not None and key <= last_key:
            raise StorageError(
                f"run builder needs strictly increasing keys "
                f"({key} after {last_key})"
            )
        last_key = key
        record = encode_entry(key, seq, payload)
        if page is not None and not page.can_fit(len(record)):
            close_page()
            page = None
        if page is None:
            pinned = pool.pin_new(file_id)
            current_id = pinned.page_id
            page = SlottedPage.format_empty(pinned.data)
            page_ids.append(current_id)
            fences.append(key)
        page.insert(record)
        seqs.append(seq)
        if payload is None:
            tombstones += 1
            tombstone_seqs.append(seq)
    if page is not None:
        close_page()

    for tomb in ranges:
        seqs.append(tomb.seq)
        tombstone_seqs.append(tomb.seq)

    if not seqs:
        raise StorageError("refusing to build an empty run")

    lo_candidates = [fences[0]] if fences else []
    hi_candidates = [last_key] if last_key is not None else []
    lo_candidates += [tomb.lo for tomb in ranges]
    hi_candidates += [tomb.hi for tomb in ranges]
    key_min = min(lo_candidates)
    key_max = max(hi_candidates)
    if cover_lo is not None:
        key_min = min(key_min, cover_lo)
    if cover_hi is not None:
        key_max = max(key_max, cover_hi)

    return RunMeta(
        run_id=run_id,
        level=level,
        page_ids=tuple(page_ids),
        fences=tuple(fences),
        key_min=key_min,
        key_max=key_max,
        seq_min=min(seqs),
        seq_max=max(seqs),
        entry_count=len(items),
        tombstones=tombstones,
        ranges=tuple(sorted(ranges, key=lambda t: (t.lo, t.hi, t.seq))),
        tombstone_seq_min=min(tombstone_seqs) if tombstone_seqs else -1,
    )


def run_get(
    pool: BufferPool, meta: RunMeta, key: int
) -> Tuple[Optional[Resolution], int]:
    """Resolve ``key`` against one run: ``(resolution, pages_read)``.

    The fence index narrows a point lookup to at most one page read;
    the run's range tombstones compete with the point entry by
    sequence number, exactly like memtable resolution.
    """
    best: Optional[Resolution] = None
    for tomb in meta.ranges:
        if tomb.covers(key) and (best is None or tomb.seq > best[0]):
            best = (tomb.seq, None)
    pages_read = 0
    if meta.fences and key >= meta.fences[0]:
        slot = bisect_right(meta.fences, key) - 1
        page_id = meta.page_ids[slot]
        pages_read = 1
        with pool.pin(page_id) as pinned:
            page = SlottedPage(pinned.data)
            scanned = 0
            for _, record in page.records():
                scanned += 1
                entry_key, seq, payload = decode_entry(record)
                if entry_key == key:
                    if best is None or seq > best[0]:
                        best = (seq, payload)
                    break
                if entry_key > key:
                    break
            pool.disk.charge_cpu_records(scanned)
    return best, pages_read


def run_iter(pool: BufferPool, meta: RunMeta) -> Iterator[Item]:
    """Yield every point entry of a run in key order (sequential reads)."""
    for page_id in meta.page_ids:
        with pool.pin(page_id) as pinned:
            page = SlottedPage(pinned.data)
            records = [record for _, record in page.records()]
        pool.disk.charge_cpu_records(len(records))
        for record in records:
            yield decode_entry(record)

"""The LSM write buffer: point entries plus range tombstones.

Every mutation carries a monotonically increasing *sequence number*
assigned by the tree; resolution anywhere in the LSM (memtable, run,
or merge) is always "highest sequence wins".  A delete is a *point
tombstone* (``payload is None``) and a range delete is a
:class:`RangeTombstone` — both are ordinary entries to the resolution
rule, which is what makes bulk deletes O(tombstones written) instead
of O(rows touched) (Lethe's framing; see ``docs/storage_engines.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RangeTombstone:
    """Deletes every key in ``[lo, hi]`` older than ``seq``."""

    seq: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(
                f"range tombstone [{self.lo}, {self.hi}] is empty"
            )

    def covers(self, key: int) -> bool:
        return self.lo <= key <= self.hi

    def masks(self, seq: int, key: int) -> bool:
        """Whether an entry ``(seq, key)`` is deleted by this tombstone."""
        return self.seq > seq and self.covers(key)


#: A resolution: ``(seq, payload)``; ``payload is None`` means deleted.
Resolution = Tuple[int, Optional[bytes]]


class Memtable:
    """In-memory buffer of the newest mutations, pre-flush.

    Point entries keep only the newest version per key (the log, not
    the memtable, is the durability story — see
    :class:`repro.lsm.tree.LsmTree`).  Range tombstones accumulate as
    written; they are compared by sequence number at resolution time.
    """

    def __init__(self) -> None:
        #: key -> (seq, payload | None-for-tombstone)
        self.entries: Dict[int, Tuple[int, Optional[bytes]]] = {}
        self.ranges: List[RangeTombstone] = []
        #: Highest sequence number buffered (0 when empty); becomes the
        #: tree's ``flushed_seq`` when this memtable flushes.
        self.max_seq = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def put(self, seq: int, key: int, payload: bytes) -> None:
        self.entries[key] = (seq, payload)
        self.max_seq = max(self.max_seq, seq)

    def delete(self, seq: int, key: int) -> None:
        self.entries[key] = (seq, None)
        self.max_seq = max(self.max_seq, seq)

    def delete_range(self, seq: int, lo: int, hi: int) -> None:
        self.ranges.append(RangeTombstone(seq, lo, hi))
        self.max_seq = max(self.max_seq, seq)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, key: int) -> Optional[Resolution]:
        """Newest buffered fact about ``key``, or ``None`` if unknown.

        A covering range tombstone competes with the point entry by
        sequence number; a returned ``(seq, None)`` means the memtable
        *knows* the key is deleted (callers must not fall through to
        older structures).
        """
        best = self.entries.get(key)
        for tomb in self.ranges:
            if tomb.covers(key) and (best is None or tomb.seq > best[0]):
                best = (tomb.seq, None)
        return best

    # ------------------------------------------------------------------
    # flush feed
    # ------------------------------------------------------------------
    def sorted_items(self) -> List[Tuple[int, int, Optional[bytes]]]:
        """``(key, seq, payload)`` in key order, for run building."""
        return [
            (key, seq, payload)
            for key, (seq, payload) in sorted(self.entries.items())
        ]

    def sorted_ranges(self) -> List[RangeTombstone]:
        return sorted(self.ranges, key=lambda t: (t.lo, t.hi, t.seq))

    @property
    def entry_count(self) -> int:
        """Buffered facts (points + ranges): the flush-trigger measure."""
        return len(self.entries) + len(self.ranges)

    @property
    def is_empty(self) -> bool:
        return not self.entries and not self.ranges

    @property
    def approx_live(self) -> int:
        """Estimated live rows buffered (puts not masked by a range)."""
        live = 0
        for key, (seq, payload) in self.entries.items():
            if payload is None:
                continue
            if any(t.masks(seq, key) for t in self.ranges):
                continue
            live += 1
        return live

"""Crash-mid-compaction sweep for the LSM engine.

The LSM durability claim is sharper than the heap path's WAL story:
*every* buffer-pool page write the tree performs — log appends, run
builds, manifest pages, superblock flips — is a durable event, and
cutting the timeline after any one of them must leave a state that
recovers to something between "delete not yet applied" and "delete
fully applied", with nothing corrupted, nothing lost, and **no
tombstoned row ever resurrected**.  The sweep turns that into a
checked property, mirroring :func:`repro.faults.sweep.crash_sweep`:

1. run the scenario's bulk delete **fault-free** under a counting
   :class:`~repro.faults.injector.FaultInjector`, capturing the oracle
   (surviving rows) and the durable event count N,
2. for each chosen k in 1..N, rebuild the identical scenario, crash
   right after durable event k (optionally tearing that very write),
   :meth:`~repro.lsm.tree.LsmTree.recover`, and require:

   * visible rows are exactly the pre-delete rows minus some subset of
     the delete list — byte-identical payloads, no phantoms, no
     non-targeted row missing;
   * re-issuing the same delete (tombstones are idempotent) lands on
     the oracle state;
   * a full :meth:`~repro.lsm.tree.LsmTree.compact_all` — which drops
     every tombstone — still shows the oracle state (deleted rows do
     not come back when their tombstones are reclaimed);
   * a second recovery is stable (recovery is terminal).

Scenario builds are deterministic, so event k always lands on the
same page write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.faults.sweep import PointOutcome, SweepReport, _choose_points
from repro.lsm.engine import lsm_bulk_delete
from repro.lsm.tree import LsmConfig, LsmTree

#: Row state: key -> full value tuple (the scan image).
State = Dict[int, Tuple[object, ...]]


@dataclass(frozen=True)
class LsmSweepScenario:
    """A deterministic LSM workload: every ``build()`` is bit-identical.

    The config is deliberately tiny (12-entry memtable, 2-page runs,
    2-run levels) so the bulk delete itself triggers memtable flushes
    and FADE compactions — the sweep then cuts *inside* run builds,
    manifest commits and superblock flips, not just between log
    appends.  The delete list mixes one contiguous block (compiled to
    a range tombstone) with scattered point keys.
    """

    records: int = 64
    #: Rows inserted through the log path after the bulk load, so L0
    #: runs and a non-empty memtable exist before the delete starts.
    trickle: int = 20
    block_start: int = 16
    block_len: int = 20
    scattered: int = 12
    seed: int = 7
    page_size: int = 512
    memory_pages: int = 24
    torn: bool = False

    def config(self) -> LsmConfig:
        return LsmConfig(
            memtable_entries=12,
            l0_runs=2,
            run_pages=2,
            level_runs=2,
            fanout=2,
            tombstone_density_trigger=0.2,
            tombstone_age_seqs=64,
            max_delete_compactions=4,
        )

    def build(self) -> "LsmSweepCase":
        db = Database(
            page_size=self.page_size,
            memory_bytes=self.memory_pages * self.page_size,
        )
        db.create_table(
            TableSchema.of(
                "R", [Attribute.int_("A"), Attribute.char("PAD", 20)]
            ),
            engine="lsm",
            lsm_config=self.config(),
        )
        n = self.records
        db.load_table("R", [(a, f"row{a}") for a in range(n)])
        for i in range(self.trickle):
            db.insert("R", (n + i, f"late{i}"))
        block = list(range(self.block_start, self.block_start + self.block_len))
        # Scattered keys: a fixed stride walk over the tail keys keeps
        # the build free of RNG state while spreading points across
        # runs.
        tail = [
            k for k in range(self.block_start + self.block_len, n + self.trickle)
        ]
        step = max(1, len(tail) // max(1, self.scattered))
        points = tail[::step][: self.scattered]
        keys = block + points
        return LsmSweepCase(db=db, keys=keys)


@dataclass
class LsmSweepCase:
    """One built scenario instance."""

    db: Database
    keys: List[int]

    @property
    def tree(self) -> LsmTree:
        tree = self.db.table("R").lsm
        assert tree is not None
        return tree

    def state(self) -> State:
        return {key: values for key, values in self.db.scan("R")}


def lsm_crash_sweep(
    scenario: Optional[LsmSweepScenario] = None,
    max_points: Optional[int] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Sweep a crash over every (or ``max_points`` evenly spaced)
    durable event of the scenario's LSM bulk delete."""
    scenario = scenario or LsmSweepScenario()
    say = log_fn or (lambda message: None)

    # Pass 0: pre-delete image, oracle state, durable event count.
    case = scenario.build()
    before = case.state()
    counter = FaultInjector()
    with counter.armed(case.db.disk, pool=case.db.pool):
        lsm_bulk_delete(case.db, "R", "A", case.keys)
    oracle = case.state()
    expected = {
        key: values
        for key, values in before.items()
        if key not in set(case.keys)
    }
    if oracle != expected:
        raise ReproError(
            "fault-free LSM oracle run does not match the set "
            f"difference: {len(oracle)} rows vs {len(expected)} expected"
        )
    report = SweepReport(durable_events=counter.durable_event_count)
    report.points = _choose_points(counter.durable_event_count, max_points)
    say(
        f"lsm oracle: {len(case.keys)} keys deleted, "
        f"{counter.durable_event_count} durable events; "
        f"sweeping {len(report.points)} crash points"
        + (" (torn page writes)" if scenario.torn else "")
    )
    for k in report.points:
        outcome = _run_lsm_point(scenario, k, before, oracle)
        report.outcomes.append(outcome)
        if not outcome.ok:
            say(f"  event {k}: FAIL: {outcome.problems[0]}")
    return report


def _run_lsm_point(
    scenario: LsmSweepScenario,
    event: int,
    before: State,
    oracle: State,
) -> PointOutcome:
    case = scenario.build()
    outcome = PointOutcome(event=event, second_event=None)
    targeted = set(case.keys)
    injector = FaultInjector(
        FaultPlan(crash_after_event=event, torn_write=scenario.torn)
    )
    try:
        with injector.armed(case.db.disk, pool=case.db.pool):
            lsm_bulk_delete(case.db, "R", "A", case.keys)
    except SimulatedCrash as exc:
        outcome.crash = str(exc)
    if outcome.crash is None:
        outcome.problems.append(f"no crash fired at durable event {event}")
        return outcome

    # Recover from durable state only and re-bind the catalog entry.
    table = case.db.table("R")
    assert table.lsm is not None
    table.lsm = LsmTree.recover(
        case.db.pool, table.lsm.handle,
        config=table.lsm.config, name="R",
    )

    # Invariant 1: the visible state is the pre-delete image minus some
    # subset of the delete list — nothing corrupted, lost, or invented.
    state = case.state()
    for key, values in state.items():
        if key not in before:
            outcome.problems.append(
                f"phantom row {key} appeared after recovery"
            )
        elif before[key] != values:
            outcome.problems.append(
                f"row {key} corrupted after recovery: "
                f"{values!r} != {before[key]!r}"
            )
    for key in before:
        if key not in state and key not in targeted:
            outcome.problems.append(
                f"non-targeted row {key} lost by the crash"
            )
    if outcome.problems:
        return outcome

    # Invariant 2: re-issuing the delete is idempotent and completes it.
    lsm_bulk_delete(case.db, "R", "A", case.keys)
    state = case.state()
    if state != oracle:
        outcome.problems.append(
            f"re-issued delete missed the oracle: {len(state)} rows "
            f"vs {len(oracle)}"
        )
        return outcome

    # Invariant 3: dropping every tombstone must not resurrect rows.
    case.tree.compact_all()
    state = case.state()
    if state != oracle:
        resurrected = sorted(set(state) - set(oracle))
        outcome.problems.append(
            "compaction after recovery changed the visible state"
            + (f"; resurrected keys {resurrected[:5]}" if resurrected else "")
        )
        return outcome

    # Invariant 4: recovery is terminal — a further restart from the
    # same durable state sees the identical rows.
    case.db.pool.invalidate_all()
    table.lsm = LsmTree.recover(
        case.db.pool, case.tree.handle,
        config=case.tree.config, name="R",
    )
    if case.state() != oracle:
        outcome.problems.append(
            "second recovery diverged (recovery is not terminal)"
        )
    return outcome

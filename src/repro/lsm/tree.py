"""The delete-aware leveled LSM tree on the simulated cost model.

Structure
---------
Writes land in a :class:`~repro.lsm.memtable.Memtable` after being
logged to a forward-chained page log; a full memtable flushes to an
immutable level-0 run.  Level 0 holds overlapping runs in recency
order; levels 1..n hold key-disjoint runs.  A lookup resolves
memtable → L0 (newest first) → one run per deeper level, stopping at
the first fact (the level invariant guarantees anything at level *i*
is newer than the same key at level *j > i*).

Durability
----------
Three protocols compose, all on ordinary buffer-pool page writes so
the crash sweep can cut between any two durable events:

* **Log**: each log page stores its pre-allocated successor's id in
  record 0, so replay needs no per-file page directory.  The log is
  *pure append*: every operation lands on a fresh page (one flush per
  append, same write count as a tail rewrite), so no page holding an
  acknowledged record is ever written again — a torn write can only
  destroy the very operation that was being acknowledged, never an
  earlier one.  A torn or missing tail is detected by the disk's
  out-of-band checksum and recovery re-logs the surviving memtable
  into a fresh chain before anything else happens.
* **Manifest**: run metadata (pages, fences, covering ranges, range
  tombstones) is serialized into a fresh chain of manifest pages on
  every commit — data pages first, manifest pages second.
* **Superblock**: two slots, written alternately with a version
  counter.  Recovery reads both, discards any that fail their
  checksum or magic, and adopts the highest version — a torn
  superblock write can only destroy the slot being replaced.

Old log/manifest/run pages are freed only *after* the superblock
flip, so a crash at any point leaves one complete, reachable state.

Delete-awareness (Lethe's FADE, PAPERS.md)
------------------------------------------
Bulk deletes write point/range tombstones; compaction is what turns
them into reclaimed space and restored lookup speed.  Beyond the size
triggers of plain leveled compaction, :meth:`LsmTree
.delete_aware_compactions` scores runs by tombstone *density* and
tombstone *age* (sequence distance) and compacts the worst offenders
first, dropping tombstones entirely once they reach the deepest data.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass, fields, replace
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import MediaError, RecoveryError, StorageError
from repro.lsm.memtable import Memtable, RangeTombstone, Resolution
from repro.lsm.sstable import (
    ENTRY,
    Item,
    RunMeta,
    build_run,
    run_get,
    run_iter,
)
from repro.obs.trace import maybe_span
from repro.storage.buffer import BufferPool
from repro.storage.page_formats import HEADER_SIZE, SLOT_SIZE, SlottedPage

# ----------------------------------------------------------------------
# on-page formats
# ----------------------------------------------------------------------
#: Log records: point ops share the run-entry header, range deletes
#: add the second bound.
_LOG_POINT = struct.Struct("<bqq")   # kind, seq, key
_LOG_RANGE = struct.Struct("<bqqq")  # kind, seq, lo, hi
_LOG_PUT = 0
_LOG_DELETE = 1
_LOG_DELETE_RANGE = 2
#: Record 0 of every chained page (log and manifest): successor id.
_NEXT = struct.Struct("<q")

_SB = struct.Struct("<Iqqqqq")
_SB_MAGIC = 0x4C534D53  # "LSMS"
_MANIFEST_MAGIC = 0x4C534D4D  # "LSMM"
_MANIFEST_HEADER = struct.Struct("<Iq")
_MANIFEST_RUN = struct.Struct("<qqqqqqqqqII")


@dataclass(frozen=True)
class LsmConfig:
    """Tuning knobs; defaults suit the benchmark-scale tables."""

    #: Memtable facts (points + ranges) that trigger a flush.
    memtable_entries: int = 256
    #: L0 run count that triggers an L0 → L1 compaction.
    l0_runs: int = 4
    #: Target pages per compaction output run.
    run_pages: int = 8
    #: Run budget of level 1; level *i* holds ``level_runs *
    #: fanout**(i-1)`` runs before the size trigger fires.
    level_runs: int = 4
    fanout: int = 4
    #: FADE density trigger: tombstone facts per point entry.
    tombstone_density_trigger: float = 0.25
    #: FADE age trigger: sequence distance from the run's oldest
    #: tombstone to the present.
    tombstone_age_seqs: int = 4096
    #: Cap on compactions one ``delete_aware_compactions`` call runs.
    max_delete_compactions: int = 8


@dataclass
class LsmStats:
    """Operation counters kept by one tree (snapshot/delta like
    :class:`~repro.storage.disk.DiskStats`)."""

    puts: int = 0
    point_deletes: int = 0
    range_deletes: int = 0
    lookups: int = 0
    lookup_runs_probed: int = 0
    lookup_pages_read: int = 0
    flushes: int = 0
    flush_entries: int = 0
    flush_pages: int = 0
    compactions: int = 0
    compaction_pages_read: int = 0
    compaction_pages_written: int = 0
    tombstones_dropped: int = 0
    entries_superseded: int = 0
    log_appends: int = 0
    manifest_commits: int = 0
    manifest_pages: int = 0

    def snapshot(self) -> "LsmStats":
        return LsmStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta_since(self, earlier: "LsmStats") -> "LsmStats":
        return LsmStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def page_writes(self) -> int:
        """Physical page writes the counted operations performed.

        The identity the benchmark reconciles against the disk's own
        write counter: one fresh page per log append, one new log-chain
        head per flush, the flush and compaction output run pages, the
        manifest pages, and one superblock write per commit.
        """
        return (
            self.log_appends
            + self.flushes
            + self.flush_pages
            + self.compaction_pages_written
            + self.manifest_pages
            + self.manifest_commits
        )


class LsmTree:
    """One LSM-backed table: memtable + log + leveled immutable runs."""

    def __init__(
        self,
        pool: BufferPool,
        name: str = "lsm",
        config: Optional[LsmConfig] = None,
    ) -> None:
        self.pool = pool
        self.disk = pool.disk
        self.name = name
        self.config = config or LsmConfig()
        self.stats = LsmStats()
        #: Attached observer (``db.obs``); the engine refreshes it per
        #: public operation so detached databases pay nothing.
        self.observer: Optional[Any] = None

        self.data_file = self.disk.create_file()
        self.log_file = self.disk.create_file()
        self.meta_file = self.disk.create_file()
        self._sb_ids = (
            self.disk.allocate_page(self.meta_file),
            self.disk.allocate_page(self.meta_file),
        )
        self.memtable = Memtable()
        #: ``levels[0]`` is newest-first and may overlap; deeper levels
        #: are key-disjoint, sorted by ``key_min``.
        self.levels: List[List[RunMeta]] = [[]]
        self.flushed_seq = 0
        self._next_seq = 1
        self._next_run_id = 1
        self._version = 0
        self._manifest_pages: List[int] = []
        self._log_pages: List[int] = []
        self._log_tail_next = 0
        self._new_log_chain()
        self._commit()

    # ------------------------------------------------------------------
    # identity / recovery handle
    # ------------------------------------------------------------------
    @property
    def handle(self) -> Tuple[int, int, int, int, int]:
        """Everything :meth:`recover` needs to find the tree again:
        ``(data_file, log_file, meta_file, sb0, sb1)``."""
        return (
            self.data_file,
            self.log_file,
            self.meta_file,
            self._sb_ids[0],
            self._sb_ids[1],
        )

    # ------------------------------------------------------------------
    # public mutation API
    # ------------------------------------------------------------------
    def put(self, key: int, payload: bytes) -> None:
        """Insert or overwrite one row (upsert semantics)."""
        seq = self._take_seq()
        self._log_append(_LOG_POINT.pack(_LOG_PUT, seq, key) + payload)
        self.memtable.put(seq, key, payload)
        self.stats.puts += 1
        self._maybe_flush()

    def delete(self, key: int) -> None:
        """Write one point tombstone (no data page is touched)."""
        seq = self._take_seq()
        self._log_append(_LOG_POINT.pack(_LOG_DELETE, seq, key))
        self.memtable.delete(seq, key)
        self.stats.point_deletes += 1
        if self.observer is not None:
            self.observer.on_tombstone_write("point")
        self._maybe_flush()

    def delete_range(self, lo: int, hi: int) -> None:
        """Write one range tombstone covering ``[lo, hi]``."""
        seq = self._take_seq()
        self._log_append(_LOG_RANGE.pack(_LOG_DELETE_RANGE, seq, lo, hi))
        self.memtable.delete_range(seq, lo, hi)
        self.stats.range_deletes += 1
        if self.observer is not None:
            self.observer.on_tombstone_write("range")
        self._maybe_flush()

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------
    # public read API
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        """Newest payload for ``key``, or ``None`` (absent or deleted)."""
        self.stats.lookups += 1
        runs_probed = 0
        pages_read = 0
        best: Optional[Resolution] = self.memtable.resolve(key)
        if best is None:
            for meta in self.levels[0]:
                if not meta.covers(key):
                    continue
                runs_probed += 1
                best, pages = run_get(self.pool, meta, key)
                pages_read += pages
                if best is not None:
                    break
        if best is None:
            for runs in self.levels[1:]:
                meta = self._disjoint_covering(runs, key)
                if meta is None:
                    continue
                runs_probed += 1
                best, pages = run_get(self.pool, meta, key)
                pages_read += pages
                if best is not None:
                    break
        self.stats.lookup_runs_probed += runs_probed
        self.stats.lookup_pages_read += pages_read
        if self.observer is not None:
            self.observer.on_lsm_lookup(runs_probed, pages_read)
        if best is None:
            return None
        return best[1]

    @staticmethod
    def _disjoint_covering(
        runs: Sequence[RunMeta], key: int
    ) -> Optional[RunMeta]:
        if not runs:
            return None
        idx = bisect_right([r.key_min for r in runs], key) - 1
        if idx < 0:
            return None
        meta = runs[idx]
        return meta if key <= meta.key_max else None

    def scan(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(key, payload)`` for every live row, in key order."""
        resolved: Dict[int, Resolution] = {}
        ranges: List[RangeTombstone] = list(self.memtable.ranges)
        for runs in self.levels:
            for meta in runs:
                ranges.extend(meta.ranges)
                for key, seq, payload in run_iter(self.pool, meta):
                    known = resolved.get(key)
                    if known is None or seq > known[0]:
                        resolved[key] = (seq, payload)
        for key, fact in self.memtable.entries.items():
            known = resolved.get(key)
            if known is None or fact[0] > known[0]:
                resolved[key] = fact
        self.disk.charge_cpu_records(len(resolved))
        for key in sorted(resolved):
            seq, payload = resolved[key]
            if payload is None:
                continue
            if any(t.masks(seq, key) for t in ranges):
                continue
            yield key, payload

    # ------------------------------------------------------------------
    # size estimates (pure arithmetic: the planner feed)
    # ------------------------------------------------------------------
    @property
    def approx_records(self) -> int:
        """Estimated live rows (exact after full compaction; an upper
        bound while superseded versions still await merging)."""
        total = self.memtable.approx_live
        for runs in self.levels:
            for meta in runs:
                total += meta.live_entries
        return total

    @property
    def data_pages(self) -> int:
        return sum(m.data_pages for runs in self.levels for m in runs)

    @property
    def run_count(self) -> int:
        return sum(len(runs) for runs in self.levels)

    @property
    def tombstone_count(self) -> int:
        points = sum(m.tombstones for runs in self.levels for m in runs)
        ranged = sum(len(m.ranges) for runs in self.levels for m in runs)
        mem = sum(
            1 for _, payload in self.memtable.entries.values()
            if payload is None
        )
        return points + ranged + mem + len(self.memtable.ranges)

    def level_shape(self) -> List[int]:
        """Run count per level (a compact explain/selfcheck view)."""
        return [len(runs) for runs in self.levels]

    # ------------------------------------------------------------------
    # flush
    # ------------------------------------------------------------------
    def _maybe_flush(self) -> None:
        if self.memtable.entry_count >= self.config.memtable_entries:
            self.flush_memtable()

    def flush_memtable(self) -> bool:
        """Flush the memtable to a new L0 run; ``False`` when empty.

        Order matters for crash safety: run pages first, then a fresh
        log chain, then the manifest/superblock commit; only then are
        the old log pages freed.
        """
        if self.memtable.is_empty:
            return False
        with maybe_span(
            self.observer, f"lsm-flush({self.name})",
            kind="lsm-flush", target=self.name,
        ) as span:
            items = self.memtable.sorted_items()
            meta = build_run(
                self.pool,
                self.data_file,
                self._take_run_id(),
                level=0,
                items=items,
                ranges=self.memtable.sorted_ranges(),
            )
            self.levels[0].insert(0, meta)
            self.flushed_seq = self.memtable.max_seq
            old_log = list(self._log_pages)
            if self._log_tail_next:
                old_log.append(self._log_tail_next)
            self._new_log_chain()
            self._commit()
            self._free_pages(old_log)
            self.memtable = Memtable()
            self.stats.flushes += 1
            self.stats.flush_entries += len(items)
            self.stats.flush_pages += meta.data_pages
            span.set(entries=len(items), pages=meta.data_pages)
            if self.observer is not None:
                self.observer.on_memtable_flush(len(items), meta.data_pages)
        self.maybe_compact()
        return True

    def _take_run_id(self) -> int:
        run_id = self._next_run_id
        self._next_run_id += 1
        return run_id

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _level_budget(self, level: int) -> int:
        return self.config.level_runs * self.config.fanout ** (level - 1)

    def maybe_compact(self) -> int:
        """Run size-triggered compactions until every level fits."""
        ran = 0
        for _ in range(64):
            if len(self.levels[0]) >= self.config.l0_runs:
                self.compact_once(0)
                ran += 1
                continue
            for level in range(1, len(self.levels)):
                if len(self.levels[level]) > self._level_budget(level):
                    self.compact_once(level)
                    ran += 1
                    break
            else:
                return ran
        return ran

    def delete_aware_compactions(self, max_compactions: Optional[int] = None) -> int:
        """FADE: compact the most tombstone-laden runs first.

        A run qualifies when its tombstone density or tombstone age
        crosses the configured trigger; the worst (by density, then
        age) is compacted each round.  A qualifying run at the deepest
        populated level is rewritten in place, which drops its
        tombstones outright.  Returns the number of compactions run.
        """
        budget = max_compactions or self.config.max_delete_compactions
        ran = 0
        while ran < budget:
            picked = self._pick_fade_victim()
            if picked is None:
                break
            level, meta = picked
            in_place = level > 0 and self._is_deepest(level)
            if level == 0:
                self.compact_once(0)
            else:
                self.compact_once(level, victim=meta, in_place=in_place)
            ran += 1
        return ran

    def _pick_fade_victim(self) -> Optional[Tuple[int, RunMeta]]:
        best: Optional[Tuple[float, float, int, RunMeta]] = None
        cfg = self.config
        for level, runs in enumerate(self.levels):
            for meta in runs:
                if meta.tombstone_seq_min < 0:
                    continue
                density = meta.tombstone_density
                age = float(self._next_seq - meta.tombstone_seq_min)
                if (
                    density < cfg.tombstone_density_trigger
                    and age < cfg.tombstone_age_seqs
                ):
                    continue
                score = (density, age, level, meta)
                if best is None or score[:2] > best[:2]:
                    best = score
        if best is None:
            return None
        return best[2], best[3]

    def _is_deepest(self, level: int) -> bool:
        return all(not self.levels[i] for i in range(level + 1, len(self.levels)))

    def compact_once(
        self,
        level: int,
        victim: Optional[RunMeta] = None,
        in_place: bool = False,
    ) -> int:
        """One compaction step; returns pages written.

        Level 0 compacts *all* its runs (they may overlap) plus every
        overlapping level-1 run into level 1.  A deeper level compacts
        one victim run plus the overlapping runs one level down — or,
        with ``in_place``, rewrites the victim at its own level (legal
        only at the deepest populated level, where dropped tombstones
        can no longer unmask anything).
        """
        if level == 0:
            inputs_here = list(self.levels[0])
        else:
            if victim is None:
                victim = self._pick_victim(level)
            inputs_here = [victim] if victim is not None else []
        if not inputs_here:
            return 0
        target = level if in_place else level + 1
        while len(self.levels) <= target:
            self.levels.append([])
        span_lo = min(m.key_min for m in inputs_here)
        span_hi = max(m.key_max for m in inputs_here)
        if in_place:
            overlapping: List[RunMeta] = []
        else:
            overlapping = [
                m
                for m in self.levels[target]
                if m.key_max >= span_lo and m.key_min <= span_hi
            ]
        inputs = inputs_here + overlapping
        to_bottom = all(
            not self.levels[i] for i in range(target + 1, len(self.levels))
        )

        with maybe_span(
            self.observer, f"lsm-compaction({self.name}:L{level})",
            kind="lsm-compaction", target=self.name,
        ) as span:
            pages_read = sum(m.data_pages for m in inputs)
            items: List[Item] = []
            ranges: List[RangeTombstone] = []
            for meta in inputs:
                ranges.extend(meta.ranges)
                items.extend(run_iter(self.pool, meta))
            merged, dropped_tombs, superseded = self._merge(
                items, ranges, to_bottom
            )
            keep_ranges: List[RangeTombstone] = []
            if to_bottom:
                dropped_tombs += len(ranges)
            else:
                keep_ranges = sorted(
                    ranges, key=lambda t: (t.lo, t.hi, t.seq)
                )
            cover_lo = min(
                [span_lo] + [m.key_min for m in overlapping]
            )
            cover_hi = max(
                [span_hi] + [m.key_max for m in overlapping]
            )
            outputs = self._build_outputs(
                merged, keep_ranges, target, cover_lo, cover_hi
            )
            pages_written = sum(m.data_pages for m in outputs)

            if level == 0 and not in_place:
                self.levels[0] = []
            else:
                self.levels[level] = [
                    m for m in self.levels[level] if m not in inputs_here
                ]
            survivors = [
                m for m in self.levels[target] if m not in overlapping
            ]
            survivors.extend(outputs)
            if target >= 1:
                survivors.sort(key=lambda m: m.key_min)
            self.levels[target] = survivors
            while len(self.levels) > 1 and not self.levels[-1]:
                self.levels.pop()
            self._commit()
            for meta in inputs:
                self._free_pages(meta.page_ids)

            self.stats.compactions += 1
            self.stats.compaction_pages_read += pages_read
            self.stats.compaction_pages_written += pages_written
            self.stats.tombstones_dropped += dropped_tombs
            self.stats.entries_superseded += superseded
            span.set(
                level=level,
                pages_read=pages_read,
                pages_written=pages_written,
                tombstones_dropped=dropped_tombs,
            )
            if self.observer is not None:
                self.observer.on_compaction(
                    level, pages_read, pages_written, dropped_tombs
                )
        return pages_written

    def _pick_victim(self, level: int) -> Optional[RunMeta]:
        runs = self.levels[level]
        if not runs:
            return None
        # Prefer the most tombstone-dense run (FADE's instinct applied
        # to the size trigger too); tie-break on the oldest data.
        return max(
            runs, key=lambda m: (m.tombstone_density, -m.seq_max)
        )

    def _merge(
        self,
        items: List[Item],
        ranges: List[RangeTombstone],
        to_bottom: bool,
    ) -> Tuple[List[Item], int, int]:
        """Keep the newest fact per key; apply range masking.

        Returns ``(survivors, tombstones_dropped, superseded)``.
        Tombstones drop only when compacting into the deepest data —
        anywhere else they must keep masking older versions below.
        """
        self.disk.charge_cpu_records(len(items), factor=2.0)
        items.sort(key=lambda item: (item[0], -item[1]))
        survivors: List[Item] = []
        dropped_tombs = 0
        superseded = 0
        i = 0
        while i < len(items):
            key, seq, payload = items[i]
            j = i + 1
            while j < len(items) and items[j][0] == key:
                j += 1
            superseded += j - i - 1
            i = j
            if any(t.masks(seq, key) for t in ranges):
                superseded += 1
                continue
            if payload is None:
                if to_bottom:
                    dropped_tombs += 1
                    continue
            survivors.append((key, seq, payload))
        return survivors, dropped_tombs, superseded

    def _build_outputs(
        self,
        merged: List[Item],
        keep_ranges: List[RangeTombstone],
        target: int,
        cover_lo: int,
        cover_hi: int,
    ) -> List[RunMeta]:
        """Split merged entries into runs partitioning the covering span.

        Chunk boundaries clip range tombstones so each output run's
        responsibility interval carries exactly the tombstone spans it
        covers — no key between two runs escapes masking.
        """
        if not merged and not keep_ranges:
            return []
        page_room = self.pool.disk.page_size - HEADER_SIZE
        run_room = self.config.run_pages * page_room
        chunks: List[List[Item]] = []
        current: List[Item] = []
        used = 0
        for item in merged:
            record_bytes = (
                ENTRY.size + len(item[2] or b"") + SLOT_SIZE
            )
            if current and used + record_bytes > run_room:
                chunks.append(current)
                current = []
                used = 0
            current.append(item)
            used += record_bytes
        if current:
            chunks.append(current)
        if not chunks:
            chunks = [[]]

        outputs: List[RunMeta] = []
        for idx, chunk in enumerate(chunks):
            lo = cover_lo if idx == 0 else chunk[0][0]
            if idx + 1 < len(chunks):
                hi = chunks[idx + 1][0][0] - 1
            else:
                hi = cover_hi
            clipped = []
            for tomb in keep_ranges:
                clip_lo = max(tomb.lo, lo)
                clip_hi = min(tomb.hi, hi)
                if clip_lo <= clip_hi:
                    clipped.append(
                        RangeTombstone(tomb.seq, clip_lo, clip_hi)
                    )
            if not chunk and not clipped:
                continue
            outputs.append(
                build_run(
                    self.pool,
                    self.data_file,
                    self._take_run_id(),
                    level=target,
                    items=chunk,
                    ranges=clipped,
                    cover_lo=lo,
                    cover_hi=hi,
                )
            )
        return outputs

    def bulk_load(self, rows: Iterable[Tuple[int, bytes]]) -> int:
        """Load rows straight into leveled runs: no log traffic, one
        manifest commit (the LSM counterpart of ``load_table`` +
        ``create_index(build_method="bulk")``).

        The runs land at the shallowest level whose run budget fits
        them — a big load goes straight to a deep level, so the first
        post-load flush does not trigger a rebalancing storm against a
        deliberately overfull level 1.  Only legal on an empty tree;
        duplicate keys keep the last occurrence (upsert order).
        Returns the number of rows loaded.
        """
        if self.run_count or not self.memtable.is_empty:
            raise StorageError("bulk_load needs an empty tree")
        latest: Dict[int, bytes] = {}
        for key, payload in rows:
            latest[key] = payload
        if not latest:
            return 0
        self.disk.charge_cpu_records(len(latest), factor=4.0)  # sort
        items: List[Item] = []
        for key in sorted(latest):
            items.append((key, self._take_seq(), latest[key]))
        outputs = self._build_outputs(
            items, [], 1, items[0][0], items[-1][0]
        )
        target = 1
        while self._level_budget(target) < len(outputs):
            target += 1
        if target != 1:
            outputs = [replace(m, level=target) for m in outputs]
        while len(self.levels) <= target:
            self.levels.append([])
        self.levels[target] = outputs
        self.flushed_seq = self._next_seq - 1
        self._commit()
        return len(items)

    def compact_all(self) -> int:
        """Compact until one key-disjoint, tombstone-free level remains.

        The benchmark's "fully reclaimed" measurement point and the
        vacuum entry point; returns the number of compactions run.
        """
        self.flush_memtable()
        ran = 0
        for _ in range(512):
            populated = [i for i, runs in enumerate(self.levels) if runs]
            if not populated:
                return ran
            top = populated[0]
            done = (
                len(populated) == 1
                and top >= 1
                and all(
                    m.tombstones == 0 and not m.ranges
                    for m in self.levels[top]
                )
            )
            if done:
                return ran
            self.compact_once(top)
            ran += 1
        raise StorageError("compact_all failed to converge")

    # ------------------------------------------------------------------
    # log
    # ------------------------------------------------------------------
    def _new_log_chain(self) -> None:
        head = self.disk.allocate_page(self.log_file)
        successor = self.disk.allocate_page(self.log_file)
        with self.pool.pin(head) as pinned:
            page = SlottedPage.format_empty(pinned.data)
            page.insert(_NEXT.pack(successor))
            pinned.mark_dirty()
        self.pool.flush_page(head)
        self._log_pages = [head]
        self._log_tail_next = successor

    def _log_append(self, op: bytes) -> None:
        # Pure append: the op lands on the pre-allocated (still empty)
        # tail page, which is given a successor of its own and is never
        # written again.  One flush per append — the same count a
        # tail-rewrite scheme pays — but a torn write can only take out
        # the op being acknowledged, never an earlier one.
        new_tail = self._log_tail_next
        successor = self.disk.allocate_page(self.log_file)
        with self.pool.pin(new_tail) as pinned:
            page = SlottedPage.format_empty(pinned.data)
            page.insert(_NEXT.pack(successor))
            page.insert(op)
            pinned.mark_dirty()
        self.pool.flush_page(new_tail)
        self._log_pages.append(new_tail)
        self._log_tail_next = successor
        self.stats.log_appends += 1

    @staticmethod
    def _decode_log_op(record: bytes) -> Tuple[int, int, int, int, Optional[bytes]]:
        """Decode one log record to ``(kind, seq, a, b, payload)``."""
        kind = record[0]
        if kind == _LOG_DELETE_RANGE:
            _, seq, lo, hi = _LOG_RANGE.unpack_from(record, 0)
            return kind, seq, lo, hi, None
        _, seq, key = _LOG_POINT.unpack_from(record, 0)
        if kind == _LOG_PUT:
            return kind, seq, key, 0, bytes(record[_LOG_POINT.size:])
        if kind == _LOG_DELETE:
            return kind, seq, key, 0, None
        raise RecoveryError(f"unknown log record kind {kind}")

    # ------------------------------------------------------------------
    # manifest + superblock commit
    # ------------------------------------------------------------------
    def _encode_manifest(self) -> bytes:
        parts = [b""]
        count = 0
        for level, runs in enumerate(self.levels):
            for meta in runs:
                count += 1
                parts.append(
                    _MANIFEST_RUN.pack(
                        meta.run_id,
                        level,
                        meta.entry_count,
                        meta.tombstones,
                        meta.seq_min,
                        meta.seq_max,
                        meta.tombstone_seq_min,
                        meta.key_min,
                        meta.key_max,
                        meta.data_pages,
                        len(meta.ranges),
                    )
                )
                parts.append(
                    struct.pack(f"<{meta.data_pages}q", *meta.page_ids)
                )
                parts.append(
                    struct.pack(f"<{len(meta.fences)}q", *meta.fences)
                )
                for tomb in meta.ranges:
                    parts.append(
                        struct.pack("<qqq", tomb.seq, tomb.lo, tomb.hi)
                    )
        parts[0] = _MANIFEST_HEADER.pack(_MANIFEST_MAGIC, count)
        return b"".join(parts)

    @staticmethod
    def _decode_manifest(blob: bytes) -> List[RunMeta]:
        magic, count = _MANIFEST_HEADER.unpack_from(blob, 0)
        if magic != _MANIFEST_MAGIC:
            raise RecoveryError("manifest magic mismatch")
        offset = _MANIFEST_HEADER.size
        runs: List[RunMeta] = []
        for _ in range(count):
            (
                run_id, level, entry_count, tombstones, seq_min, seq_max,
                tombstone_seq_min, key_min, key_max, n_pages, n_ranges,
            ) = _MANIFEST_RUN.unpack_from(blob, offset)
            offset += _MANIFEST_RUN.size
            page_ids = struct.unpack_from(f"<{n_pages}q", blob, offset)
            offset += 8 * n_pages
            fences = struct.unpack_from(f"<{n_pages}q", blob, offset)
            offset += 8 * n_pages
            ranges = []
            for _ in range(n_ranges):
                seq, lo, hi = struct.unpack_from("<qqq", blob, offset)
                offset += 24
                ranges.append(RangeTombstone(seq, lo, hi))
            runs.append(
                RunMeta(
                    run_id=run_id,
                    level=level,
                    page_ids=tuple(page_ids),
                    fences=tuple(fences),
                    key_min=key_min,
                    key_max=key_max,
                    seq_min=seq_min,
                    seq_max=seq_max,
                    entry_count=entry_count,
                    tombstones=tombstones,
                    ranges=tuple(ranges),
                    tombstone_seq_min=tombstone_seq_min,
                )
            )
        return runs

    def _commit(self) -> None:
        """Make the current levels durable: manifest pages, then the
        superblock flip, then (only then) free the replaced manifest."""
        blob = self._encode_manifest()
        capacity = (
            self.disk.page_size - HEADER_SIZE - 2 * SLOT_SIZE - _NEXT.size
        )
        fragments = [
            blob[i : i + capacity] for i in range(0, len(blob), capacity)
        ] or [b""]
        # Chain backwards so each page knows its successor when written;
        # allocation order still ascends, keeping the writes sequential.
        page_ids: List[int] = []
        next_id = 0
        for fragment in reversed(fragments):
            pinned = self.pool.pin_new(self.meta_file)
            page = SlottedPage.format_empty(pinned.data)
            page.insert(_NEXT.pack(next_id))
            if fragment:
                page.insert(fragment)
            next_id = pinned.page_id
            page_ids.append(pinned.page_id)
            self.pool.unpin(pinned.page_id, dirty=True)
            self.pool.flush_page(pinned.page_id)
        manifest_head = next_id

        self._version += 1
        slot = self._sb_ids[self._version % 2]
        with self.pool.pin(slot) as pinned:
            pinned.data[:] = bytes(self.disk.page_size)
            _SB.pack_into(
                pinned.data,
                0,
                _SB_MAGIC,
                self._version,
                self.flushed_seq,
                self._next_run_id,
                self._log_pages[0],
                manifest_head,
            )
            pinned.mark_dirty()
        self.pool.flush_page(slot)

        old_manifest = self._manifest_pages
        self._manifest_pages = list(reversed(page_ids))
        self._free_pages(old_manifest)
        self.stats.manifest_commits += 1
        self.stats.manifest_pages += len(fragments)

    def _free_pages(self, page_ids: Sequence[int]) -> None:
        for page_id in page_ids:
            self.pool.discard(page_id)
            self.disk.free_page(page_id)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        pool: BufferPool,
        handle: Tuple[int, int, int, int, int],
        config: Optional[LsmConfig] = None,
        name: str = "lsm",
    ) -> "LsmTree":
        """Rebuild a tree from its durable state after a crash.

        Reads both superblock slots (ignoring any that fail checksum
        or magic), adopts the highest version, decodes its manifest,
        and replays the log chain for operations newer than
        ``flushed_seq``.  A torn or missing log tail ends replay at
        the last intact page.  The surviving memtable is always
        re-logged into a fresh chain and committed, so recovery leaves
        a state that recovers to itself.
        """
        data_file, log_file, meta_file, sb0, sb1 = handle
        best: Optional[Tuple[int, int, int, int, int]] = None
        for slot in (sb0, sb1):
            try:
                with pool.pin(slot) as pinned:
                    raw = bytes(pinned.data[: _SB.size])
            except (StorageError, MediaError):
                continue
            magic, version, flushed_seq, next_run_id, log_head, manifest = (
                _SB.unpack(raw)
            )
            if magic != _SB_MAGIC:
                continue
            if best is None or version > best[0]:
                best = (version, flushed_seq, next_run_id, log_head, manifest)
        if best is None:
            raise RecoveryError(
                "no valid LSM superblock slot survives; the tree was "
                "never committed"
            )
        version, flushed_seq, next_run_id, log_head, manifest_head = best

        tree = cls.__new__(cls)
        tree.pool = pool
        tree.disk = pool.disk
        tree.name = name
        tree.config = config or LsmConfig()
        tree.stats = LsmStats()
        tree.observer = None
        tree.data_file = data_file
        tree.log_file = log_file
        tree.meta_file = meta_file
        tree._sb_ids = (sb0, sb1)
        tree.memtable = Memtable()
        tree.flushed_seq = flushed_seq
        tree._next_run_id = next_run_id
        tree._version = version
        tree._log_pages = []
        tree._log_tail_next = 0

        # Manifest chain -> levels.
        tree._manifest_pages = []
        blob_parts: List[bytes] = []
        page_id = manifest_head
        while page_id:
            tree._manifest_pages.append(page_id)
            with pool.pin(page_id) as pinned:
                page = SlottedPage(pinned.data)
                records = [record for _, record in page.records()]
            if not records:
                raise RecoveryError(
                    f"manifest page {page_id} is empty"
                )
            page_id = _NEXT.unpack(records[0])[0]
            blob_parts.extend(records[1:])
        runs = cls._decode_manifest(b"".join(blob_parts))
        depth = max([r.level for r in runs], default=0)
        tree.levels = [[] for _ in range(depth + 1)]
        for meta in runs:
            tree.levels[meta.level].append(meta)
        for level in range(1, len(tree.levels)):
            tree.levels[level].sort(key=lambda m: m.key_min)

        # Log replay: ops newer than flushed_seq rebuild the memtable.
        max_seq = flushed_seq
        for meta in runs:
            max_seq = max(max_seq, meta.seq_max)
        old_log: List[int] = []
        page_id = log_head
        while page_id:
            try:
                with pool.pin(page_id) as pinned:
                    page = SlottedPage(pinned.data)
                    records = [record for _, record in page.records()]
            except (StorageError, MediaError):
                # Torn tail: everything beyond the last intact page is
                # gone; the freshly logged chain below re-anchors what
                # survived.
                break
            if not records:
                # The pre-allocated, never-formatted successor: the
                # clean end of the chain.
                old_log.append(page_id)
                break
            old_log.append(page_id)
            page_id = _NEXT.unpack(records[0])[0]
            for record in records[1:]:
                kind, seq, a, b, payload = cls._decode_log_op(record)
                max_seq = max(max_seq, seq)
                if seq <= flushed_seq:
                    continue
                if kind == _LOG_PUT:
                    assert payload is not None
                    tree.memtable.put(seq, a, payload)
                elif kind == _LOG_DELETE:
                    tree.memtable.delete(seq, a)
                else:
                    tree.memtable.delete_range(seq, a, b)
        tree._next_seq = max_seq + 1

        # Re-log the surviving memtable into a fresh chain and commit,
        # so a torn tail can never make an already-durable operation
        # less durable than it was.
        tree._new_log_chain()
        for key, seq, payload in tree.memtable.sorted_items():
            if payload is None:
                tree._log_append(_LOG_POINT.pack(_LOG_DELETE, seq, key))
            else:
                tree._log_append(
                    _LOG_POINT.pack(_LOG_PUT, seq, key) + payload
                )
        for tomb in tree.memtable.sorted_ranges():
            tree._log_append(
                _LOG_RANGE.pack(
                    _LOG_DELETE_RANGE, tomb.seq, tomb.lo, tomb.hi
                )
            )
        tree._commit()
        tree._free_pages(old_log)
        return tree

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def drop(self) -> None:
        """Free every page the tree owns (DROP TABLE)."""
        for runs in self.levels:
            for meta in runs:
                self._free_pages(meta.page_ids)
        self.levels = [[]]
        log_pages = list(self._log_pages)
        if self._log_tail_next:
            log_pages.append(self._log_tail_next)
        self._free_pages(log_pages)
        self._log_pages = []
        self._log_tail_next = 0
        self._free_pages(self._manifest_pages)
        self._manifest_pages = []
        self._free_pages(self._sb_ids)

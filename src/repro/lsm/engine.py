"""The ``engine="lsm"`` implementation of the storage-engine seam.

One :class:`LsmEngine` binds a catalog table to its
:class:`~repro.lsm.tree.LsmTree`.  Rows are keyed by the table's
declared LSM key column (an INT); the tree stores the serialized row
as the payload, so the serializer — and therefore the row encoding —
is shared with the heap engine byte for byte.

A bulk delete compiles the key list to tombstones (consecutive runs
become range tombstones), appends them to the log/memtable, and lets
FADE schedule the compactions that actually reclaim space — the
LSM counterpart of the paper's vertical side-file delete, measured on
the same simulated disk by ``fig_lsm_vs_vertical``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CatalogError
from repro.lsm.planning import (
    LsmDeletePlan,
    choose_lsm_plan,
    compile_tombstones,
)
from repro.lsm.tree import LsmTree
from repro.obs.trace import maybe_span
from repro.storage.disk import DiskStats
from repro.storage.engine import LSM, EngineStatistics, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import TableInfo
    from repro.catalog.database import Database


@dataclass
class LsmDeleteResult:
    """What one LSM bulk delete did, with exact I/O attribution.

    ``records_deleted`` counts the *distinct keys acknowledged as
    deleted* (tombstoned) — the engine does not probe for existence
    first, so absent keys are acknowledged too (upsert-style delete
    semantics, unlike the heap executor's exact row count).
    """

    plan: LsmDeletePlan
    records_deleted: int
    elapsed_ms: float
    io: DiskStats
    point_tombstones: int
    range_tombstones: int
    flushes: int
    compactions: int
    compaction_pages_read: int
    compaction_pages_written: int
    tombstones_dropped: int
    notes: List[str] = field(default_factory=list)


class LsmEngine:
    """Storage-engine adapter over one table's :class:`LsmTree`."""

    name = LSM

    def __init__(self, db: "Database", table_name: str) -> None:
        self.db = db
        self.table_name = table_name
        table = db.table(table_name)
        tree: Optional[LsmTree] = getattr(table, "lsm", None)
        if tree is None:
            raise CatalogError(
                f"table {table_name} has no LSM tree; was it created "
                "with engine='lsm'?"
            )
        self.tree = tree
        self.key_column: str = table.lsm_key_column

    def table(self) -> "TableInfo":
        return self.db.table(self.table_name)

    def _sync_observer(self) -> None:
        # Refreshed per public operation: attaching/detaching an
        # observer on the database must take effect immediately, and a
        # detached database must pay only this attribute store.
        self.tree.observer = self.db.obs

    # ------------------------------------------------------------------
    # StorageEngine surface
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[object]) -> None:
        """Upsert one row keyed by the LSM key column (returns ``None``:
        LSM rows have no stable RID)."""
        table = self.table()
        self._sync_observer()
        key = table.key_of(tuple(values), self.key_column)
        self.tree.put(key, table.serializer.pack(values))
        return None

    def scan(self) -> Iterator[Tuple[object, Row]]:
        """Yield ``(key, values)`` for every live row, in key order."""
        table = self.table()
        self._sync_observer()
        for key, payload in self.tree.scan():
            yield key, table.serializer.unpack(payload)

    def point_lookup(self, column: str, key: int) -> Optional[Row]:
        if column != self.key_column:
            raise CatalogError(
                f"LSM point lookups must use the key column "
                f"{self.key_column!r}, not {column!r}"
            )
        self._sync_observer()
        payload = self.tree.get(key)
        if payload is None:
            return None
        return self.table().serializer.unpack(payload)

    def bulk_delete(
        self,
        column: str,
        keys: Sequence[int],
        plan: Optional[LsmDeletePlan] = None,
        **_: Any,
    ) -> LsmDeleteResult:
        return lsm_bulk_delete(
            self.db, self.table_name, column, keys, plan=plan
        )

    def delete_range(self, lo: int, hi: int) -> None:
        """One range tombstone over ``[lo, hi]`` on the key column."""
        self._sync_observer()
        self.tree.delete_range(lo, hi)

    def statistics(self) -> EngineStatistics:
        tree = self.tree
        return EngineStatistics(
            engine=self.name,
            table_name=self.table_name,
            logical_records=tree.approx_records,
            data_pages=tree.data_pages,
            structures=tree.run_count,
            detail={
                "levels": float(len(tree.levels)),
                "l0_runs": float(len(tree.levels[0])),
                "tombstones": float(tree.tombstone_count),
                "memtable_entries": float(tree.memtable.entry_count),
            },
        )


def lsm_bulk_delete(
    db: "Database",
    table_name: str,
    column: str,
    keys: Sequence[int],
    plan: Optional[LsmDeletePlan] = None,
    compact: bool = True,
) -> LsmDeleteResult:
    """Execute ``DELETE FROM table WHERE column IN keys`` on an LSM table.

    Tombstone writes first (ranges compiled from consecutive key
    runs), then the delete-aware compactions FADE selects — unless
    ``compact=False``, which leaves reclamation entirely to later
    size-triggered compactions (the "write-only delete" mode the
    benchmark uses to measure lookup amplification before and after
    FADE runs).
    """
    table = db.table(table_name)
    tree: Optional[LsmTree] = getattr(table, "lsm", None)
    if tree is None:
        raise CatalogError(
            f"table {table_name} is not an LSM table; use "
            "repro.core.executor.bulk_delete"
        )
    if plan is None:
        plan = choose_lsm_plan(db, table_name, column, keys)
    elif plan.column != column or plan.table_name != table_name:
        raise CatalogError(
            f"plan targets {plan.table_name}.{plan.column}, call "
            f"targets {table_name}.{column}"
        )
    tree.observer = db.obs
    started_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    tree_before = tree.stats.snapshot()
    points, ranges = compile_tombstones(keys)
    with maybe_span(
        db.obs, f"lsm-delete({table_name})",
        kind="lsm-delete", target=table_name,
        n_deletes=plan.n_deletes,
    ) as span:
        for lo, hi in ranges:
            tree.delete_range(lo, hi)
        for key in points:
            tree.delete(key)
        if compact:
            tree.delete_aware_compactions()
        delta = tree.stats.delta_since(tree_before)
        span.set(
            point_tombstones=len(points),
            range_tombstones=len(ranges),
            flushes=delta.flushes,
            compactions=delta.compactions,
            tombstones_dropped=delta.tombstones_dropped,
        )
    result = LsmDeleteResult(
        plan=plan,
        records_deleted=len(set(keys)),
        elapsed_ms=db.clock.now_ms - started_ms,
        io=db.disk.stats.delta_since(io_before),
        point_tombstones=len(points),
        range_tombstones=len(ranges),
        flushes=delta.flushes,
        compactions=delta.compactions,
        compaction_pages_read=delta.compaction_pages_read,
        compaction_pages_written=delta.compaction_pages_written,
        tombstones_dropped=delta.tombstones_dropped,
    )
    if not compact:
        result.notes.append(
            "compaction deferred: tombstones written, reclamation "
            "left to size triggers / a later delete_aware pass"
        )
    return result

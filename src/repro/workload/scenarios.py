"""Named workload scenarios.

A registry of the configurations the paper's evaluation uses, plus the
extension scenarios, so benches, tests, the CLI, and downstream users
can say ``build_scenario("paper-default")`` instead of re-assembling
`WorkloadConfig` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.workload.generator import Workload, WorkloadConfig, build_workload


@dataclass(frozen=True)
class Scenario:
    """A named, documented workload configuration."""

    name: str
    description: str
    config: WorkloadConfig

    def build(self, record_count: Optional[int] = None) -> Workload:
        config = self.config
        if record_count is not None:
            config = replace(config, record_count=record_count)
        return build_workload(config)


_SCENARIOS: Dict[str, Scenario] = {}


def _register(name: str, description: str, config: WorkloadConfig) -> None:
    _SCENARIOS[name] = Scenario(name, description, config)


_register(
    "paper-default",
    "Section 4.1's base setup: one unclustered index on A, the 5 MB "
    "memory budget (scaled).  Experiments 1, 3 and 4 start here.",
    WorkloadConfig(index_columns=("A",), memory_paper_mb=5.0),
)
_register(
    "three-indexes",
    "Figure 1 / Figure 8's heavy end: indexes on A, B and C.",
    WorkloadConfig(index_columns=("A", "B", "C"), memory_paper_mb=5.0),
)
_register(
    "clustered",
    "Experiment 5: the table clustered on A, the traditional plan's "
    "best case.",
    WorkloadConfig(index_columns=("A",), memory_paper_mb=5.0,
                   clustered_on="A"),
)
_register(
    "tall-index",
    "Experiment 3's height-4 variant (inner fan-out capped).",
    WorkloadConfig(index_columns=("A",), memory_paper_mb=5.0,
                   index_height=4),
)
_register(
    "tiny-memory",
    "Experiment 4's low end: the 2 MB budget (scaled), floor lowered "
    "so it actually binds.",
    WorkloadConfig(index_columns=("A",), memory_paper_mb=2.0,
                   memory_floor_pages=8),
)


def scenario(name: str) -> Scenario:
    """Look up a scenario; raises ``KeyError`` with the catalog."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(_SCENARIOS)}"
        )


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def build_scenario(
    name: str, record_count: Optional[int] = None
) -> Workload:
    """Build the named scenario's database."""
    return scenario(name).build(record_count)

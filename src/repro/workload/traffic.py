"""Multi-session OLTP traffic interleaved with a running bulk delete.

The paper's §2.4/§3 concurrency story — side-files, off-line index
maintenance, unique-index-first — promises that a vertical bulk delete
can run *beside* live load.  This module turns that promise into a
measured quantity: a seeded multi-tenant driver replays point reads,
pad updates and inserts from many simulated sessions while a delete
strategy runs on the same engine, and every user operation gets an
honest latency on the simulated clock.

The engine is single-threaded, so concurrency is cooperative and
exactly reproducible: the delete executes as a sequence of *slices*
(the §3 critical phase, then one propagation step per off-line index —
or one chunk per ``DELETE ... LIMIT n`` batch for the production
baseline), and user operations are serviced between slices, in arrival
order.  An operation that arrives while a slice is executing waits
until the slice ends; that wait is charged to the operation's latency
and attributed to the delete:

* ``lock`` — the slice held the table X lock (the critical phase);
  the operation's row lock request would have raised
  :class:`~repro.errors.LockConflictError` (``repro.txn.locks``),
* ``lane`` — the slice occupied the engine's only execution lane
  (latch/serialization wait during propagation or a chunk),

while *buffer pressure* — the extra misses a user operation pays
because the delete swept its hot pages out of the shared pool — shows
up in the operation's own service time and is reported against the
pre-delete baseline.

Every stochastic choice (think times, operation mix, key picks) flows
from :class:`TrafficConfig.seed` through per-session
``random.Random`` streams, so a fixed seed fixes the entire timeline:
latencies, histograms and percentiles are bit-reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.database import Database
from repro.core.chunked import ChunkedDelete
from repro.errors import ReproError
from repro.storage.rid import RID
from repro.txn.coordinator import (
    BulkDeleteCoordinator,
    Phase,
    PropagationMode,
    UpdateRouter,
)
from repro.txn.locks import LockMode
from repro.txn.transactions import Transaction, TransactionManager
from repro.workload.generator import INT_COLUMNS, Workload

#: Stall categories an operation's wait can be attributed to.
STALL_LOCK = "lock"
STALL_LANE = "lane"


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one traffic run (all randomness flows from ``seed``)."""

    sessions: int = 8
    ops_per_session: int = 40
    #: Mean think time between a session's operations (exponential
    #: inter-arrival in a closed loop: each session keeps at most one
    #: operation outstanding, as a connection-pooled client would).
    think_ms: float = 20.0
    #: Operation mix; the insert fraction is the remainder.
    read_fraction: float = 0.6
    update_fraction: float = 0.25
    #: The delete statement is submitted when this many user operations
    #: have completed (``None``: one third of the total, so the report
    #: has before/during/after windows).
    delete_after_ops: Optional[int] = None
    seed: int = 1042

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.ops_per_session < 1:
            raise ReproError("traffic needs >= 1 session and >= 1 op each")
        if self.think_ms <= 0:
            raise ReproError("think_ms must be positive")
        if not (
            0.0 <= self.read_fraction
            and 0.0 <= self.update_fraction
            and self.read_fraction + self.update_fraction <= 1.0
        ):
            raise ReproError("operation mix fractions must sum to <= 1")

    @property
    def total_ops(self) -> int:
        return self.sessions * self.ops_per_session

    def session_rng(self, session_id: int) -> random.Random:
        """The per-session random stream, derived from the config seed.

        The derivation is plain arithmetic (no ``hash()``), so it is
        stable across processes and PYTHONHASHSEED values.
        """
        return random.Random(self.seed * 1_000_003 + session_id)


# ----------------------------------------------------------------------
# exact latency histograms
# ----------------------------------------------------------------------
class LatencyHistogram:
    """An exact histogram of simulated-time latencies.

    Simulated time is deterministic, so there is no need to bucket:
    the histogram stores an exact count per distinct value, percentiles
    are nearest-rank over the true multiset, and ``total_ms`` is the
    correctly rounded (order-independent) sum.  Merging per-session
    histograms therefore reproduces the global histogram exactly.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[float, int] = {}

    def record(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ReproError("latency cannot be negative")
        self._counts[value_ms] = self._counts.get(value_ms, 0) + 1

    # -- readback ------------------------------------------------------
    @property
    def count(self) -> int:
        return sum(self._counts.values())

    @property
    def total_ms(self) -> float:
        """Order-independent exact sum (``math.fsum`` over the multiset)."""
        return math.fsum(
            value * n for value, n in sorted(self._counts.items())
        )

    @property
    def max_ms(self) -> float:
        return max(self._counts) if self._counts else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (exact; ``p`` in (0, 100])."""
        if not 0.0 < p <= 100.0:
            raise ReproError("percentile wants p in (0, 100]")
        total = self.count
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * total))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self.max_ms  # pragma: no cover - unreachable

    def counts(self) -> Dict[float, int]:
        return dict(self._counts)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram holding both multisets."""
        merged = LatencyHistogram()
        for source in (self._counts, other._counts):
            for value, n in source.items():
                merged._counts[value] = merged._counts.get(value, 0) + n
        return merged

    @classmethod
    def merged(
        cls, histograms: Sequence["LatencyHistogram"]
    ) -> "LatencyHistogram":
        out = cls()
        for hist in histograms:
            out = out.merge(hist)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyHistogram(n={self.count}, "
            f"p50={self.percentile(50):.1f}ms, "
            f"p99={self.percentile(99):.1f}ms)"
        )


# ----------------------------------------------------------------------
# per-operation / per-slice records
# ----------------------------------------------------------------------
@dataclass
class OpRecord:
    """One user operation's full latency accounting (simulated ms).

    Five clock readings tell the whole story —
    ``arrival <= stall_from <= stall_to <= start <= end`` — and every
    duration is *derived* from them, so the accounting has no float-sum
    residue to epsilon away:

    * ``delete_stall_ms``  = stall_to − stall_from (the one delete
      slice the op waited through: either running at arrival, or
      queued ahead of it under FCFS),
    * ``service_ms``       = end − start (the op's own work),
    * ``peer_wait_ms``     = the rest of the queueing delay (waiting
      behind other sessions' operations).
    """

    session: int
    seq: int
    kind: str  # read | update | insert
    key: Optional[int]
    values: Optional[Tuple[object, ...]]
    arrival_ms: float
    #: The delete-slice interval this op waited through (both equal to
    #: ``arrival_ms`` when the delete never delayed it).
    stall_from_ms: float
    stall_to_ms: float
    start_ms: float
    end_ms: float
    #: Why the op waited for the delete (None when it did not).
    stall_kind: Optional[str]  # STALL_LOCK | STALL_LANE | None
    io_ms: float
    buffer_misses: int
    phase: str = "before"  # before | during | after

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def delete_stall_ms(self) -> float:
        return self.stall_to_ms - self.stall_from_ms

    @property
    def peer_wait_ms(self) -> float:
        return (self.start_ms - self.arrival_ms) - self.delete_stall_ms


@dataclass
class SliceRecord:
    """One delete slice the engine ran between user operations."""

    label: str
    stall_kind: str  # what a concurrent op's wait is attributed to
    start_ms: float
    end_ms: float

    @property
    def elapsed_ms(self) -> float:
        return self.end_ms - self.start_ms


# ----------------------------------------------------------------------
# primitive user operations (shared with the replay/regression tests)
# ----------------------------------------------------------------------
def apply_point_read(
    db: Database, table_name: str, column: str, key: int
) -> Tuple[object, ...]:
    """Point read by key: driving-index lookup, then one heap read."""
    table = db.table(table_name)
    index = table.indexes_on(column)[0]
    rids = index.tree.search(key)
    if not rids:
        raise ReproError(f"point read of absent key {key}")
    return db.read(table_name, RID.unpack(rids[0]))


def apply_pad_update(
    db: Database, table_name: str, column: str, key: int
) -> RID:
    """Update the padding column of the row with ``key`` (in place).

    Only the non-indexed pad changes, so the write is one heap page and
    no index maintenance — the classic "touch a status column" OLTP
    update.  The new pad is a pure function of the old one (x↔y), so a
    replayed sequence produces identical bytes.
    """
    table = db.table(table_name)
    index = table.indexes_on(column)[0]
    rids = index.tree.search(key)
    if not rids:
        raise ReproError(f"pad update of absent key {key}")
    rid = RID.unpack(rids[0])
    values = list(db.read(table_name, rid))
    pad = str(values[-1])
    values[-1] = ("y" if pad[:1] == "x" else "x") * len(pad)
    table.heap.update(rid, table.serializer.pack(tuple(values)))
    return rid


def apply_plain_insert(
    db: Database, table_name: str, values: Sequence[object]
) -> RID:
    """Insert one row the normal way (every index on-line)."""
    return db.insert(table_name, values)


# ----------------------------------------------------------------------
# delete strategies (what runs in the slices)
# ----------------------------------------------------------------------
class SideFileVerticalStrategy:
    """§3 concurrent vertical delete: critical phase + side-file
    propagation, one slice per phase step."""

    name = "sidefile"

    def __init__(self, mode: PropagationMode = PropagationMode.SIDE_FILE):
        self.mode = mode
        self.coordinator: Optional[BulkDeleteCoordinator] = None
        self._router: Optional[UpdateRouter] = None
        self._db: Optional[Database] = None

    def bind(
        self,
        db: Database,
        table_name: str,
        column: str,
        keys: Sequence[int],
        tm: TransactionManager,
    ) -> None:
        self._db = db
        self.coordinator = BulkDeleteCoordinator(
            db, table_name, column, keys, txn_manager=tm, mode=self.mode
        )
        self._router = UpdateRouter(db, self.coordinator)

    def slices(self) -> Iterator[Tuple[str, str, Callable[[], None]]]:
        coord = self.coordinator
        assert coord is not None and self._db is not None

        def critical() -> None:
            coord.begin()
            coord.process_critical_phase()
            coord.commit_critical()

        yield ("bd critical phase", STALL_LOCK, critical)
        while True:
            pending = coord.pending_indexes()
            if not pending:
                break
            name = pending[0]
            yield (
                f"bd propagate {name}",
                STALL_LANE,
                lambda n=name: None if coord.process_index(n) else None,
            )
        yield ("bd final flush", STALL_LANE, self._db.flush)

    def insert(
        self, txn: Transaction, table_name: str, values: Sequence[object]
    ) -> RID:
        coord = self.coordinator
        assert coord is not None and self._db is not None
        if coord.phase is Phase.PROPAGATION:
            assert self._router is not None
            return self._router.insert(txn, table_name, values)
        return apply_plain_insert(self._db, table_name, values)

    @property
    def records_deleted(self) -> int:
        assert self.coordinator is not None
        return self.coordinator.report.records_deleted


class ChunkedLimitStrategy:
    """Production baseline: ``DELETE ... LIMIT n`` chunks with durable
    progress accounting; every index stays on-line throughout."""

    name = "chunked"

    def __init__(self, chunk_rows: int = 64):
        self.chunk_rows = chunk_rows
        self.executor: Optional[ChunkedDelete] = None
        self._db: Optional[Database] = None

    def bind(
        self,
        db: Database,
        table_name: str,
        column: str,
        keys: Sequence[int],
        tm: TransactionManager,
    ) -> None:
        self._db = db
        self.executor = ChunkedDelete(
            db, table_name, column, keys,
            chunk_rows=self.chunk_rows, txn_manager=tm,
        )

    def slices(self) -> Iterator[Tuple[str, str, Callable[[], None]]]:
        ex = self.executor
        assert ex is not None and self._db is not None
        chunk = 0
        while not ex.done:
            chunk += 1
            yield (
                f"chunk {chunk}",
                STALL_LANE,
                lambda: None if ex.run_chunk() else None,
            )
        yield ("chunked final flush", STALL_LANE, self._db.flush)

    def insert(
        self, txn: Transaction, table_name: str, values: Sequence[object]
    ) -> RID:
        assert self._db is not None
        return apply_plain_insert(self._db, table_name, values)

    @property
    def records_deleted(self) -> int:
        assert self.executor is not None
        return self.executor.result.records_deleted


def make_strategy(
    name: Optional[str], chunk_rows: int = 64
) -> Optional[object]:
    """Build a delete strategy by name (``None`` disables the delete)."""
    if name is None:
        return None
    if name == "sidefile":
        return SideFileVerticalStrategy()
    if name == "chunked":
        return ChunkedLimitStrategy(chunk_rows=chunk_rows)
    raise ReproError(f"unknown delete strategy {name!r}")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class OltpResult:
    """Everything one traffic run measured."""

    strategy: Optional[str]
    config: TrafficConfig
    ops: List[OpRecord] = field(default_factory=list)
    slices: List[SliceRecord] = field(default_factory=list)
    per_session: Dict[int, LatencyHistogram] = field(default_factory=dict)
    global_hist: LatencyHistogram = field(default_factory=LatencyHistogram)
    delete_submit_ms: Optional[float] = None
    delete_end_ms: Optional[float] = None
    records_deleted: int = 0
    #: Ordered running sums mirroring the metric timers (same addends,
    #: same order — compared bit-exactly in :meth:`reconcile`).
    latency_sum_ordered: float = 0.0
    service_sum_ordered: float = 0.0
    slice_sum_ordered: float = 0.0
    #: Span objects captured per op / per slice when observed.
    op_spans: List[object] = field(default_factory=list)
    slice_spans: List[object] = field(default_factory=list)
    #: The workload the run executed against (for reconciliation).
    workload: Optional[Workload] = None

    @property
    def delete_busy_ms(self) -> float:
        return math.fsum(s.elapsed_ms for s in self.slices)

    def ops_in_phase(self, phase: str) -> List[OpRecord]:
        return [op for op in self.ops if op.phase == phase]

    def phase_hist(self, phase: str) -> LatencyHistogram:
        hist = LatencyHistogram()
        for op in self.ops_in_phase(phase):
            hist.record(op.latency_ms)
        return hist

    # ------------------------------------------------------------------
    def reconcile(self, obs: Optional[object] = None) -> List[str]:
        """Exact cross-checks of the run's numbers; empty means clean.

        Histograms must equal the merged per-session histograms; the
        stall + queue + service decomposition must reproduce every
        operation's latency exactly; and, when the run was observed,
        counts and simulated-millisecond totals must match the
        ``oltp.*`` metrics and the captured span totals bit-for-bit
        (same addends in the same order — no epsilon).
        """
        problems: List[str] = []
        merged = LatencyHistogram.merged(list(self.per_session.values()))
        if merged != self.global_hist:
            problems.append("merged per-session histograms != global")
        if self.global_hist.count != len(self.ops):
            problems.append("histogram count != op count")
        for op in self.ops:
            if not (
                op.arrival_ms <= op.stall_from_ms <= op.stall_to_ms
                <= op.start_ms <= op.end_ms
            ):
                problems.append(
                    f"op s{op.session}#{op.seq}: timeline out of order "
                    f"({op.arrival_ms!r}, {op.stall_from_ms!r}, "
                    f"{op.stall_to_ms!r}, {op.start_ms!r}, "
                    f"{op.end_ms!r})"
                )
                break
            if op.delete_stall_ms > 0 and op.stall_kind is None:
                problems.append(
                    f"op s{op.session}#{op.seq}: stall without a cause"
                )
                break
        if obs is not None:
            problems.extend(self._reconcile_obs(obs))
        return problems

    def _reconcile_obs(self, obs: object) -> List[str]:
        problems: List[str] = []
        metrics = obs.metrics  # type: ignore[attr-defined]
        ops_counted = metrics.counter("oltp.ops").value
        if ops_counted != len(self.ops):
            problems.append(
                f"oltp.ops metric {ops_counted} != {len(self.ops)} ops"
            )
        pairs = (
            ("oltp.latency_ms", self.latency_sum_ordered),
            ("oltp.service_ms", self.service_sum_ordered),
            ("oltp.delete.busy_ms", self.slice_sum_ordered),
        )
        for name, expected in pairs:
            total = metrics.timer(name).total_ms
            if total != expected:  # lint: allow(float-cost-eq)
                problems.append(
                    f"{name} metric {total!r} != ordered sum {expected!r}"
                )
        if len(self.op_spans) != len(self.ops):
            problems.append("captured op spans != op count")
        else:
            for op, span in zip(self.ops, self.op_spans):
                elapsed = span.elapsed_ms  # type: ignore[attr-defined]
                if elapsed != op.service_ms:  # lint: allow(float-cost-eq)
                    problems.append(
                        f"op s{op.session}#{op.seq}: span {elapsed!r} != "
                        f"service {op.service_ms!r}"
                    )
                    break
        if len(self.slice_spans) != len(self.slices):
            problems.append("captured slice spans != slice count")
        else:
            for rec, span in zip(self.slices, self.slice_spans):
                elapsed = span.elapsed_ms  # type: ignore[attr-defined]
                if elapsed != rec.elapsed_ms:  # lint: allow(float-cost-eq)
                    problems.append(
                        f"slice {rec.label!r}: span {elapsed!r} != "
                        f"{rec.elapsed_ms!r}"
                    )
                    break
        return problems


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
class _Session:
    __slots__ = ("sid", "rng", "remaining", "seq", "next_arrival_ms")

    def __init__(self, sid: int, rng: random.Random, ops: int) -> None:
        self.sid = sid
        self.rng = rng
        self.remaining = ops
        self.seq = 0
        self.next_arrival_ms = 0.0


class TrafficDriver:
    """Runs one traffic timeline against a built workload."""

    def __init__(
        self,
        workload: Workload,
        config: TrafficConfig,
        strategy: Optional[object] = None,
        keys: Optional[Sequence[int]] = None,
        fraction: float = 0.15,
    ) -> None:
        self.workload = workload
        self.config = config
        self.db = workload.db
        self.table_name = "R"
        self.column = "A"
        self.tm = TransactionManager()
        self.strategy = strategy
        self.keys = (
            list(keys) if keys is not None
            else workload.delete_keys(fraction)
        )
        deleted = set(self.keys)
        #: Keys user reads/updates may target: rows the delete never
        #: touches, in generation order (stable across strategies).
        self.survivors = [a for a in workload.a_values if a not in deleted]
        if not self.survivors:
            raise ReproError("traffic needs surviving rows to read")
        #: Fresh integers for inserts start above the generator's value
        #: space, so they collide with no existing column value.
        cfg = workload.config
        self._fresh_base = max(cfg.record_count * 10, 1 << 22)
        pad_width = cfg.record_bytes - 8 * len(INT_COLUMNS)
        self._pad = "x" * min(8, pad_width)
        self.result = OltpResult(
            strategy=getattr(strategy, "name", None),
            config=config,
            workload=workload,
        )

    # ------------------------------------------------------------------
    # deterministic per-session op generation
    # ------------------------------------------------------------------
    def _draw_op(self, sess: _Session) -> Tuple[str, Optional[int],
                                                Optional[Tuple[object, ...]]]:
        cfg = self.config
        roll = sess.rng.random()
        if roll < cfg.read_fraction:
            kind = "read"
        elif roll < cfg.read_fraction + cfg.update_fraction:
            kind = "update"
        else:
            kind = "insert"
        if kind in ("read", "update"):
            key = self.survivors[sess.rng.randrange(len(self.survivors))]
            return kind, key, None
        values = self._fresh_values(sess)
        return kind, int(values[0]), values  # type: ignore[arg-type]

    def _fresh_values(self, sess: _Session) -> Tuple[object, ...]:
        """A brand-new row: every integer column gets a value above the
        generator's space, unique per (session, op, column) — collision
        free without coordination between sessions."""
        slot = sess.sid * self.config.ops_per_session + sess.seq
        base = self._fresh_base + slot * len(INT_COLUMNS)
        ints = tuple(base + i for i in range(len(INT_COLUMNS)))
        return ints + (self._pad,)

    def _think(self, sess: _Session) -> float:
        return sess.rng.expovariate(1.0 / self.config.think_ms)

    # ------------------------------------------------------------------
    # the timeline
    # ------------------------------------------------------------------
    def run(self) -> OltpResult:
        """Single-queue FCFS over one engine lane.

        User operations and the delete's next slice are queued items
        ordered by ready time (an op's arrival; the end of the delete's
        previous slice): the earlier one runs first, user ops winning
        ties.  The delete therefore neither starves (its slice jumps
        ahead of later-arriving ops) nor preempts (ops that arrived
        while a slice ran are drained before the next slice) — the
        fair-share behaviour of a real scheduler, deterministically.
        """
        db, cfg = self.db, self.config
        obs = db.obs
        clock = db.clock
        sessions = [
            _Session(sid, cfg.session_rng(sid), cfg.ops_per_session)
            for sid in range(cfg.sessions)
        ]
        for sess in sessions:
            sess.next_arrival_ms = clock.now_ms + self._think(sess)
        delete_after = (
            cfg.delete_after_ops
            if cfg.delete_after_ops is not None
            else max(1, cfg.total_ops // 3)
        )
        slices: Optional[Iterator[Tuple[str, str, Callable[[], None]]]] = None
        slices_done = False
        delete_ready = math.inf
        completed = 0

        while True:
            pending = [s for s in sessions if s.remaining > 0]
            delete_active = slices is not None and not slices_done
            if not pending and not delete_active:
                if self.strategy is not None and slices is None:
                    # Traffic ended before the trigger count: the
                    # delete still runs (uncontended drain).
                    slices = self._start_delete()
                    delete_ready = clock.now_ms
                    continue
                break
            arrived = [
                s for s in pending if s.next_arrival_ms <= clock.now_ms
            ]
            sess = (
                min(arrived, key=lambda s: (s.next_arrival_ms, s.sid))
                if arrived
                else None
            )
            if delete_active and (
                sess is None or delete_ready < sess.next_arrival_ms
            ):
                slices_done = not self._run_slice(slices, obs)
                delete_ready = (
                    math.inf if slices_done else clock.now_ms
                )
                continue
            if sess is not None:
                self._service(sess, obs)
                completed += 1
                if (
                    self.strategy is not None
                    and slices is None
                    and completed >= delete_after
                ):
                    slices = self._start_delete()
                    delete_ready = clock.now_ms
                continue
            # Engine idle (delete inactive or not yet ready): jump to
            # the next arrival.
            horizon = min(s.next_arrival_ms for s in pending)
            clock.advance_ms(horizon - clock.now_ms)

        if self.strategy is not None:
            self.result.records_deleted = (
                self.strategy.records_deleted  # type: ignore[attr-defined]
            )
            # Classify only now: ops serviced after the delete drained
            # still need their phase.
            self._classify_phases()
        return self.result

    def _start_delete(self) -> Iterator[Tuple[str, str, Callable[[], None]]]:
        assert self.strategy is not None
        self.result.delete_submit_ms = self.db.clock.now_ms
        self.strategy.bind(  # type: ignore[attr-defined]
            self.db, self.table_name, self.column, self.keys, self.tm
        )
        return self.strategy.slices()  # type: ignore[attr-defined]

    def _run_slice(
        self,
        slices: Iterator[Tuple[str, str, Callable[[], None]]],
        obs: Optional[object],
    ) -> bool:
        """Run the next delete slice; False when the delete finished."""
        step = next(slices, None)
        if step is None:
            self.result.delete_end_ms = self.db.clock.now_ms
            return False
        label, stall_kind, thunk = step
        start = self.db.clock.now_ms
        if obs is not None:
            with obs.span(  # type: ignore[attr-defined]
                f"oltp[{label}]", kind="delete", target=self.table_name
            ) as open_span:
                thunk()
            self.result.slice_spans.append(open_span.span)
        else:
            thunk()
        record = SliceRecord(
            label=label,
            stall_kind=stall_kind,
            start_ms=start,
            end_ms=self.db.clock.now_ms,
        )
        self.result.slices.append(record)
        self.result.slice_sum_ordered += record.elapsed_ms
        if obs is not None:
            obs.on_delete_slice(  # type: ignore[attr-defined]
                label, record.elapsed_ms
            )
        return True

    def _classify_phases(self) -> None:
        submit = self.result.delete_submit_ms
        end = self.result.delete_end_ms
        assert submit is not None and end is not None
        for op in self.result.ops:
            if op.end_ms <= submit:
                op.phase = "before"
            elif op.arrival_ms >= end:
                op.phase = "after"
            else:
                op.phase = "during"

    # ------------------------------------------------------------------
    def _service(self, sess: _Session, obs: Optional[object]) -> None:
        db = self.db
        clock = db.clock
        arrival = sess.next_arrival_ms
        kind, key, values = self._draw_op(sess)
        stall_from, stall_to, stall_kind = self._stall_for(arrival)
        start = clock.now_ms
        d0 = db.disk.stats.snapshot()
        b0_misses = db.pool.stats.misses
        txn = self.tm.begin()
        try:
            if obs is not None:
                with obs.span(  # type: ignore[attr-defined]
                    f"user[{kind}] s{sess.sid}", kind="op",
                    target=self.table_name, session=sess.sid,
                ) as open_span:
                    self._apply(txn, kind, key, values)
                self.result.op_spans.append(open_span.span)
            else:
                self._apply(txn, kind, key, values)
        finally:
            self.tm.commit(txn)
        end = clock.now_ms
        record = OpRecord(
            session=sess.sid,
            seq=sess.seq,
            kind=kind,
            key=key,
            values=values,
            arrival_ms=arrival,
            stall_from_ms=stall_from,
            stall_to_ms=stall_to,
            start_ms=start,
            end_ms=end,
            stall_kind=stall_kind,
            io_ms=db.disk.stats.delta_since(d0).io_time_ms,
            buffer_misses=db.pool.stats.misses - b0_misses,
        )
        self.result.ops.append(record)
        hist = self.result.per_session.setdefault(
            sess.sid, LatencyHistogram()
        )
        hist.record(record.latency_ms)
        self.result.global_hist.record(record.latency_ms)
        self.result.latency_sum_ordered += record.latency_ms
        self.result.service_sum_ordered += record.service_ms
        if obs is not None:
            obs.on_user_op(  # type: ignore[attr-defined]
                sess.sid, kind, record.latency_ms, record.service_ms,
                stall_kind, record.delete_stall_ms,
            )
        sess.seq += 1
        sess.remaining -= 1
        if sess.remaining > 0:
            sess.next_arrival_ms = end + self._think(sess)

    def _stall_for(
        self, arrival_ms: float
    ) -> Tuple[float, float, Optional[str]]:
        """The delete-slice interval an op arriving at ``arrival_ms``
        waited through before its service, and why.

        Under FCFS at most one completed slice can delay a given op:
        the one running at its arrival, or the one queued ahead of it
        (ready before the op arrived).  Every recorded slice finished
        before the op's service starts, so the wait it contributed is
        the slice's overlap with ``[arrival, start)``.
        """
        for rec in self.result.slices:
            if rec.end_ms > arrival_ms:
                return (
                    max(arrival_ms, rec.start_ms),
                    rec.end_ms,
                    rec.stall_kind,
                )
        return arrival_ms, arrival_ms, None

    def _apply(
        self,
        txn: Transaction,
        kind: str,
        key: Optional[int],
        values: Optional[Tuple[object, ...]],
    ) -> None:
        locks = self.tm.locks
        if kind == "read":
            assert key is not None
            locks.lock_row(txn.txn_id, self.table_name, key, LockMode.S)
            apply_point_read(self.db, self.table_name, self.column, key)
        elif kind == "update":
            assert key is not None
            locks.lock_row(txn.txn_id, self.table_name, key, LockMode.X)
            apply_pad_update(self.db, self.table_name, self.column, key)
        elif kind == "insert":
            assert values is not None
            if self.strategy is not None and self._delete_active():
                self.strategy.insert(  # type: ignore[attr-defined]
                    txn, self.table_name, values
                )
            else:
                locks.lock_row(
                    txn.txn_id, self.table_name, tuple(values[:1]),
                    LockMode.X,
                )
                apply_plain_insert(self.db, self.table_name, values)
        else:  # pragma: no cover - _draw_op emits only the three kinds
            raise ReproError(f"unknown op kind {kind!r}")

    def _delete_active(self) -> bool:
        return (
            self.result.delete_submit_ms is not None
            and self.result.delete_end_ms is None
        )


def run_oltp(
    workload: Workload,
    config: TrafficConfig,
    strategy: Optional[str] = "sidefile",
    fraction: float = 0.15,
    chunk_rows: int = 64,
    keys: Optional[Sequence[int]] = None,
) -> OltpResult:
    """Run one traffic timeline; see :class:`TrafficDriver`."""
    driver = TrafficDriver(
        workload,
        config,
        strategy=make_strategy(strategy, chunk_rows=chunk_rows),
        keys=keys,
        fraction=fraction,
    )
    return driver.run()


# ----------------------------------------------------------------------
# the interference report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseStats:
    """Latency summary of one delete-relative phase of the run."""

    phase: str
    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_io_ms: float
    mean_misses: float


@dataclass(frozen=True)
class InterferenceReport:
    """User-visible cost of the concurrent delete, attributed.

    Stall totals cover operations that overlapped the delete window;
    buffer pressure is the *during − before* difference in per-op pool
    misses and I/O time (the delete evicting user-hot pages), which is
    a derived baseline comparison, not a per-op measurement.
    """

    strategy: Optional[str]
    sessions: int
    ops: int
    seed: int
    records_deleted: int
    delete_submit_ms: Optional[float]
    delete_end_ms: Optional[float]
    delete_busy_ms: float
    slice_count: int
    phases: Dict[str, PhaseStats]
    stall_lock_ms: float
    stall_lock_ops: int
    stall_lane_ms: float
    stall_lane_ops: int
    peer_wait_ms: float
    buffer_extra_misses_per_op: float
    buffer_extra_io_ms_per_op: float
    session_p99_min_ms: float
    session_p99_max_ms: float

    def render(self) -> str:
        lines = [
            f"oltp interference report — strategy="
            f"{self.strategy or 'none'} sessions={self.sessions} "
            f"ops={self.ops} seed={self.seed}",
        ]
        if self.delete_submit_ms is None or self.delete_end_ms is None:
            lines.append("delete: (none ran)")
        else:
            window = self.delete_end_ms - self.delete_submit_ms
            lines.append(
                f"delete: submitted t={self.delete_submit_ms:.1f}ms, "
                f"window {window:.1f}ms, engine-busy "
                f"{self.delete_busy_ms:.1f}ms over {self.slice_count} "
                f"slices, {self.records_deleted} records deleted"
            )
        lines.append(
            f"{'phase':<8}{'ops':>6}{'p50 ms':>10}{'p95 ms':>10}"
            f"{'p99 ms':>10}{'max ms':>10}"
        )
        for phase in ("before", "during", "after"):
            stats = self.phases.get(phase)
            if stats is None:
                continue
            lines.append(
                f"{stats.phase:<8}{stats.count:>6}"
                f"{stats.p50_ms:>10.1f}{stats.p95_ms:>10.1f}"
                f"{stats.p99_ms:>10.1f}{stats.max_ms:>10.1f}"
            )
        lines.append(
            f"stalls: lock {self.stall_lock_ms:.1f}ms over "
            f"{self.stall_lock_ops} ops; lane {self.stall_lane_ms:.1f}ms "
            f"over {self.stall_lane_ops} ops; peer queueing "
            f"{self.peer_wait_ms:.1f}ms"
        )
        lines.append(
            f"buffer pressure: {self.buffer_extra_misses_per_op:+.2f} "
            f"misses/op, {self.buffer_extra_io_ms_per_op:+.2f} io ms/op "
            f"vs before-delete baseline"
        )
        lines.append(
            f"per-session p99 spread: {self.session_p99_min_ms:.1f}ms "
            f"… {self.session_p99_max_ms:.1f}ms"
        )
        return "\n".join(lines)


def build_interference_report(result: OltpResult) -> InterferenceReport:
    """Summarise one run into an :class:`InterferenceReport`."""

    def mean(values: List[float]) -> float:
        return math.fsum(values) / len(values) if values else 0.0

    phases: Dict[str, PhaseStats] = {}
    for phase in ("before", "during", "after"):
        ops = result.ops_in_phase(phase)
        if not ops:
            continue
        hist = result.phase_hist(phase)
        phases[phase] = PhaseStats(
            phase=phase,
            count=hist.count,
            p50_ms=hist.percentile(50),
            p95_ms=hist.percentile(95),
            p99_ms=hist.percentile(99),
            max_ms=hist.max_ms,
            mean_io_ms=mean([op.io_ms for op in ops]),
            mean_misses=mean([float(op.buffer_misses) for op in ops]),
        )
    lock_ops = [
        op for op in result.ops if op.stall_kind == STALL_LOCK
    ]
    lane_ops = [
        op for op in result.ops if op.stall_kind == STALL_LANE
    ]
    before = phases.get("before")
    during = phases.get("during")
    extra_misses = (
        during.mean_misses - before.mean_misses
        if before is not None and during is not None
        else 0.0
    )
    extra_io = (
        during.mean_io_ms - before.mean_io_ms
        if before is not None and during is not None
        else 0.0
    )
    session_p99s = [
        hist.percentile(99) for hist in result.per_session.values()
    ]
    return InterferenceReport(
        strategy=result.strategy,
        sessions=result.config.sessions,
        ops=len(result.ops),
        seed=result.config.seed,
        records_deleted=result.records_deleted,
        delete_submit_ms=result.delete_submit_ms,
        delete_end_ms=result.delete_end_ms,
        delete_busy_ms=result.delete_busy_ms,
        slice_count=len(result.slices),
        phases=phases,
        stall_lock_ms=math.fsum(op.delete_stall_ms for op in lock_ops),
        stall_lock_ops=len(lock_ops),
        stall_lane_ms=math.fsum(op.delete_stall_ms for op in lane_ops),
        stall_lane_ops=len(lane_ops),
        peer_wait_ms=math.fsum(op.peer_wait_ms for op in result.ops),
        buffer_extra_misses_per_op=extra_misses,
        buffer_extra_io_ms_per_op=extra_io,
        session_p99_min_ms=min(session_p99s) if session_p99s else 0.0,
        session_p99_max_ms=max(session_p99s) if session_p99s else 0.0,
    )


def run_interference_comparison(
    record_count: int = 2_000,
    sessions: int = 8,
    ops_per_session: int = 40,
    seed: int = 1042,
    fraction: float = 0.15,
    chunk_rows: int = 64,
    index_columns: Tuple[str, ...] = ("A", "B"),
    observe: bool = True,
    strategies: Tuple[str, ...] = ("sidefile", "chunked"),
) -> Dict[str, OltpResult]:
    """Run the same traffic against both delete strategies.

    Each strategy gets its own freshly built workload from the same
    :class:`~repro.workload.generator.WorkloadConfig`, the same delete
    key list, and the same :class:`TrafficConfig` — the timelines
    differ only in what the delete does between user operations.
    """
    from repro.obs.observer import Observer
    from repro.workload.generator import WorkloadConfig, build_workload

    results: Dict[str, OltpResult] = {}
    for strategy in strategies:
        workload = build_workload(
            WorkloadConfig(
                record_count=record_count,
                seed=seed,
                index_columns=index_columns,
            )
        )
        if observe:
            Observer.attach(workload.db)
        config = TrafficConfig(
            sessions=sessions, ops_per_session=ops_per_session, seed=seed
        )
        results[strategy] = run_oltp(
            workload, config, strategy=strategy,
            fraction=fraction, chunk_rows=chunk_rows,
        )
    return results

"""Synthetic workload generation per Section 4.1 of the paper."""

from repro.workload.scenarios import (
    Scenario,
    build_scenario,
    scenario,
    scenario_names,
)
from repro.workload.generator import (
    INT_COLUMNS,
    PAPER_RECORD_BYTES,
    PAPER_RECORD_COUNT,
    Workload,
    WorkloadConfig,
    build_workload,
    generate_rows,
    make_schema,
    pick_inner_fanout,
)

__all__ = [
    "Scenario",
    "build_scenario",
    "scenario",
    "scenario_names",
    "INT_COLUMNS",
    "PAPER_RECORD_BYTES",
    "PAPER_RECORD_COUNT",
    "Workload",
    "WorkloadConfig",
    "build_workload",
    "generate_rows",
    "make_schema",
    "pick_inner_fanout",
]

"""Synthetic workloads per Section 4.1 of the paper, scaled.

The paper's table R has eleven attributes A..K: ten duplicate-free
random integers plus a padding string bringing each record to 512
bytes; 1,000,000 records ≈ 500 MB.  The delete table D holds a random
sample of R's ``A`` values sized to the delete fraction.

A pure-Python engine cannot load a million 512-byte records per
benchmark run, so workloads are *scaled* while preserving the ratios
that shape the curves:

* record size stays 512 bytes → the same records-per-page fan-out,
* the main-memory budget is specified in *paper megabytes* and scaled
  by the table-size ratio (the paper's 5 MB : 512 MB ≈ 1 %),
* index heights are reproduced by capping inner fan-out, exactly as the
  paper built its height-4 index by storing only 100 keys per node.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.btree.node import node_capacity
from repro.btree.tree import DEFAULT_FILL_FACTOR
from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema

PAPER_RECORD_COUNT = 1_000_000
PAPER_RECORD_BYTES = 512
PAPER_TABLE_BYTES = PAPER_RECORD_COUNT * PAPER_RECORD_BYTES

INT_COLUMNS = ("A", "B", "C", "D2", "E", "F", "G", "H", "I", "J")


@dataclass
class WorkloadConfig:
    """Knobs of one experiment's database."""

    record_count: int = 20_000
    record_bytes: int = PAPER_RECORD_BYTES
    page_size: int = 4096
    #: Main memory in the *paper's* megabytes; scaled by table size.
    memory_paper_mb: float = 5.0
    #: Columns to index, in creation order ("A" drives the deletes).
    index_columns: Tuple[str, ...] = ("A",)
    #: Index height (including the leaf level); ``None`` (default) keeps
    #: the natural height.  The paper's trees were height 3 with the two
    #: upper levels always cached; at our scale the natural height-2
    #: tree with a cached root is the faithful equivalent.  Experiment 3
    #: (Table 1) forces larger heights explicitly.
    index_height: Optional[int] = None
    #: Cluster the table (and mark the index) on this column.
    clustered_on: Optional[str] = None
    #: Minimum buffer-pool size in pages.  The paper's smallest budget
    #: (2 MB = 512 pages) always held every upper index level plus the
    #: working pages; the scaled-down pool must too, or thrashing that
    #: never happens in the paper dominates.  Experiments that sweep the
    #: memory budget (Figure 9) lower this and raise ``record_count``
    #: instead so the scaled budgets actually differ.
    memory_floor_pages: int = 16
    seed: int = 42

    @property
    def table_bytes(self) -> int:
        return self.record_count * self.record_bytes

    @property
    def memory_bytes(self) -> int:
        """Paper-MB budget scaled by our table : paper table ratio."""
        scaled = (
            self.memory_paper_mb
            * 1024
            * 1024
            * self.table_bytes
            / PAPER_TABLE_BYTES
        )
        return max(self.memory_floor_pages * self.page_size, int(scaled))

    @property
    def scale_factor(self) -> float:
        """Multiply simulated times by this to compare with the paper."""
        return PAPER_RECORD_COUNT / self.record_count


@dataclass
class Workload:
    """A built database plus the generator's ground truth."""

    db: Database
    config: WorkloadConfig
    column_values: Dict[str, List[int]]

    @property
    def a_values(self) -> List[int]:
        return self.column_values["A"]

    def delete_keys(
        self, fraction: float, seed: Optional[int] = None
    ) -> List[int]:
        """A delete list covering ``fraction`` of the records.

        Sampled from the existing ``A`` values in random order (the
        paper's table D is unsorted; ``sorted/trad`` sorts it first).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        count = int(self.config.record_count * fraction)
        rng = random.Random(self.config.seed + 1 if seed is None else seed)
        return rng.sample(self.a_values, count)

    def reset_measurements(self) -> None:
        """Flush and zero the clock so setup cost is not measured."""
        self.db.flush()
        self.db.clock.reset()
        self.db.disk.stats = type(self.db.disk.stats)()
        self.db.pool.stats = type(self.db.pool.stats)()


def make_schema(record_bytes: int = PAPER_RECORD_BYTES) -> TableSchema:
    """R(A..J INT, K CHAR(pad)) summing to ``record_bytes``."""
    pad = record_bytes - 8 * len(INT_COLUMNS)
    if pad < 1:
        raise ValueError("record_bytes too small for ten INT columns")
    attrs = [Attribute.int_(name) for name in INT_COLUMNS]
    attrs.append(Attribute.char("K", pad))
    return TableSchema.of("R", attrs)


def generate_rows(
    record_count: int, seed: int, record_bytes: int = PAPER_RECORD_BYTES
) -> Tuple[List[Tuple[object, ...]], Dict[str, List[int]]]:
    """Duplicate-free random integers per column + padding, as in §4.1."""
    rng = random.Random(seed)
    space = max(record_count * 10, 1 << 22)
    columns: Dict[str, List[int]] = {
        name: rng.sample(range(space), record_count) for name in INT_COLUMNS
    }
    pad = "x" * min(8, record_bytes - 8 * len(INT_COLUMNS))
    rows: List[Tuple[object, ...]] = []
    for i in range(record_count):
        rows.append(tuple(columns[name][i] for name in INT_COLUMNS) + (pad,))
    return rows, columns


def pick_inner_fanout(
    leaf_count: int,
    desired_height: int,
    physical_capacity: int,
    strict: bool = True,
) -> Optional[int]:
    """Largest inner fan-out giving ``desired_height`` over ``leaf_count``.

    Mirrors the paper's Experiment 3, which shrank inner nodes to 100
    keys to grow the index from height 3 to height 4.  Returns ``None``
    when the natural height already matches.  With ``strict=False`` an
    unreachable height falls back to the tallest achievable tree
    instead of raising (tiny workloads cannot reach height 4).
    """
    def height_with(fanout: int) -> int:
        per_node = max(2, int(fanout * DEFAULT_FILL_FACTOR))
        levels = 1  # the leaf level
        nodes = leaf_count
        while nodes > 1:
            nodes = math.ceil(nodes / per_node)
            levels += 1
        return levels

    if height_with(physical_capacity) == desired_height:
        return None
    for fanout in range(physical_capacity, 3, -1):
        if height_with(fanout) == desired_height:
            return fanout
    if strict:
        raise ValueError(
            f"no inner fan-out yields height {desired_height} over "
            f"{leaf_count} leaves"
        )
    # Fallback: the tallest achievable tree (smallest legal fan-out).
    return 4


def build_workload(config: WorkloadConfig) -> Workload:
    """Create and load the database for one experiment.

    Setup (loading, index builds) happens at full speed and is then
    excluded from measurements via :meth:`Workload.reset_measurements`.
    """
    db = Database(
        page_size=config.page_size, memory_bytes=config.memory_bytes
    )
    schema = make_schema(config.record_bytes)
    db.create_table(schema)
    rows, columns = generate_rows(
        config.record_count, config.seed, config.record_bytes
    )
    if config.clustered_on is not None:
        order = schema.column_index(config.clustered_on)
        paired = sorted(range(len(rows)), key=lambda i: rows[i][order])
        rows = [rows[i] for i in paired]
    db.load_table("R", rows)

    cap = node_capacity(config.page_size)
    leaf_per_node = max(2, int(cap * DEFAULT_FILL_FACTOR))
    leaf_count = math.ceil(config.record_count / leaf_per_node)
    inner_fanout = (
        pick_inner_fanout(leaf_count, config.index_height, cap, strict=False)
        if config.index_height is not None
        else None
    )
    for column in config.index_columns:
        db.create_index(
            "R",
            column,
            clustered=(column == config.clustered_on),
            max_inner_entries=inner_fanout,
        )
    workload = Workload(db=db, config=config, column_values=columns)
    workload.reset_measurements()
    return workload


def build_sharded_workload(
    config: WorkloadConfig, shards: int
) -> Workload:
    """Create and load a *range-sharded* variant of the workload.

    The same rows as :func:`build_workload` land in ``shards``
    equi-depth ranges of the driving column ``A`` (bounds from the
    generated values' order statistics), with every configured index
    created per shard.  Setup cost is excluded from measurements, as
    in the unsharded builder.
    """
    from repro.shard.map import ShardMap

    db = Database(
        page_size=config.page_size, memory_bytes=config.memory_bytes
    )
    schema = make_schema(config.record_bytes)
    rows, columns = generate_rows(
        config.record_count, config.seed, config.record_bytes
    )
    shard_map = ShardMap.from_quantiles("A", columns["A"], shards)
    db.create_sharded_table(schema, "A", shard_map.bounds)
    if config.clustered_on is not None:
        order = schema.column_index(config.clustered_on)
        paired = sorted(range(len(rows)), key=lambda i: rows[i][order])
        rows = [rows[i] for i in paired]
    db.load_table("R", rows)

    cap = node_capacity(config.page_size)
    leaf_per_node = max(2, int(cap * DEFAULT_FILL_FACTOR))
    leaf_count = math.ceil(
        config.record_count / max(1, shards) / leaf_per_node
    )
    inner_fanout = (
        pick_inner_fanout(leaf_count, config.index_height, cap, strict=False)
        if config.index_height is not None
        else None
    )
    for column in config.index_columns:
        db.create_sharded_index(
            "R",
            column,
            clustered=(column == config.clustered_on),
            max_inner_entries=inner_fanout,
        )
    workload = Workload(db=db, config=config, column_values=columns)
    workload.reset_measurements()
    return workload

"""Leaf-level cursors over a B-link tree.

The vertical bulk-delete plans never traverse root-to-leaf per record;
they sweep the chained leaf level from left to right.  ``LeafCursor``
encapsulates that sweep and reports how many leaf pages it touched so
experiments can assert on access patterns.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.btree.node import NO_NODE, Node
from repro.btree.tree import BLinkTree

Entry = Tuple[int, int]


class LeafCursor:
    """Forward-only iterator over the leaves of a tree."""

    def __init__(self, tree: BLinkTree, start_key: Optional[int] = None) -> None:
        self.tree = tree
        self.pages_visited = 0
        if start_key is None:
            self._next_id = tree.first_leaf_id
        else:
            self._next_id = tree.find_leaf(start_key).page_id
            self.pages_visited += tree.height  # the locating descent

    def __iter__(self) -> "LeafCursor":
        return self

    def __next__(self) -> Node:
        if self._next_id == NO_NODE:
            raise StopIteration
        node = self.tree.read_leaf(self._next_id)
        self.pages_visited += 1
        self._next_id = node.right_id
        return node

    def entries(self) -> Iterator[Entry]:
        """Flatten the sweep into a stream of ``(key, value)`` entries."""
        for leaf in self:
            for entry in leaf.entries:
                yield entry

"""A B-link tree (B+-tree with sibling-chained levels).

This is the index structure all of the paper's experiments run on:

* all ``(key, RID)`` entries live in the leaves; inner nodes hold only
  separator keys (Section 2.2 of the paper),
* the nodes of every level are chained left-to-right (B-link
  organization [10]) so leaf levels can be swept sequentially and inner
  levels can be rebuilt layer by layer,
* record-at-a-time deletion follows Jannink [7] with the free-at-empty
  policy of Johnson & Shasha [9]: a node is reclaimed only when it is
  completely empty (merge-at-half is available for ablations, see
  :mod:`repro.btree.maintenance`),
* leaf and inner fan-out can be capped independently — the paper's
  Experiment 3 builds a height-4 index by artificially shrinking inner
  fan-out to 100 entries, and the workload generator does the same.

Keys and values are signed 64-bit integers; values are packed RIDs for
table indexes and child page ids in inner nodes.  Duplicate keys are
supported by ordering entries on ``(key, value)``.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.btree.node import (
    ENTRY_SIZE,
    HEADER_SIZE,
    MAX_KEY,
    MIN_KEY,
    NO_NODE,
    Node,
    node_capacity,
)
from repro.errors import IndexError_, UniqueViolationError
from repro.storage.buffer import BufferPool

#: Fraction of a node filled during bulk load; some slack avoids a split
#: storm on the first trickle of inserts after loading.
DEFAULT_FILL_FACTOR = 0.9

Entry = Tuple[int, int]


class BLinkTree:
    """Single-writer B-link tree over a buffer pool."""

    def __init__(
        self,
        pool: BufferPool,
        name: str = "index",
        unique: bool = False,
        max_leaf_entries: Optional[int] = None,
        max_inner_entries: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.name = name
        self.unique = unique
        self.file_id = pool.disk.create_file()
        physical = node_capacity(pool.disk.page_size)
        self.leaf_capacity = self._clamp_capacity(max_leaf_entries, physical)
        self.inner_capacity = self._clamp_capacity(max_inner_entries, physical)
        root = self._allocate_node(level=0)
        self.root_id = root.page_id
        self.first_leaf_id = root.page_id
        self.height = 1
        self._entry_count = 0

    @staticmethod
    def _clamp_capacity(requested: Optional[int], physical: int) -> int:
        if physical < 4:
            raise IndexError_("page size too small for a B-tree node")
        if requested is None:
            return physical
        if requested < 4:
            raise IndexError_("node capacity must be at least 4 entries")
        return min(requested, physical)

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> Node:
        with self.pool.pin(page_id) as pinned:
            return Node.unpack_from(page_id, pinned.data)

    def _write(self, node: Node) -> None:
        with self.pool.pin(node.page_id) as pinned:
            node.pack_into(pinned.data)
            pinned.mark_dirty()

    def _allocate_node(self, level: int) -> Node:
        with self.pool.pin_new(self.file_id) as pinned:
            node = Node(pinned.page_id, level)
            node.pack_into(pinned.data)
            pinned.mark_dirty()
        return node

    def _free_node(self, page_id: int) -> None:
        self.pool.discard(page_id)
        self.pool.disk.free_page(page_id)

    def capacity_for(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.inner_capacity

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _route(self, inner: Node, key: int) -> int:
        """Child page id an operation on ``key`` must descend into.

        Separators are the minimum keys of their subtrees, and a split
        may leave copies of one key on both sides of a separator equal
        to it.  Descending therefore starts at the last child whose
        separator is *strictly below* the key (that child's range is
        inclusive of the next separator) and lookups continue rightward
        along the sibling chain when needed.
        """
        keys = inner.keys()
        idx = max(0, bisect.bisect_left(keys, key) - 1)
        return inner.entries[idx][1]

    def _descend(self, key: int) -> List[Node]:
        """Root-to-leaf path for ``key`` (each step is one page access)."""
        path: List[Node] = []
        node = self._read(self.root_id)
        path.append(node)
        while not node.is_leaf:
            node = self._read(self._route(node, key))
            path.append(node)
        return path

    def find_leaf(self, key: int) -> Node:
        return self._descend(key)[-1]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def search(self, key: int) -> List[int]:
        """Return the values of every entry with ``key``.

        Descends to the first leaf that may hold ``key`` and continues
        rightward along the chain while matches can still follow —
        duplicate keys (and keys sitting on a split boundary) may span
        several leaves.
        """
        node = self.find_leaf(key)
        values: List[int] = []
        while True:
            keys = node.keys()
            lo = bisect.bisect_left(keys, key)
            hi = bisect.bisect_right(keys, key)
            values.extend(value for _, value in node.entries[lo:hi])
            if node.right_id == NO_NODE:
                break
            if node.entries and node.last_key() > key:
                break
            node = self._read(node.right_id)
        return values

    def search_one(self, key: int) -> Optional[int]:
        values = self.search(key)
        return values[0] if values else None

    def contains(self, key: int, value: Optional[int] = None) -> bool:
        values = self.search(key)
        if value is None:
            return bool(values)
        return value in values

    def range_scan(self, lo: int = MIN_KEY, hi: int = MAX_KEY) -> Iterator[Entry]:
        """Yield entries with ``lo <= key <= hi`` in key order."""
        node = self.find_leaf(lo)
        while True:
            for key, value in node.entries:
                if key < lo:
                    continue
                if key > hi:
                    return
                yield key, value
            if node.right_id == NO_NODE:
                return
            node = self._read(node.right_id)

    def items(self) -> Iterator[Entry]:
        return self.range_scan()

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert one entry, splitting on the way up as needed."""
        path = self._descend(key)
        leaf = path[-1]
        if self.unique and self.contains(key):
            raise UniqueViolationError(
                f"duplicate key {key} in unique index {self.name}"
            )
        bisect.insort(leaf.entries, (key, value))
        self._entry_count += 1
        if leaf.entry_count > self.capacity_for(leaf):
            self._split(path)
        else:
            self._write(leaf)

    def _split(self, path: List[Node]) -> None:
        node = path[-1]
        mid = node.entry_count // 2
        sibling = self._allocate_node(node.level)
        sibling.entries = node.entries[mid:]
        node.entries = node.entries[:mid]
        sibling.right_id = node.right_id
        sibling.left_id = node.page_id
        node.right_id = sibling.page_id
        sibling.high_key = node.high_key
        node.high_key = sibling.first_key()
        if sibling.right_id != NO_NODE:
            right = self._read(sibling.right_id)
            right.left_id = sibling.page_id
            self._write(right)
        self._write(node)
        self._write(sibling)
        separator = (sibling.first_key(), sibling.page_id)
        if len(path) == 1:
            # The split node was the root: grow the tree by one level.
            new_root = self._allocate_node(node.level + 1)
            new_root.entries = [
                (node.first_key() if node.entries else MIN_KEY, node.page_id),
                separator,
            ]
            self._write(new_root)
            self.root_id = new_root.page_id
            self.height += 1
            return
        parent = path[-2]
        for pos, (sep, child) in enumerate(parent.entries):
            if child == node.page_id:
                # Child 0 may carry a stale-high separator (it absorbs
                # every key below the next separator); after a split the
                # new sibling's separator must not sort below it, so
                # refresh it to the node's true minimum.
                if sep > node.first_key():
                    parent.entries[pos] = (node.first_key(), node.page_id)
                parent.entries.insert(pos + 1, separator)
                break
        else:  # pragma: no cover - structural invariant
            raise IndexError_(
                f"split node {node.page_id} missing from parent "
                f"{parent.page_id}"
            )
        if parent.entry_count > self.capacity_for(parent):
            self._split(path[:-1])
        else:
            self._write(parent)

    # ------------------------------------------------------------------
    # delete (record-at-a-time, the paper's horizontal baseline)
    # ------------------------------------------------------------------
    def delete(self, key: int, value: Optional[int] = None) -> bool:
        """Delete one entry with ``key`` (and ``value`` if given).

        Returns ``True`` when an entry was removed.  This is the
        traversal-per-record path used by the traditional executors.
        The descended leaf may be one step left of the match (split
        boundaries and duplicate runs), so the search continues
        rightward along the chain; free-at-empty then locates the
        emptied leaf\'s true ancestor chain by walking each level of the
        descended path rightward (the B-link property).
        """
        path = self._descend(key)
        node = path[-1]
        while True:
            idx = self._find_entry(node, key, value)
            if idx is not None:
                del node.entries[idx]
                self._entry_count -= 1
                if node.entry_count == 0 and self.height > 1:
                    self._free_empty_leaf(self._true_path(node, path))
                else:
                    self._write(node)
                return True
            if node.right_id == NO_NODE:
                return False
            if node.entries and node.last_key() > key:
                return False
            node = self._read(node.right_id)

    def _true_path(self, leaf: Node, approx_path: List[Node]) -> List[Node]:
        """Root-to-``leaf`` path when ``leaf`` lies at or right of the
        descended path\'s leaf.

        Every true ancestor of ``leaf`` sits at-or-right of the
        corresponding node on the descended path, so each level is found
        by walking its sibling chain rightward — the classic B-link
        move-right, applied bottom-up.
        """
        if approx_path[-1].page_id == leaf.page_id:
            return approx_path[:-1] + [leaf]
        chain: List[Node] = [leaf]
        for depth in range(len(approx_path) - 2, -1, -1):
            child_pid = chain[0].page_id
            node = approx_path[depth]
            while not any(pid == child_pid for _, pid in node.entries):
                if node.right_id == NO_NODE:  # pragma: no cover
                    raise IndexError_(
                        f"node {child_pid} unreachable from level "
                        f"{node.level}"
                    )
                node = self._read(node.right_id)
            chain.insert(0, node)
        return chain

    @staticmethod
    def _find_entry(node: Node, key: int, value: Optional[int]) -> Optional[int]:
        keys = node.keys()
        lo = bisect.bisect_left(keys, key)
        hi = bisect.bisect_right(keys, key)
        for idx in range(lo, hi):
            if value is None or node.entries[idx][1] == value:
                return idx
        return None

    def _free_empty_leaf(self, path: List[Node]) -> None:
        """Free-at-empty: reclaim an empty node and fix parents."""
        node = path[-1]
        self._unlink_from_chain(node)
        if node.page_id == self.first_leaf_id:
            self.first_leaf_id = node.right_id
        self._free_node(node.page_id)
        self._remove_child(path[:-1], node.page_id)
        self._maybe_collapse_root()

    def _unlink_from_chain(self, node: Node) -> None:
        if node.left_id != NO_NODE:
            left = self._read(node.left_id)
            left.right_id = node.right_id
            left.high_key = node.high_key
            self._write(left)
        if node.right_id != NO_NODE:
            right = self._read(node.right_id)
            right.left_id = node.left_id
            self._write(right)

    def _remove_child(self, path: List[Node], child_id: int) -> None:
        parent = path[-1]
        for idx, (_, pid) in enumerate(parent.entries):
            if pid == child_id:
                del parent.entries[idx]
                break
        else:  # pragma: no cover - structural invariant
            raise IndexError_(
                f"child {child_id} not found in parent {parent.page_id}"
            )
        if parent.entry_count == 0 and len(path) > 1:
            self._unlink_from_chain(parent)
            self._free_node(parent.page_id)
            self._remove_child(path[:-1], parent.page_id)
        else:
            self._write(parent)

    def _maybe_collapse_root(self) -> None:
        while True:
            root = self._read(self.root_id)
            if root.is_leaf or root.entry_count != 1:
                return
            child_id = root.entries[0][1]
            self._free_node(root.page_id)
            self.root_id = child_id
            self.height -= 1

    # ------------------------------------------------------------------
    # bulk operations (used by the vertical bulk-delete plans)
    # ------------------------------------------------------------------
    def bulk_load(
        self,
        entries: Sequence[Entry],
        fill_factor: float = DEFAULT_FILL_FACTOR,
    ) -> None:
        """Replace the tree's contents from ``(key, value)``-sorted input.

        Builds the tree bottom-up with contiguously allocated pages, so
        later leaf sweeps are billed as sequential I/O — the same effect
        a freshly created index has on a real disk.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError("fill factor must be in [0.1, 1.0]")
        for i in range(1, len(entries)):
            if entries[i - 1] > entries[i]:
                raise IndexError_("bulk_load input must be sorted")
            if self.unique and entries[i - 1][0] == entries[i][0]:
                raise UniqueViolationError(
                    f"duplicate key {entries[i][0]} in unique index {self.name}"
                )
        self._drop_all_nodes()
        if not entries:
            root = self._allocate_node(level=0)
            self.root_id = root.page_id
            self.first_leaf_id = root.page_id
            self.height = 1
            self._entry_count = 0
            return
        per_leaf = max(2, int(self.leaf_capacity * fill_factor))
        summaries = self._build_level(list(entries), level=0, per_node=per_leaf)
        self.first_leaf_id = summaries[0][1]
        self._entry_count = len(entries)
        self._build_upper_from(summaries, fill_factor)

    def _build_level(
        self, entries: List[Entry], level: int, per_node: int
    ) -> List[Entry]:
        """Write one level of nodes; returns ``(first_key, page_id)`` list."""
        nodes: List[Node] = []
        for start in range(0, len(entries), per_node):
            node = self._allocate_node(level)
            node.entries = entries[start : start + per_node]
            nodes.append(node)
        for i, node in enumerate(nodes):
            if i > 0:
                node.left_id = nodes[i - 1].page_id
            if i + 1 < len(nodes):
                node.right_id = nodes[i + 1].page_id
                node.high_key = nodes[i + 1].first_key()
            self._write(node)
        return [(node.first_key(), node.page_id) for node in nodes]

    def _build_upper_from(
        self, summaries: List[Entry], fill_factor: float = DEFAULT_FILL_FACTOR
    ) -> None:
        """Build inner levels above ``summaries`` and install the root."""
        per_inner = max(2, int(self.inner_capacity * fill_factor))
        level = 1
        current = summaries
        while len(current) > 1:
            current = self._build_level(current, level=level, per_node=per_inner)
            level += 1
        self.root_id = current[0][1]
        self.height = self._read(self.root_id).level + 1

    def _drop_all_nodes(self) -> None:
        """Free every node of the tree (used before a rebuild)."""
        for page_id in self._collect_pages():
            self._free_node(page_id)

    def _collect_pages(self) -> List[int]:
        """All node page ids, found by walking each level's chain."""
        pages: List[int] = []
        node = self._read(self.root_id)
        while True:
            # Walk the chain of this level starting from its leftmost node.
            cursor: Optional[Node] = node
            first_child: Optional[int] = None
            while cursor is not None:
                pages.append(cursor.page_id)
                if first_child is None and not cursor.is_leaf and cursor.entries:
                    first_child = cursor.entries[0][1]
                cursor = (
                    self._read(cursor.right_id)
                    if cursor.right_id != NO_NODE
                    else None
                )
            if node.is_leaf or first_child is None:
                return pages
            node = self._read(first_child)

    # ------------------------------------------------------------------
    # leaf-sweep support (bulk delete core)
    # ------------------------------------------------------------------
    def iter_leaf_ids(self) -> Iterator[int]:
        """Leaf page ids in key order (via the sibling chain)."""
        page_id = self.first_leaf_id
        while page_id != NO_NODE:
            node = self._read(page_id)
            yield page_id
            page_id = node.right_id

    def read_leaf(self, page_id: int) -> Node:
        node = self._read(page_id)
        if not node.is_leaf:
            raise IndexError_(f"page {page_id} is not a leaf")
        return node

    def write_leaf_entries(self, page_id: int, entries: List[Entry]) -> None:
        """Replace a leaf's entries in place (bulk-delete edit)."""
        with self.pool.pin(page_id) as pinned:
            node = Node.unpack_from(page_id, pinned.data)
            removed = node.entry_count - len(entries)
            node.entries = entries
            node.pack_into(pinned.data)
            pinned.mark_dirty()
        self._entry_count -= removed

    def unlink_and_free_leaves(self, page_ids: Sequence[int]) -> None:
        """Free leaves emptied by a sweep (free-at-empty, deferred).

        Parents are *not* fixed here; callers must follow up with
        :meth:`rebuild_upper_levels`, mirroring the paper's
        layer-by-layer reorganization.
        """
        for page_id in page_ids:
            node = self._read(page_id)
            if node.entries:
                raise IndexError_(f"leaf {page_id} is not empty")
            self._unlink_from_chain(node)
            if page_id == self.first_leaf_id:
                self.first_leaf_id = node.right_id
            self._free_node(page_id)

    def rebuild_upper_levels(
        self, leaf_summaries: Optional[List[Entry]] = None
    ) -> None:
        """Rebuild all inner levels from the (current) leaf chain.

        ``leaf_summaries`` — ``(first_key, page_id)`` per live leaf —
        can be supplied by a sweep that already visited every leaf, so
        the chain does not have to be re-read.
        """
        old_inner = self._collect_inner_pages()
        if leaf_summaries is None:
            leaf_summaries = []
            for page_id in self.iter_leaf_ids():
                node = self._read(page_id)
                if node.entries:
                    leaf_summaries.append((node.first_key(), page_id))
        for pid in old_inner:
            self._free_node(pid)
        if not leaf_summaries:
            # Everything was deleted: reset to a single empty leaf.
            if self.first_leaf_id == NO_NODE:
                root = self._allocate_node(level=0)
                self.first_leaf_id = root.page_id
            self.root_id = self.first_leaf_id
            self.height = 1
            return
        self._build_upper_from(leaf_summaries)

    def _collect_inner_pages(self) -> List[int]:
        """Inner page ids, walked level by level without touching leaves.

        Safe to call while leaf-level children are dangling (a sweep may
        have freed empty leaves before the rebuild fixes the parents).
        """
        pages: List[int] = []
        node = self._read(self.root_id)
        while not node.is_leaf:
            cursor: Optional[Node] = node
            first_child: Optional[int] = None
            while cursor is not None:
                pages.append(cursor.page_id)
                if first_child is None and cursor.entries:
                    first_child = cursor.entries[0][1]
                cursor = (
                    self._read(cursor.right_id)
                    if cursor.right_id != NO_NODE
                    else None
                )
            if node.level <= 1 or first_child is None:
                break
            node = self._read(first_child)
        return pages

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self._entry_count

    def node_count(self) -> int:
        return len(self._collect_pages())

    def leaf_count(self) -> int:
        return sum(1 for _ in self.iter_leaf_ids())

    def drop(self) -> None:
        """Free every page; the tree is unusable afterwards."""
        for page_id in self._collect_pages():
            self._free_node(page_id)
        self.root_id = NO_NODE
        self.first_leaf_id = NO_NODE
        self.height = 0
        self._entry_count = 0

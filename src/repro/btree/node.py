"""On-page layout of B-link tree nodes.

Every node — leaf or inner — is one disk page:

* header: level (0 = leaf), flags, entry count, high key (an advisory
  upper-bound hint maintained on splits; single-writer operation never
  depends on it), and left/right sibling page ids.  Per the B-link organization of Lehman & Yao [10]
  the nodes of *every* level are chained, which the paper needed both
  for sequential leaf sweeps and for rebuilding inner levels layer by
  layer.  We additionally keep a *left* link so free-at-empty unlinking
  is O(1); the paper's prototype gets the same effect from its parent
  stack.
* entries: ``(key, value)`` pairs of two 64-bit integers.  In a leaf the
  value is a packed RID (or an arbitrary payload integer); in an inner
  node it is a child page id and ``key`` is the smallest key reachable
  through that child.

Header layout (little-endian, 32 bytes)::

    u8  level        u8  flags (bit 0: high key present)
    u16 entry_count  u32 reserved
    i64 high_key     i64 left_sibling   i64 right_sibling
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import IndexError_

MIN_KEY = -(1 << 63)
MAX_KEY = (1 << 63) - 1

_HEADER = struct.Struct("<BBHIqqq")
HEADER_SIZE = _HEADER.size  # 32
ENTRY_SIZE = 16

_FLAG_HAS_HIGH = 1

#: page id value meaning "no sibling"
NO_NODE = 0


def node_capacity(page_size: int) -> int:
    """Maximum entries that fit into one node page."""
    return (page_size - HEADER_SIZE) // ENTRY_SIZE


@dataclass
class Node:
    """Decoded form of one B-link tree node."""

    page_id: int
    level: int
    entries: List[Tuple[int, int]] = field(default_factory=list)
    left_id: int = NO_NODE
    right_id: int = NO_NODE
    high_key: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    def keys(self) -> List[int]:
        return [key for key, _ in self.entries]

    def first_key(self) -> int:
        if not self.entries:
            raise IndexError_(f"node {self.page_id} is empty")
        return self.entries[0][0]

    def last_key(self) -> int:
        if not self.entries:
            raise IndexError_(f"node {self.page_id} is empty")
        return self.entries[-1][0]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def pack_into(self, data: bytearray) -> None:
        page_size = len(data)
        if HEADER_SIZE + ENTRY_SIZE * len(self.entries) > page_size:
            raise IndexError_(
                f"node {self.page_id} with {len(self.entries)} entries "
                f"does not fit a {page_size}-byte page"
            )
        flags = _FLAG_HAS_HIGH if self.high_key is not None else 0
        _HEADER.pack_into(
            data,
            0,
            self.level,
            flags,
            len(self.entries),
            0,
            self.high_key if self.high_key is not None else 0,
            self.left_id,
            self.right_id,
        )
        if self.entries:
            flat: List[int] = []
            for key, value in self.entries:
                flat.append(key)
                flat.append(value)
            struct.pack_into(f"<{len(flat)}q", data, HEADER_SIZE, *flat)

    @classmethod
    def unpack_from(cls, page_id: int, data: bytes) -> "Node":
        level, flags, count, _, high, left, right = _HEADER.unpack_from(data, 0)
        flat = struct.unpack_from(f"<{2 * count}q", data, HEADER_SIZE)
        entries = [(flat[2 * i], flat[2 * i + 1]) for i in range(count)]
        return cls(
            page_id=page_id,
            level=level,
            entries=entries,
            left_id=left,
            right_id=right,
            high_key=high if flags & _FLAG_HAS_HIGH else None,
        )

"""Structural validation and node-reclamation policies.

``validate_tree`` is the invariant checker the test suite (including the
hypothesis property tests) runs after every mutation sequence.  The
reclamation policies implement the papers cited by the reproduction
target: free-at-empty (Johnson & Shasha [9], the paper's default) and
merge-at-half (classic textbook behaviour, kept for ablations — [8]
concluded leaf merging after deletions is usually not worth it).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.btree.node import MIN_KEY, NO_NODE, Node
from repro.btree.tree import BLinkTree
from repro.errors import IndexError_


class ReclaimPolicy(enum.Enum):
    """When to reclaim under-full B-tree nodes."""

    FREE_AT_EMPTY = "free-at-empty"
    MERGE_AT_HALF = "merge-at-half"


def validate_tree(tree: BLinkTree) -> None:
    """Check every structural invariant; raises ``IndexError_`` on failure.

    Checked invariants:

    * every level's sibling chain is consistent (left/right pointers
      mirror each other) and keys are non-decreasing along it
      (``high_key`` is an advisory hint, not validated — inserts through
      stale-low separators can outdate it),
    * entries within a node are sorted by ``(key, value)``; across
      nodes keys are non-decreasing (duplicate keys may span nodes, and
      their values are only locally ordered),
    * inner separators bound their subtrees: child ``i`` (for ``i >= 1``)
      only holds keys in ``[sep_i, next-greater-sep)``; child 0 only
      keys below the first separator greater than its own,
    * no node exceeds its capacity,
    * the recorded entry count matches the leaf contents,
    * ``first_leaf_id`` is the leftmost leaf.
    """
    if tree.root_id == NO_NODE:
        raise IndexError_("tree has been dropped")
    total = _validate_subtree(tree, tree.root_id, MIN_KEY, None)
    if total != tree.entry_count:
        raise IndexError_(
            f"entry_count {tree.entry_count} but leaves hold {total}"
        )
    _validate_chains(tree)
    leftmost = tree.root_id
    node = tree._read(leftmost)
    while not node.is_leaf:
        if not node.entries:
            raise IndexError_(f"inner node {node.page_id} is empty")
        node = tree._read(node.entries[0][1])
    if node.page_id != tree.first_leaf_id:
        raise IndexError_(
            f"first_leaf_id {tree.first_leaf_id} but leftmost leaf "
            f"is {node.page_id}"
        )
    root = tree._read(tree.root_id)
    if root.level + 1 != tree.height:
        raise IndexError_(
            f"height {tree.height} but root level is {root.level}"
        )


def _validate_subtree(
    tree: BLinkTree, page_id: int, low: int, high: Optional[int]
) -> int:
    node = tree._read(page_id)
    if node.entry_count > tree.capacity_for(node):
        raise IndexError_(f"node {page_id} over capacity")
    for i in range(1, node.entry_count):
        if node.is_leaf:
            if node.entries[i - 1] > node.entries[i]:
                raise IndexError_(f"node {page_id} entries not sorted")
        elif node.entries[i - 1][0] > node.entries[i][0]:
            raise IndexError_(f"node {page_id} separators not sorted")
    for key, _ in node.entries:
        if key < low:
            raise IndexError_(
                f"node {page_id} key {key} below lower bound {low}"
            )
        if high is not None and key > high:
            raise IndexError_(
                f"node {page_id} key {key} above upper bound {high}"
            )
    if node.is_leaf:
        return node.entry_count
    total = 0
    for i, (sep, child) in enumerate(node.entries):
        # Child 0 may legitimately hold keys below its (stale) separator:
        # routing sends any key below the next separator to it.
        child_low = low if i == 0 else max(low, sep)
        # The (inclusive) upper bound is the next separator: a split
        # may leave equal keys on both sides of it.
        if i + 1 < node.entry_count:
            later_sep = node.entries[i + 1][0]
            child_high = later_sep if high is None else min(later_sep, high)
        else:
            child_high = high
        total += _validate_subtree(tree, child, child_low, child_high)
    return total


def _validate_chains(tree: BLinkTree) -> None:
    level_head = tree.root_id
    while True:
        head = tree._read(level_head)
        prev: Optional[Node] = None
        cursor: Optional[Node] = head
        while cursor is not None:
            if prev is not None:
                if cursor.left_id != prev.page_id:
                    raise IndexError_(
                        f"node {cursor.page_id} left link broken"
                    )
                if prev.entries and cursor.entries:
                    if prev.entries[-1][0] > cursor.entries[0][0]:
                        raise IndexError_(
                            f"chain order violated between {prev.page_id} "
                            f"and {cursor.page_id}"
                        )
            prev = cursor
            cursor = (
                tree._read(cursor.right_id)
                if cursor.right_id != NO_NODE
                else None
            )
        if head.is_leaf:
            return
        if not head.entries:
            raise IndexError_(f"inner node {head.page_id} is empty")
        level_head = head.entries[0][1]


def merge_underfull_leaves(tree: BLinkTree) -> int:
    """Merge adjacent under-half-full leaves (merge-at-half ablation).

    Walks the leaf chain once; whenever two neighbouring leaves fit into
    one node, the right one is drained into the left and freed.  Inner
    levels are rebuilt afterwards.  Returns the number of leaves freed.
    """
    merged = 0
    summaries: List[Tuple[int, int]] = []
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        while (
            node.right_id != NO_NODE
            and node.entry_count < tree.leaf_capacity // 2
        ):
            right = tree.read_leaf(node.right_id)
            if node.entry_count + right.entry_count > tree.leaf_capacity:
                break
            node.entries.extend(right.entries)
            node.right_id = right.right_id
            node.high_key = right.high_key
            tree._write(node)
            if right.right_id != NO_NODE:
                far = tree._read(right.right_id)
                far.left_id = node.page_id
                tree._write(far)
            tree._free_node(right.page_id)
            merged += 1
        if node.entries:
            summaries.append((node.first_key(), node.page_id))
        page_id = node.right_id
    tree.rebuild_upper_levels(summaries or None)
    return merged

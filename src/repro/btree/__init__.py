"""B-link tree index structure (leaf-chained B+-tree)."""

from repro.btree.bulk_insert import BulkInsertResult, bulk_insert_sorted
from repro.btree.cursor import LeafCursor
from repro.btree.maintenance import (
    ReclaimPolicy,
    merge_underfull_leaves,
    validate_tree,
)
from repro.btree.node import MAX_KEY, MIN_KEY, Node, node_capacity
from repro.btree.tree import BLinkTree

__all__ = [
    "BLinkTree",
    "BulkInsertResult",
    "bulk_insert_sorted",
    "LeafCursor",
    "MAX_KEY",
    "MIN_KEY",
    "Node",
    "ReclaimPolicy",
    "merge_underfull_leaves",
    "node_capacity",
    "validate_tree",
]

"""Set-oriented insertion into a B-link tree.

The dual of the bulk-delete sweep, needed by the paper's UPDATE
application ("increasing the salary of above-average employees involves
carrying out a bulk delete (and bulk insert) on the Emp.salary index",
§1) and closely related to the bulk-loading literature the paper cites
([22], [24], [25]).

``bulk_insert_sorted`` merges a key-sorted entry list into the leaf
chain in one left-to-right pass: each leaf is visited at most once,
receives every new entry belonging to its key range, and is split into
as many nodes as needed.  Inner levels are rebuilt layer by layer
afterwards, exactly like the delete sweep — so a bulk update pays two
sequential passes per index instead of two random traversals per
record.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.btree.node import MAX_KEY, NO_NODE, Node
from repro.btree.tree import BLinkTree
from repro.errors import UniqueViolationError
from repro.storage.disk import SimulatedDisk

Entry = Tuple[int, int]


@dataclass
class BulkInsertResult:
    """Outcome of one bulk insert into one tree."""

    structure: str
    inserted: int = 0
    pages_visited: int = 0
    pages_created: int = 0


def bulk_insert_sorted(
    tree: BLinkTree,
    sorted_entries: Sequence[Entry],
    disk: SimulatedDisk,
    fill_factor: float = 0.9,
) -> BulkInsertResult:
    """Merge ``sorted_entries`` (by ``(key, value)``) into ``tree``.

    One sequential pass over the leaf chain; overfull leaves are split
    in place into chains of fresh nodes.  For a unique tree a duplicate
    key raises before anything is modified on the page holding it.
    """
    result = BulkInsertResult(structure=tree.name)
    n = len(sorted_entries)
    if n == 0:
        return result
    for i in range(1, n):
        if sorted_entries[i - 1] > sorted_entries[i]:
            raise ValueError("bulk_insert_sorted input must be sorted")
    per_leaf = max(2, int(tree.leaf_capacity * fill_factor))
    i = 0
    summaries: List[Entry] = []
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        result.pages_visited += 1
        next_id = node.right_id
        is_last = next_id == NO_NODE
        # Upper bound of keys this leaf should absorb: the next leaf's
        # first key (strictly below it), or everything if last.
        if is_last:
            take_until = n
        else:
            right = tree.read_leaf(next_id)
            bound = right.first_key() if right.entries else MAX_KEY
            take_until = i
            while take_until < n and sorted_entries[take_until][0] < bound:
                take_until += 1
        incoming = list(sorted_entries[i:take_until])
        i = take_until
        if not incoming:
            if node.entries:
                summaries.append((node.first_key(), page_id))
            else:
                # A leftover empty leaf that receives nothing: unlink it
                # now, since the rebuilt inner levels will not know it.
                tree.unlink_and_free_leaves([page_id])
            page_id = next_id
            continue
        disk.charge_cpu_records(len(incoming) + node.entry_count)
        merged = _merge_entries(tree, node.entries, incoming)
        result.inserted += len(incoming)
        created = _write_leaf_run(
            tree, node, merged, per_leaf, summaries
        )
        result.pages_created += created
        page_id = next_id
    tree._entry_count += result.inserted
    tree.rebuild_upper_levels(summaries if summaries else None)
    return result


def _merge_entries(
    tree: BLinkTree, existing: List[Entry], incoming: List[Entry]
) -> List[Entry]:
    """Merge two sorted entry lists, enforcing uniqueness if required."""
    if tree.unique:
        keys = {k for k, _ in existing}
        for k, _ in incoming:
            if k in keys:
                raise UniqueViolationError(
                    f"duplicate key {k} in unique index {tree.name}"
                )
            keys.add(k)
    out: List[Entry] = []
    a, b = 0, 0
    while a < len(existing) and b < len(incoming):
        if existing[a] <= incoming[b]:
            out.append(existing[a])
            a += 1
        else:
            out.append(incoming[b])
            b += 1
    out.extend(existing[a:])
    out.extend(incoming[b:])
    return out


def _write_leaf_run(
    tree: BLinkTree,
    node: Node,
    merged: List[Entry],
    per_leaf: int,
    summaries: List[Entry],
) -> int:
    """Write ``merged`` back into ``node`` plus fresh right siblings.

    Keeps the original page first (RIDs pointing *at the tree* do not
    exist, so only chain links must stay consistent).  Returns the
    number of new pages created.
    """
    if len(merged) <= tree.leaf_capacity:
        chunks = [merged]
    else:
        chunks = [
            merged[start : start + per_leaf]
            for start in range(0, len(merged), per_leaf)
        ]
    old_right = node.right_id
    nodes = [node]
    for _ in range(len(chunks) - 1):
        nodes.append(tree._allocate_node(level=0))
    for idx, (leaf, chunk) in enumerate(zip(nodes, chunks)):
        leaf.level = 0
        leaf.entries = chunk
        leaf.left_id = nodes[idx - 1].page_id if idx > 0 else node.left_id
        if idx + 1 < len(nodes):
            leaf.right_id = nodes[idx + 1].page_id
            leaf.high_key = chunks[idx + 1][0][0]
        else:
            leaf.right_id = old_right
            leaf.high_key = None
        tree._write(leaf)
        summaries.append((chunk[0][0], leaf.page_id))
    if old_right != NO_NODE and len(nodes) > 1:
        right = tree._read(old_right)
        right.left_id = nodes[-1].page_id
        tree._write(right)
    return len(nodes) - 1

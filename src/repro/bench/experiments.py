"""One function per table/figure of the paper's evaluation.

Each returns a :class:`~repro.bench.harness.Series` whose
``scaled_minutes`` are comparable to the paper's y-axes (simulated
seconds scaled by the record-count ratio).  ``record_count`` trades
wall-clock time for fidelity; the shapes are stable from a few thousand
records upward.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import RunResult, Series, run_approach, sweep
from repro.core.executor import BulkDeleteOptions
from repro.workload.generator import Workload, WorkloadConfig, build_workload

DEFAULT_RECORDS = 20_000


def figure_1(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Intro figure: commercial RDBMS behaviour, 3 indexes, 1-15 %.

    The "commercial product" is approximated by the traditional
    executor with an unsorted delete list (the paper says its prototype
    ``not sorted/trad`` roughly corresponds to the studied product) and
    by ``drop & create``.
    """
    series = Series(
        title="Figure 1: bulk deletes on a 3-index table (commercial-style)",
        x_label="% deleted",
        x_values=[1, 5, 10, 15],
    )
    series.rows = {"not sorted/trad": [], "drop&create": []}
    for pct in series.x_values:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=("A", "B", "C"),
            memory_paper_mb=10.0,
        )
        series.rows["not sorted/trad"].append(
            run_approach("not sorted/trad", config, pct / 100.0,
                         observe=observe)
        )
        # A commercial system creates indexes efficiently (sort + bulk
        # load); the prototype-style "insert" rebuild is Figure 8's story.
        series.rows["drop&create"].append(
            run_approach(
                "drop&create", config, pct / 100.0,
                dc_create_method="bulk", observe=observe,
            )
        )
    return series


def figure_7(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 1: vary deleted fraction; 1 unclustered index, 5 MB."""
    return sweep(
        title="Figure 7: vary deletes, 1 unclustered index, 5 MB memory",
        x_label="% deleted",
        x_values=[5, 10, 15, 20],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda pct: WorkloadConfig(
            record_count=record_count,
            index_columns=("A",),
            memory_paper_mb=5.0,
        ),
        make_fraction=lambda pct: pct / 100.0,
        observe=observe,
    )


def figure_8(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 2: vary number of indexes; 15 % deletes."""
    index_sets = {1: ("A",), 2: ("A", "B"), 3: ("A", "B", "C")}
    series = sweep(
        title="Figure 8: vary indexes, 15% deletes, 5 MB memory",
        x_label="indexes",
        x_values=[1, 2, 3],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda n: WorkloadConfig(
            record_count=record_count,
            index_columns=index_sets[n],
            memory_paper_mb=5.0,
        ),
        make_fraction=lambda n: 0.15,
        observe=observe,
    )
    # drop & create needs at least one secondary index to drop, so it
    # is swept separately (its 1-index point is still defined: there is
    # simply nothing to drop and it degenerates to sorted/trad).
    series.rows["drop&create"] = []
    for n in [1, 2, 3]:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=index_sets[n],
            memory_paper_mb=5.0,
        )
        series.rows["drop&create"].append(
            run_approach("drop&create", config, 0.15, observe=observe)
        )
    return series


def table_1(record_count: int = DEFAULT_RECORDS,
            observe: bool = True) -> Series:
    """Experiment 3: index height 3 vs 4; 15 % deletes, 5 MB memory."""
    series = Series(
        title="Table 1: vary index height, 1 unclustered index, 15% deletes",
        x_label="height",
        x_values=[3, 4],
    )
    approaches = ["sorted/trad", "not sorted/trad", "bulk"]
    for approach in approaches:
        series.rows[approach] = []
    for height in [3, 4]:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=("A",),
            memory_paper_mb=5.0,
            index_height=height,
        )
        for approach in approaches:
            series.rows[approach].append(
                run_approach(approach, config, 0.15, observe=observe)
            )
    return series


def figure_9(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 4: vary main memory; 1 unclustered index, 15 %.

    The workload is run at twice the base scale with a lower memory
    floor so the three scaled budgets genuinely differ — otherwise the
    floor that keeps the other experiments honest would clamp them all
    to the same pool size and flatten the one curve this experiment is
    about.
    """
    return sweep(
        title="Figure 9: vary memory, 1 unclustered index, 15% deletes",
        x_label="memory (paper MB)",
        x_values=[2, 6, 10],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda mb: WorkloadConfig(
            record_count=record_count * 2,
            index_columns=("A",),
            memory_paper_mb=float(mb),
            memory_floor_pages=8,
        ),
        make_fraction=lambda mb: 0.15,
        observe=observe,
    )


def figure_10(record_count: int = DEFAULT_RECORDS,
              observe: bool = True) -> Series:
    """Experiment 5: clustered index I_A; vary deleted fraction."""
    series = Series(
        title="Figure 10: clustered index, 1 index, 5 MB memory",
        x_label="% deleted",
        x_values=[6, 10, 15, 20],
    )
    clustered = lambda: WorkloadConfig(  # noqa: E731
        record_count=record_count,
        index_columns=("A",),
        memory_paper_mb=5.0,
        clustered_on="A",
    )
    unclustered = lambda: WorkloadConfig(  # noqa: E731
        record_count=record_count,
        index_columns=("A",),
        memory_paper_mb=5.0,
    )
    series.rows = {
        "sorted/trad/clust": [],
        "sorted/trad/unclust": [],
        "not sorted/trad/clust": [],
        "bulk": [],
    }
    for pct in series.x_values:
        fraction = pct / 100.0
        series.rows["sorted/trad/clust"].append(
            run_approach("sorted/trad", clustered(), fraction,
                         observe=observe)
        )
        series.rows["sorted/trad/unclust"].append(
            run_approach("sorted/trad", unclustered(), fraction,
                         observe=observe)
        )
        series.rows["not sorted/trad/clust"].append(
            run_approach("not sorted/trad", clustered(), fraction,
                         observe=observe)
        )
        series.rows["bulk"].append(
            run_approach("bulk", clustered(), fraction,
                         observe=observe)
        )
    return series


def fig_parallel_speedup(record_count: int = DEFAULT_RECORDS,
                         observe: bool = True) -> Series:
    """Extension: multi-lane execution of the Figure 8 four-index plan.

    The workload indexes five columns (A drives the delete; B, C, D2
    and E become four near-equal post-table sweep branches), 15 %
    deletes.  ``lanes=1`` is the paper's serial single-disk testbed —
    bit-identical to the plain bulk run; higher lane counts schedule
    the independent branches concurrently.  ``dedicated`` lanes model
    one disk per lane (makespan = max over lanes, near-linear region
    speedup); ``shared`` lanes interleave on one device, losing every
    sequentiality discount — slower than not parallelizing at all.
    """
    series = Series(
        title="Parallel speedup: 4 post-table branches, 15% deletes, "
        "dedicated vs shared lanes",
        x_label="lanes",
        x_values=[1, 2, 4],
    )
    series.rows = {"dedicated": [], "shared": []}
    for lanes in series.x_values:
        for contention in ("dedicated", "shared"):
            config = WorkloadConfig(
                record_count=record_count,
                index_columns=("A", "B", "C", "D2", "E"),
                memory_paper_mb=5.0,
            )
            series.rows[contention].append(
                run_approach(
                    "bulk", config, 0.15,
                    options=BulkDeleteOptions(
                        lanes=lanes, contention=contention
                    ),
                    observe=observe,
                )
            )
    return series


def fig_scrub_overhead(record_count: int = DEFAULT_RECORDS,
                       observe: bool = False) -> Series:
    """Extension: what the scrubber costs next to the work it protects.

    For several table sizes, run the 15 % sort/merge bulk delete and
    then one full :func:`repro.media.scrub_database` pass (checksum
    sweep of every durable page + heap/index cross-reconciliation) on
    the same database.  The scrub reads the whole database once, mostly
    sequentially, so its cost grows with the table but stays well below
    the delete it guards.  Each scrub row's ``extra`` carries the pages
    checked and the overhead relative to the delete.
    """
    from repro.core.executor import bulk_delete
    from repro.core.plans import BdMethod
    from repro.media import scrub_database

    sizes = sorted({max(record_count // 4, 500),
                    max(record_count // 2, 1000), record_count})
    series = Series(
        title="Scrub overhead: 15% bulk delete vs one full scrub pass",
        x_label="records",
        x_values=sizes,
    )
    series.rows = {"bulk delete": [], "scrub pass": []}
    for n in sizes:
        config = WorkloadConfig(
            record_count=n, index_columns=("A", "B"), memory_paper_mb=5.0
        )
        wl = build_workload(config)
        keys = wl.delete_keys(0.15)
        wl.reset_measurements()
        db = wl.db
        result = bulk_delete(
            db, "R", "A", keys,
            prefer_method=BdMethod.SORT_MERGE, force_vertical=True,
        )
        delete_seconds = db.clock.now_seconds
        delete_io = db.disk.stats.snapshot()
        report = scrub_database(db)
        scrub_seconds = db.clock.now_seconds - delete_seconds
        scrub_io = db.disk.stats.delta_since(delete_io)
        if not report.ok:
            raise RuntimeError(
                "scrub of a healthy database reported damage: "
                + report.summary()
            )
        scale = config.scale_factor
        series.rows["bulk delete"].append(RunResult(
            approach="bulk delete", fraction=0.15,
            records_deleted=result.records_deleted,
            sim_seconds=delete_seconds,
            scaled_minutes=delete_seconds / 60.0 * scale,
            io=delete_io, wall_seconds=0.0,
        ))
        series.rows["scrub pass"].append(RunResult(
            approach="scrub pass", fraction=0.15,
            records_deleted=0,
            sim_seconds=scrub_seconds,
            scaled_minutes=scrub_seconds / 60.0 * scale,
            io=scrub_io, wall_seconds=0.0,
            extra={
                "pages_checked": float(report.pages_checked),
                "overhead_pct": 100.0 * scrub_seconds / delete_seconds,
            },
        ))
    return series


def fig_retention_overhead(record_count: int = DEFAULT_RECORDS,
                           observe: bool = False) -> Series:
    """Extension: the price of *compliant* deletion.

    For several subject-population sizes, compare three passes over the
    same two-policy retention scenario (heap root cascading into heap +
    LSM children over CASCADE/SET NULL/RESTRICT edges):

    * ``cascade delete`` — the bare FK-guarded bulk delete of the same
      victims (what the executor alone would do),
    * ``retention run`` — the full journaled run: WAL protocol,
      full-page writes, node seals, and the erase pass that shreds
      freed pages, index slack, spill files and redacts the WAL,
    * ``audit pass`` — the forensic unrecoverability sweep over live
      and freed pages, indexes, LSM runs, WAL and images.

    The gap between the first two is the compliance premium; the audit
    is read-only and must find nothing.  ``extra`` carries the erase
    and audit counters (pages shredded, WAL records redacted, pages
    scanned, overhead vs the bare cascade).
    """
    from repro.core.executor import bulk_delete
    from repro.core.integrity import cascade_bulk_delete
    from repro.retention import (
        RecoverableRetentionRun,
        RetentionScenario,
        audit_erasure,
    )

    base_users = max(record_count // 250, 16)
    sizes = sorted({max(base_users // 4, 8),
                    max(base_users // 2, 12), base_users})
    series = Series(
        title="Retention overhead: bare cascade vs journaled run + "
        "erase vs unrecoverability audit",
        x_label="subjects",
        x_values=sizes,
    )
    series.rows = {
        "cascade delete": [], "retention run": [], "audit pass": [],
    }

    def scenario(n: int) -> RetentionScenario:
        return RetentionScenario(
            users=n, victims=max(n // 4, 2), orders_per_user=2,
            expired_orders=n // 2, memory_pages=48,
        )

    for n in sizes:
        # Pass 1: the unguarded equivalent — FK-aware cascade plus the
        # age expiry, no WAL protocol, no erase, no audit.
        case = scenario(n).build()
        base = case.db.clock.now_seconds
        base_io = case.db.disk.stats.snapshot()
        result, report = cascade_bulk_delete(
            case.db, case.registry, "users", "UID", list(case.victims),
        )
        deleted = result.records_deleted + sum(
            r.records_deleted for r in report.cascaded
        )
        expiry = bulk_delete(
            case.db, "orders", "TS",
            [t for t in case.expired_ts],
        )
        deleted += expiry.records_deleted
        cascade_seconds = case.db.clock.now_seconds - base
        series.rows["cascade delete"].append(RunResult(
            approach="cascade delete", fraction=0.0,
            records_deleted=deleted,
            sim_seconds=cascade_seconds,
            scaled_minutes=cascade_seconds / 60.0,
            io=case.db.disk.stats.delta_since(base_io),
            wall_seconds=0.0,
        ))

        # Pass 2 + 3: the compliant run, then the adversary's read.
        case = scenario(n).build()
        plans = case.compile()
        base = case.db.clock.now_seconds
        base_io = case.db.disk.stats.snapshot()
        run_report = RecoverableRetentionRun(
            case.db, plans, case.log, full_page_writes=True,
        ).run()
        run_seconds = case.db.clock.now_seconds - base
        run_io = case.db.disk.stats.delta_since(base_io)
        series.rows["retention run"].append(RunResult(
            approach="retention run", fraction=0.0,
            records_deleted=run_report.records_deleted,
            sim_seconds=run_seconds,
            scaled_minutes=run_seconds / 60.0,
            io=run_io, wall_seconds=0.0,
            extra={
                "pages_shredded": float(run_report.erase.pages_shredded),
                "wal_redacted": float(
                    run_report.erase.wal_records_redacted
                ),
                "premium_pct": 100.0 * run_seconds / cascade_seconds,
            },
        ))

        audit_base = case.db.clock.now_seconds
        audit_base_io = case.db.disk.stats.snapshot()
        audit = audit_erasure(case.db, case.log, case.witness(plans))
        if not audit.ok:
            raise RuntimeError(
                "audit of a clean retention run found traces: "
                + audit.summary()
            )
        audit_seconds = case.db.clock.now_seconds - audit_base
        series.rows["audit pass"].append(RunResult(
            approach="audit pass", fraction=0.0,
            records_deleted=0,
            sim_seconds=audit_seconds,
            scaled_minutes=audit_seconds / 60.0,
            io=case.db.disk.stats.delta_since(audit_base_io),
            wall_seconds=0.0,
            extra={
                "pages_scanned": float(audit.pages_scanned),
                "wal_records_scanned": float(audit.wal_records_scanned),
            },
        ))
    return series


def fig_oltp_interference(record_count: int = DEFAULT_RECORDS,
                          observe: bool = True) -> Series:
    """Extension: what live OLTP sessions feel while the delete runs.

    Seeded closed-loop traffic (point reads, pad updates, inserts from
    N sessions) interleaves with a 15 % bulk delete on one simulated
    clock, once per delete strategy: the paper's §3 side-file vertical
    plan and a ``DELETE ... LIMIT``-style chunked horizontal plan.  The
    delete's work and the user ops share a single FCFS queue, so every
    millisecond a session waits is attributable — to the critical
    phase's table lock, to a propagation/chunk slice, or to queueing
    behind peers.  The headline metric is the p99 user latency *during*
    the delete window: the side-file plan pays one critical-phase
    stall (its sequential sweeps make it short per row) and then short
    propagation slices, while every chunk of the chunked plan is an
    indivisible random-I/O slice concurrent ops queue behind.

    Chunk sizing is the chunked plan's latency/duration dial — and it
    only trades one loss for another.  Shrinking chunks shortens each
    stall but multiplies the per-chunk progress persistence and
    stretches the interference window (already ~10x the side-file
    window here); the 256-row chunks used here are on the small end of
    the operational guidance for ``DELETE ... LIMIT`` batching, and
    each one already out-stalls the side-file plan's whole critical
    phase because a chunk pays ~3 random accesses per row where the
    critical sweep pays a fraction of a sequential page.  Each row's
    ``extra`` carries the exact during-phase percentiles, the stall
    decomposition, and the reconciliation problem count (always 0: the
    histograms, spans and metrics must agree exactly).

    Note on accounting: ``ChunkedDeleteResult.elapsed_ms`` now includes
    the statement's final flush (it used to stop the clock before it).
    This figure is unaffected — ``delete_window_ms`` derives from the
    traffic driver's submit/end timestamps, not the executor's rollup.
    """
    from repro.workload.traffic import run_interference_comparison

    series = Series(
        title="OLTP interference: p99 user latency during a 15% bulk "
        "delete, side-file vs chunked",
        x_label="sessions",
        x_values=[2, 8],
    )
    series.rows = {"sidefile": [], "chunked": []}
    config = WorkloadConfig(
        record_count=record_count, index_columns=("A", "B")
    )
    for sessions in series.x_values:
        results = run_interference_comparison(
            record_count=record_count,
            sessions=sessions,
            chunk_rows=256,
            observe=observe,
        )
        for name in ("sidefile", "chunked"):
            result = results[name]
            db = result.workload.db
            problems = (
                result.reconcile(db.obs) if observe else result.reconcile()
            )
            during = result.phase_hist("during")
            sim_seconds = db.clock.now_seconds
            series.rows[name].append(RunResult(
                approach=name, fraction=0.15,
                records_deleted=result.records_deleted,
                sim_seconds=sim_seconds,
                scaled_minutes=sim_seconds / 60.0 * config.scale_factor,
                io=db.disk.stats.snapshot(),
                wall_seconds=0.0,
                extra={
                    "p50_during_ms": during.percentile(50),
                    "p95_during_ms": during.percentile(95),
                    "p99_during_ms": during.percentile(99),
                    "ops_during": float(during.count),
                    "stall_lock_ms": sum(
                        op.delete_stall_ms for op in result.ops
                        if op.stall_kind == "lock"
                    ),
                    "stall_lane_ms": sum(
                        op.delete_stall_ms for op in result.ops
                        if op.stall_kind == "lane"
                    ),
                    "delete_window_ms": (
                        result.delete_end_ms - result.delete_submit_ms
                    ),
                    "reconcile_problems": float(len(problems)),
                },
            ))
    return series


def fig_shard_scaling(record_count: int = DEFAULT_RECORDS,
                      observe: bool = True) -> Series:
    """Extension: range-sharded delete throughput vs dedicated lanes.

    The workload is range-sharded on the driving column A into four
    equi-depth shards (each with its own heap and A-index); a 15 %
    delete list routes into four near-equal fragments that run as
    independent ``LaneTask``s.  ``lanes=1`` executes the fragments back
    to back on the serial code path (with one shard this is
    bit-identical to the unsharded executor); ``lanes=2`` packs two
    shards per dedicated lane and ``lanes=4`` gives each shard its own
    disk, so the ``shards`` region's speedup (serial time over
    makespan) approaches the shard count.  Each row's ``extra`` carries
    the region speedup, the fragment count, and the reconciliation
    problem count — always 0: per-task lane time must equal each
    fragment executor's own elapsed time to the last bit, and fragment
    row counts must sum to the statement total.
    """
    from repro.shard import sharded_bulk_delete
    from repro.workload.generator import build_sharded_workload

    series = Series(
        title="Shard scaling: 4 range shards, 15% deletes, "
        "dedicated lanes",
        x_label="lanes",
        x_values=[1, 2, 4],
    )
    series.rows = {"sharded": []}
    for lanes in series.x_values:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=("A",),
            memory_paper_mb=5.0,
        )
        wl = build_sharded_workload(config, shards=4)
        keys = wl.delete_keys(0.15)
        wl.reset_measurements()
        db = wl.db
        observer = db.observe() if observe else None
        try:
            result = sharded_bulk_delete(
                db, "R", "A", keys, lanes=lanes, contention="dedicated"
            )
        finally:
            if observer is not None:
                db.unobserve()
        problems = result.reconciliation_problems()
        if problems:
            raise RuntimeError(
                "sharded delete rollups failed to reconcile: "
                + "; ".join(problems)
            )
        sim_seconds = db.clock.now_seconds
        region = result.region
        series.rows["sharded"].append(RunResult(
            approach="sharded", fraction=0.15,
            records_deleted=result.records_deleted,
            sim_seconds=sim_seconds,
            scaled_minutes=sim_seconds / 60.0 * config.scale_factor,
            io=db.disk.stats.snapshot(),
            wall_seconds=0.0,
            extra={
                "region_speedup": (
                    region.speedup if region is not None else 1.0
                ),
                "fragments": float(len(result.fragment_results)),
                "reconcile_problems": float(len(problems)),
            },
        ))
    return series


def fig_lsm_vs_vertical(record_count: int = DEFAULT_RECORDS,
                        observe: bool = True) -> Series:
    """Extension: the comparison the 2001 paper could not run.

    The paper's §6 future work asks how bulk deletes fare on storage
    that does not update in place.  Both engines here run on the *same*
    simulated disk model: the heap + B+-tree side executes the paper's
    winning sort/merge vertical plan (1 unclustered index on A, 5
    paper-MB of memory); the LSM side loads the identical rows (keyed
    by A) into leveled runs and deletes the identical key list — first
    write-only (tombstones land, reclamation deferred), then with the
    FADE delete-aware compactions the plan schedules.

    Three claims become checkable rows:

    * tombstone writes are cheap — the write-only delete costs far less
      than the vertical plan at every fraction, because a delete is a
      log append instead of a read-modify-write of heap and leaf pages;
    * reclamation is the deferred price — tombstones leave lookup
      amplification behind (extra run probes and pages per point read,
      measured on a fixed key sample before and after FADE), and FADE's
      compactions buy it back;
    * the accounting closes exactly — every physical page write of the
      LSM delete window reconciles against the tree's own counters
      (``LsmStats.page_writes``), and both engines' I/O comes off one
      ``DiskStats`` ledger.

    Each LSM row's ``extra`` carries the tombstone mix, the compaction
    volume, the lookup amplification sample, and the reconciliation
    problem count (always 0).
    """
    from repro.catalog.database import Database
    from repro.catalog.schema import Attribute, TableSchema
    from repro.lsm import LsmConfig, lsm_bulk_delete

    series = Series(
        title="LSM vs vertical: tombstone deletes + FADE against the "
        "sort/merge heap plan, same disk model",
        x_label="% deleted",
        x_values=[5, 10, 15, 20],
    )
    series.rows = {
        "bulk (heap)": [], "lsm write-only": [], "lsm + FADE": [],
    }
    config = WorkloadConfig(
        record_count=record_count,
        index_columns=("A",),
        memory_paper_mb=5.0,
    )
    pad = config.record_bytes - 8
    lsm_config = LsmConfig(memtable_entries=max(64, record_count // 64))

    def build_lsm(values: List[int]) -> Database:
        db = Database(
            page_size=config.page_size, memory_bytes=config.memory_bytes
        )
        db.create_table(
            TableSchema.of(
                "R", [Attribute.int_("A"), Attribute.char("PAD", pad)]
            ),
            engine="lsm",
            lsm_config=lsm_config,
        )
        db.load_table("R", [(a, "x" * 8) for a in values])
        db.flush()
        db.clock.reset()
        db.disk.stats = type(db.disk.stats)()
        return db

    def probe_cost(db: Database, sample: List[int]) -> Dict[str, float]:
        """Pages and runs per point lookup over a fixed key sample."""
        tree = db.table("R").lsm
        assert tree is not None
        before = tree.stats.snapshot()
        for key in sample:
            tree.get(key)
        delta = tree.stats.delta_since(before)
        return {
            "pages": delta.lookup_pages_read / max(1, delta.lookups),
            "runs": delta.lookup_runs_probed / max(1, delta.lookups),
        }

    for pct in series.x_values:
        fraction = pct / 100.0
        wl = build_workload(config)
        keys = wl.delete_keys(fraction)
        values = list(wl.a_values)
        survivors = [a for a in values if a not in set(keys)]
        sample = survivors[:: max(1, len(survivors) // 64)][:64]

        series.rows["bulk (heap)"].append(
            run_approach("bulk", config, fraction, observe=observe)
        )

        for name, compact in (("lsm write-only", False),
                              ("lsm + FADE", True)):
            db = build_lsm(values)
            observer = db.observe() if observe else None
            try:
                before_probe = probe_cost(db, sample)
                db.clock.reset()
                db.disk.stats = type(db.disk.stats)()
                tree = db.table("R").lsm
                assert tree is not None
                stats_before = tree.stats.snapshot()
                result = lsm_bulk_delete(
                    db, "R", "A", keys, compact=compact
                )
                stats_delta = tree.stats.delta_since(stats_before)
                after_probe = probe_cost(db, sample)
            finally:
                if observer is not None:
                    db.unobserve()
            problems = []
            if result.io.writes != stats_delta.page_writes:
                problems.append(
                    f"disk wrote {result.io.writes} pages but the tree "
                    f"accounts for {stats_delta.page_writes}"
                )
            if result.records_deleted != len(set(keys)):
                problems.append(
                    f"deleted {result.records_deleted} != "
                    f"{len(set(keys))} targeted"
                )
            if problems:
                raise RuntimeError(
                    "LSM delete failed to reconcile: "
                    + "; ".join(problems)
                )
            sim_seconds = result.elapsed_ms / 1000.0
            series.rows[name].append(RunResult(
                approach=name, fraction=fraction,
                records_deleted=result.records_deleted,
                sim_seconds=sim_seconds,
                scaled_minutes=sim_seconds / 60.0 * config.scale_factor,
                io=result.io, wall_seconds=0.0,
                extra={
                    "point_tombstones": float(result.point_tombstones),
                    "range_tombstones": float(result.range_tombstones),
                    "flushes": float(result.flushes),
                    "compactions": float(result.compactions),
                    "tombstones_dropped": float(result.tombstones_dropped),
                    "compaction_pages_written": float(
                        result.compaction_pages_written
                    ),
                    "lookup_pages_before": before_probe["pages"],
                    "lookup_pages_after": after_probe["pages"],
                    "lookup_runs_before": before_probe["runs"],
                    "lookup_runs_after": after_probe["runs"],
                    "page_writes": float(stats_delta.page_writes),
                    "reconcile_problems": float(len(problems)),
                },
            ))
    return series


def media_retry_latency(recover_after: int) -> Dict[str, float]:
    """Simulated latency of one transient-faulted read (default policy).

    A page whose reads fail until the ``recover_after``-th attempt is
    read through :class:`repro.media.MediaRecovery`; the return value
    reports the end-to-end simulated latency next to a clean read of
    the same page — the retry *tail* the backoff policy buys.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import TRANSIENT, FaultPlan
    from repro.media import MediaRecovery
    from repro.storage.disk import SimulatedDisk

    # Raw page I/O by design: the tail being priced is the *media*
    # retry path underneath the pool, with no frame cache in the way.
    disk = SimulatedDisk()
    page = disk.allocate_page(disk.create_file())
    disk.write_page(page, bytes(disk.page_size))  # lint: allow(raw-page-io)
    disk.read_page(page)  # position the head  # lint: allow(raw-page-io)
    clean_start = disk.clock.now_ms
    disk.read_page(page)  # lint: allow(raw-page-io)
    clean_ms = disk.clock.now_ms - clean_start
    media = MediaRecovery(disk)
    plan = FaultPlan(
        read_fault=TRANSIENT, read_fault_page=page,
        read_recover_after=recover_after,
    )
    start = disk.clock.now_ms
    with FaultInjector(plan).armed(disk):
        media.read(page)
    return {
        "clean_ms": clean_ms,
        "faulted_ms": disk.clock.now_ms - start,
        "backoff_ms": media.stats.backoff_ms,
        "retries": float(media.stats.retries),
    }


ALL_EXPERIMENTS = {
    "figure_1": figure_1,
    "figure_7": figure_7,
    "figure_8": figure_8,
    "table_1": table_1,
    "figure_9": figure_9,
    "figure_10": figure_10,
    "fig_parallel_speedup": fig_parallel_speedup,
    "fig_scrub_overhead": fig_scrub_overhead,
    "fig_oltp_interference": fig_oltp_interference,
    "fig_shard_scaling": fig_shard_scaling,
    "fig_lsm_vs_vertical": fig_lsm_vs_vertical,
}

"""One function per table/figure of the paper's evaluation.

Each returns a :class:`~repro.bench.harness.Series` whose
``scaled_minutes`` are comparable to the paper's y-axes (simulated
seconds scaled by the record-count ratio).  ``record_count`` trades
wall-clock time for fidelity; the shapes are stable from a few thousand
records upward.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import RunResult, Series, run_approach, sweep
from repro.core.executor import BulkDeleteOptions
from repro.workload.generator import Workload, WorkloadConfig, build_workload

DEFAULT_RECORDS = 20_000


def figure_1(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Intro figure: commercial RDBMS behaviour, 3 indexes, 1-15 %.

    The "commercial product" is approximated by the traditional
    executor with an unsorted delete list (the paper says its prototype
    ``not sorted/trad`` roughly corresponds to the studied product) and
    by ``drop & create``.
    """
    series = Series(
        title="Figure 1: bulk deletes on a 3-index table (commercial-style)",
        x_label="% deleted",
        x_values=[1, 5, 10, 15],
    )
    series.rows = {"not sorted/trad": [], "drop&create": []}
    for pct in series.x_values:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=("A", "B", "C"),
            memory_paper_mb=10.0,
        )
        series.rows["not sorted/trad"].append(
            run_approach("not sorted/trad", config, pct / 100.0,
                         observe=observe)
        )
        # A commercial system creates indexes efficiently (sort + bulk
        # load); the prototype-style "insert" rebuild is Figure 8's story.
        series.rows["drop&create"].append(
            run_approach(
                "drop&create", config, pct / 100.0,
                dc_create_method="bulk", observe=observe,
            )
        )
    return series


def figure_7(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 1: vary deleted fraction; 1 unclustered index, 5 MB."""
    return sweep(
        title="Figure 7: vary deletes, 1 unclustered index, 5 MB memory",
        x_label="% deleted",
        x_values=[5, 10, 15, 20],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda pct: WorkloadConfig(
            record_count=record_count,
            index_columns=("A",),
            memory_paper_mb=5.0,
        ),
        make_fraction=lambda pct: pct / 100.0,
        observe=observe,
    )


def figure_8(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 2: vary number of indexes; 15 % deletes."""
    index_sets = {1: ("A",), 2: ("A", "B"), 3: ("A", "B", "C")}
    series = sweep(
        title="Figure 8: vary indexes, 15% deletes, 5 MB memory",
        x_label="indexes",
        x_values=[1, 2, 3],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda n: WorkloadConfig(
            record_count=record_count,
            index_columns=index_sets[n],
            memory_paper_mb=5.0,
        ),
        make_fraction=lambda n: 0.15,
        observe=observe,
    )
    # drop & create needs at least one secondary index to drop, so it
    # is swept separately (its 1-index point is still defined: there is
    # simply nothing to drop and it degenerates to sorted/trad).
    series.rows["drop&create"] = []
    for n in [1, 2, 3]:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=index_sets[n],
            memory_paper_mb=5.0,
        )
        series.rows["drop&create"].append(
            run_approach("drop&create", config, 0.15, observe=observe)
        )
    return series


def table_1(record_count: int = DEFAULT_RECORDS,
            observe: bool = True) -> Series:
    """Experiment 3: index height 3 vs 4; 15 % deletes, 5 MB memory."""
    series = Series(
        title="Table 1: vary index height, 1 unclustered index, 15% deletes",
        x_label="height",
        x_values=[3, 4],
    )
    approaches = ["sorted/trad", "not sorted/trad", "bulk"]
    for approach in approaches:
        series.rows[approach] = []
    for height in [3, 4]:
        config = WorkloadConfig(
            record_count=record_count,
            index_columns=("A",),
            memory_paper_mb=5.0,
            index_height=height,
        )
        for approach in approaches:
            series.rows[approach].append(
                run_approach(approach, config, 0.15, observe=observe)
            )
    return series


def figure_9(record_count: int = DEFAULT_RECORDS,
             observe: bool = True) -> Series:
    """Experiment 4: vary main memory; 1 unclustered index, 15 %.

    The workload is run at twice the base scale with a lower memory
    floor so the three scaled budgets genuinely differ — otherwise the
    floor that keeps the other experiments honest would clamp them all
    to the same pool size and flatten the one curve this experiment is
    about.
    """
    return sweep(
        title="Figure 9: vary memory, 1 unclustered index, 15% deletes",
        x_label="memory (paper MB)",
        x_values=[2, 6, 10],
        approaches=["sorted/trad", "not sorted/trad", "bulk"],
        make_config=lambda mb: WorkloadConfig(
            record_count=record_count * 2,
            index_columns=("A",),
            memory_paper_mb=float(mb),
            memory_floor_pages=8,
        ),
        make_fraction=lambda mb: 0.15,
        observe=observe,
    )


def figure_10(record_count: int = DEFAULT_RECORDS,
              observe: bool = True) -> Series:
    """Experiment 5: clustered index I_A; vary deleted fraction."""
    series = Series(
        title="Figure 10: clustered index, 1 index, 5 MB memory",
        x_label="% deleted",
        x_values=[6, 10, 15, 20],
    )
    clustered = lambda: WorkloadConfig(  # noqa: E731
        record_count=record_count,
        index_columns=("A",),
        memory_paper_mb=5.0,
        clustered_on="A",
    )
    unclustered = lambda: WorkloadConfig(  # noqa: E731
        record_count=record_count,
        index_columns=("A",),
        memory_paper_mb=5.0,
    )
    series.rows = {
        "sorted/trad/clust": [],
        "sorted/trad/unclust": [],
        "not sorted/trad/clust": [],
        "bulk": [],
    }
    for pct in series.x_values:
        fraction = pct / 100.0
        series.rows["sorted/trad/clust"].append(
            run_approach("sorted/trad", clustered(), fraction,
                         observe=observe)
        )
        series.rows["sorted/trad/unclust"].append(
            run_approach("sorted/trad", unclustered(), fraction,
                         observe=observe)
        )
        series.rows["not sorted/trad/clust"].append(
            run_approach("not sorted/trad", clustered(), fraction,
                         observe=observe)
        )
        series.rows["bulk"].append(
            run_approach("bulk", clustered(), fraction,
                         observe=observe)
        )
    return series


def fig_parallel_speedup(record_count: int = DEFAULT_RECORDS,
                         observe: bool = True) -> Series:
    """Extension: multi-lane execution of the Figure 8 four-index plan.

    The workload indexes five columns (A drives the delete; B, C, D2
    and E become four near-equal post-table sweep branches), 15 %
    deletes.  ``lanes=1`` is the paper's serial single-disk testbed —
    bit-identical to the plain bulk run; higher lane counts schedule
    the independent branches concurrently.  ``dedicated`` lanes model
    one disk per lane (makespan = max over lanes, near-linear region
    speedup); ``shared`` lanes interleave on one device, losing every
    sequentiality discount — slower than not parallelizing at all.
    """
    series = Series(
        title="Parallel speedup: 4 post-table branches, 15% deletes, "
        "dedicated vs shared lanes",
        x_label="lanes",
        x_values=[1, 2, 4],
    )
    series.rows = {"dedicated": [], "shared": []}
    for lanes in series.x_values:
        for contention in ("dedicated", "shared"):
            config = WorkloadConfig(
                record_count=record_count,
                index_columns=("A", "B", "C", "D2", "E"),
                memory_paper_mb=5.0,
            )
            series.rows[contention].append(
                run_approach(
                    "bulk", config, 0.15,
                    options=BulkDeleteOptions(
                        lanes=lanes, contention=contention
                    ),
                    observe=observe,
                )
            )
    return series


ALL_EXPERIMENTS = {
    "figure_1": figure_1,
    "figure_7": figure_7,
    "figure_8": figure_8,
    "table_1": table_1,
    "figure_9": figure_9,
    "figure_10": figure_10,
    "fig_parallel_speedup": fig_parallel_speedup,
}

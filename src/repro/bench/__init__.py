"""Benchmark harness: experiments, paper data, reports."""

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    figure_1,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    table_1,
)
from repro.bench.harness import APPROACHES, RunResult, Series, run_approach, sweep
from repro.bench.plots import render_chart, render_series
from repro.bench.report import format_table, paper_vs_measured, shape_checks

__all__ = [
    "ALL_EXPERIMENTS",
    "APPROACHES",
    "RunResult",
    "Series",
    "figure_1",
    "figure_7",
    "figure_8",
    "figure_9",
    "figure_10",
    "format_table",
    "paper_vs_measured",
    "render_chart",
    "render_series",
    "run_approach",
    "shape_checks",
    "sweep",
    "table_1",
]

"""ASCII line charts for experiment series.

The paper presents its evaluation as line plots (running time vs. a
swept parameter).  This renderer draws the same plots in plain text so
``python -m repro experiment figure_7 --plot`` and the bench reports
can show the curves, not just the tables — no plotting dependency
needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import Series

#: Marker per series, assigned in insertion order (mirrors the paper's
#: point markers).
MARKERS = "*+xo#@%&"


def render_chart(
    title: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "min",
) -> str:
    """Render one line chart as text.

    Values are linearly scaled into a ``width`` x ``height`` grid; each
    series gets a marker, collisions show the later series' marker.
    """
    if not series:
        raise ValueError("nothing to plot")
    points = [v for values in series.values() for v in values
              if v == v]  # drop NaN
    if not points:
        raise ValueError("only NaN values to plot")
    y_max = max(points)
    y_min = 0.0
    span = y_max - y_min or 1.0
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    n = len(x_values)
    for si, (name, values) in enumerate(series.items()):
        marker = MARKERS[si % len(MARKERS)]
        last: Optional[tuple] = None
        for i, value in enumerate(values):
            if value != value:  # NaN
                last = None
                continue
            x = 0 if n == 1 else round(i * (width - 1) / (n - 1))
            y = height - 1 - round((value - y_min) / span * (height - 1))
            if last is not None:
                _draw_segment(grid, last, (x, y), marker)
            grid[y][x] = marker
            last = (x, y)
    lines = [title]
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{y_max:8.1f} |"
        elif row_idx == height - 1:
            label = f"{y_min:8.1f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = "          "
    labels = [str(x) for x in x_values]
    if n > 1:
        for i, text in enumerate(labels):
            pos = 10 + round(i * (width - 1) / (n - 1)) - len(text) // 2
            if pos > len(x_axis):
                x_axis += " " * (pos - len(x_axis))
            x_axis += text
    else:
        x_axis += labels[0]
    lines.append(x_axis)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"  [{y_label}]  {legend}")
    return "\n".join(lines)


def _draw_segment(grid, a, b, marker: str) -> None:
    """Sparse interpolation between consecutive points (dots)."""
    (x0, y0), (x1, y1) = a, b
    steps = max(abs(x1 - x0), abs(y1 - y0))
    for step in range(1, steps):
        x = x0 + round(step * (x1 - x0) / steps)
        y = y0 + round(step * (y1 - y0) / steps)
        if grid[y][x] == " ":
            grid[y][x] = "."


def render_series(series: Series, width: int = 64, height: int = 16) -> str:
    """Chart a :class:`~repro.bench.harness.Series` (scaled minutes)."""
    return render_chart(
        series.title,
        series.x_values,
        {name: series.scaled_minutes(name) for name in series.rows},
        width=width,
        height=height,
    )

"""Published numbers from the paper, for paper-vs-measured reports.

Table 1 is exact; everything else is read off the figures (the paper
prints no tables for them), so those values carry ~10 % eyeballing
error.  Units are minutes on the paper's hardware (SUN Ultra 10,
333 MHz, Seagate Medialist Pro, 1 M x 512 B records).
"""

from __future__ import annotations

from typing import Dict, List

# Figure 1 — commercial RDBMS, 500 MB table, 3 indexes, 1/5/10/15 %.
FIG1_PERCENTS: List[int] = [1, 5, 10, 15]
FIG1_MINUTES: Dict[str, List[float]] = {
    "traditional": [10.0, 55.0, 115.0, 170.0],  # "-X 1h 16 min" marker ~
    "drop&create": [75.0, 76.0, 78.0, 80.0],
}

# Figure 7 (Experiment 1) — 1 unclustered index, 5 MB memory.
FIG7_PERCENTS: List[int] = [5, 10, 15, 20]
FIG7_MINUTES: Dict[str, List[float]] = {
    "sorted/trad": [28.0, 46.0, 64.65, 84.0],
    "not sorted/trad": [40.0, 72.0, 102.05, 135.0],
    "bulk": [24.0, 24.5, 24.87, 26.0],
}

# Figure 8 (Experiment 2) — 15 % deletes, vary number of indexes.
FIG8_INDEXES: List[int] = [1, 2, 3]
FIG8_MINUTES: Dict[str, List[float]] = {
    "sorted/trad": [64.65, 95.0, 130.0],
    "not sorted/trad": [102.05, 150.0, 195.0],
    "drop&create": [float("nan"), 230.0, 350.0],  # needs >= 2 indexes
    "bulk": [24.87, 28.0, 31.0],
}

# Table 1 (Experiment 3) — exact values from the paper.
TAB1_HEIGHTS: List[int] = [3, 4]
TAB1_MINUTES: Dict[str, List[float]] = {
    "sorted/bulk": [24.87, 26.79],
    "not sorted/bulk": [24.87, 26.79],
    "sorted/trad": [64.65, 80.65],
    "not sorted/trad": [102.05, 136.09],
}

# Figure 9 (Experiment 4) — 15 % deletes, vary memory.
FIG9_MEMORY_MB: List[int] = [2, 6, 10]
FIG9_MINUTES: Dict[str, List[float]] = {
    "sorted/trad": [68.0, 64.0, 62.0],
    "not sorted/trad": [185.0, 125.0, 100.0],
    "bulk": [25.0, 24.87, 24.5],
}

# Figure 10 (Experiment 5) — clustered index I_A, vary % deleted.
FIG10_PERCENTS: List[int] = [6, 10, 15, 20]
FIG10_MINUTES: Dict[str, List[float]] = {
    "sorted/trad/clust": [14.0, 17.0, 20.0, 23.0],
    "sorted/trad/unclust": [30.0, 47.0, 65.0, 85.0],
    "not sorted/trad/clust": [70.0, 105.0, 150.0, 190.0],
    "bulk": [22.0, 23.0, 25.0, 27.0],
}

"""Formatting of paper-vs-measured benchmark reports."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import Series


def format_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    columns: Dict[str, Sequence[float]],
    unit: str = "min",
) -> str:
    """Render one experiment as a fixed-width text table."""
    headers = [x_label] + list(columns)
    widths = [max(len(h), 12) for h in headers]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for i, x in enumerate(x_values):
        cells = [str(x).rjust(widths[0])]
        for (name, values), width in zip(columns.items(), widths[1:]):
            value = values[i]
            if value is None or (isinstance(value, float) and math.isnan(value)):
                cells.append("-".rjust(width))
            else:
                cells.append(f"{value:.2f}".rjust(width))
        lines.append("  ".join(cells))
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def paper_vs_measured(
    series: Series,
    paper_minutes: Dict[str, Sequence[float]],
    label_map: Optional[Dict[str, str]] = None,
) -> str:
    """Interleave the paper's numbers with the measured (scaled) ones.

    ``label_map`` maps measured approach labels to the paper's labels
    when they differ (e.g. ``bulk`` measured as ``sorted/bulk``).
    """
    label_map = label_map or {}
    columns: Dict[str, List[float]] = {}
    for approach in series.rows:
        paper_label = label_map.get(approach, approach)
        if paper_label in paper_minutes:
            columns[f"{paper_label} (paper)"] = list(
                paper_minutes[paper_label]
            )
        columns[f"{approach} (ours)"] = series.scaled_minutes(approach)
    return format_table(
        series.title, series.x_label, series.x_values, columns
    )


def operator_breakdown(series: Series, x_index: int = -1) -> str:
    """Per-operator cost breakdown for one sweep point of a series.

    Uses the traces captured by ``run_approach(observe=True)`` (runs
    without a trace are skipped).  Costs shown are *exclusive*
    (``self_*``): each operator's own simulated time and page accesses,
    children subtracted, so the rows of one approach sum to its run
    totals exactly.
    """
    from repro.obs.trace import Span

    x = series.x_values[x_index]
    lines: List[str] = [
        f"per-operator breakdown ({series.x_label} = {x}):"
    ]
    header = (
        f"    {'operator':<42} {'self ms':>10} {'%':>7} "
        f"{'reads':>7} {'writes':>7}"
    )
    found = False
    for approach, runs in series.rows.items():
        root = runs[x_index].trace
        if not isinstance(root, Span):
            continue
        found = True
        total_ms = root.elapsed_ms or 1.0
        lines.append(f"  {approach}:")
        lines.append(header)

        def emit(span: Span, depth: int) -> None:
            self_io = span.self_io
            name = "  " * depth + span.name
            lines.append(
                f"    {name:<42} {span.self_ms:>10.1f} "
                f"{span.self_ms / total_ms:>7.1%} "
                f"{self_io.reads:>7} {self_io.writes:>7}"
            )
            for child in span.children:
                emit(child, depth + 1)

        emit(root, 0)
        lines.append(
            f"    {'total':<42} {root.elapsed_ms:>10.1f} "
            f"{'100.0%':>7} {root.io.reads:>7} {root.io.writes:>7}"
        )
    if not found:
        return ""
    return "\n".join(lines)


def shape_checks(series: Series) -> List[str]:
    """Human-readable assertions about the curve shapes.

    These are the qualitative claims the reproduction must preserve:
    who wins, what grows, what stays flat.
    """
    notes: List[str] = []
    for approach, runs in series.rows.items():
        first, last = runs[0].scaled_minutes, runs[-1].scaled_minutes
        trend = "flat"
        if last > first * 1.5:
            trend = "growing"
        elif last < first / 1.5:
            trend = "shrinking"
        notes.append(
            f"{approach}: {first:.1f} -> {last:.1f} min ({trend})"
        )
    return notes

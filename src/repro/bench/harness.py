"""Runs one delete approach on one workload and collects measurements."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.drop_create import drop_create_delete
from repro.core.executor import BulkDeleteOptions, bulk_delete
from repro.core.plans import BdMethod
from repro.core.traditional import traditional_delete
from repro.storage.disk import DiskStats
from repro.workload.generator import Workload, WorkloadConfig, build_workload

#: Approach labels follow the paper's figures.
APPROACHES = (
    "bulk",            # sort/merge vertical plan (the paper's evaluated one)
    "bulk-hash",       # hash-probe vertical plan
    "bulk-partitioned",  # range-partitioned hash vertical plan
    "sorted/trad",     # horizontal with a sorted delete list
    "not sorted/trad",  # horizontal, delete list in arrival order
    "drop&create",     # drop secondary indexes, delete, re-create
)


@dataclass
class RunResult:
    """One (approach, workload, fraction) measurement."""

    approach: str
    fraction: float
    records_deleted: int
    sim_seconds: float
    scaled_minutes: float
    io: DiskStats
    wall_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)
    #: Root :class:`repro.obs.trace.Span` covering the run, captured
    #: when the harness was asked to ``observe``; ``None`` otherwise.
    trace: Optional[object] = None

    @property
    def sim_minutes(self) -> float:
        return self.sim_seconds / 60.0


def run_approach(
    approach: str,
    config: WorkloadConfig,
    fraction: float,
    workload: Optional[Workload] = None,
    options: Optional[BulkDeleteOptions] = None,
    dc_create_method: str = "insert",
    observe: bool = False,
) -> RunResult:
    """Build (or reuse) the workload and execute one approach.

    Every run gets a fresh database unless ``workload`` is supplied —
    deletes are destructive, so reuse is only safe for a single run.

    With ``observe=True`` an observer is attached for the duration and
    the run's root span lands in :attr:`RunResult.trace` — observation
    is read-only, so the simulated cost is identical either way.
    """
    if approach not in APPROACHES:
        raise ValueError(f"unknown approach {approach!r}")
    wl = workload or build_workload(config)
    keys = wl.delete_keys(fraction)
    wl.reset_measurements()
    db = wl.db
    observer = db.observe() if observe else None
    run_span = (
        observer.span(approach, kind="run", target="R")
        if observer is not None
        else None
    )
    if run_span is not None:
        run_span.__enter__()
    # RunResult.wall_seconds deliberately reports *host* time next to
    # the simulated clock — it never feeds a cost result.
    wall_start = time.perf_counter()  # lint: allow(wall-clock)
    extra: Dict[str, float] = {}
    if approach == "bulk":
        result = bulk_delete(
            db, "R", "A", keys, options=options,
            prefer_method=BdMethod.SORT_MERGE, force_vertical=True,
        )
        deleted = result.records_deleted
        _note_parallel(result, extra)
    elif approach == "bulk-hash":
        result = bulk_delete(
            db, "R", "A", keys, options=options,
            prefer_method=BdMethod.HASH, force_vertical=True,
        )
        deleted = result.records_deleted
    elif approach == "bulk-partitioned":
        result = bulk_delete(
            db, "R", "A", keys, options=options,
            prefer_method=BdMethod.PARTITIONED_HASH, force_vertical=True,
        )
        deleted = result.records_deleted
    elif approach == "sorted/trad":
        trad = traditional_delete(db, "R", "A", keys, presort=True)
        deleted = trad.records_deleted
    elif approach == "not sorted/trad":
        trad = traditional_delete(db, "R", "A", keys, presort=False)
        deleted = trad.records_deleted
    else:  # drop&create
        dc = drop_create_delete(
            db, "R", "A", keys, presort=True, create_method=dc_create_method
        )
        deleted = dc.records_deleted
        extra["delete_minutes"] = dc.delete_ms / 60000.0
        extra["recreate_minutes"] = dc.recreate_ms / 60000.0
    wall = time.perf_counter() - wall_start  # lint: allow(wall-clock)
    trace = None
    if run_span is not None:
        run_span.set(records_deleted=deleted)
        run_span.__exit__(None, None, None)
        trace = run_span.span
        db.unobserve()
    sim_seconds = db.clock.now_seconds
    return RunResult(
        approach=approach,
        fraction=fraction,
        records_deleted=deleted,
        sim_seconds=sim_seconds,
        scaled_minutes=sim_seconds / 60.0 * config.scale_factor,
        io=db.disk.stats.snapshot(),
        wall_seconds=wall,
        extra=extra,
        trace=trace,
    )


def _note_parallel(result, extra: Dict[str, float]) -> None:
    """Surface per-region lane metrics of a multi-lane bulk delete."""
    for region in getattr(result, "parallel_regions", []):
        extra[f"speedup[{region.name}]"] = region.speedup
        extra[f"makespan_ms[{region.name}]"] = region.makespan_ms
        extra[f"serial_ms[{region.name}]"] = region.serial_ms


@dataclass
class Series:
    """One experiment: x-axis values and per-approach measurements."""

    title: str
    x_label: str
    x_values: List[object]
    rows: Dict[str, List[RunResult]] = field(default_factory=dict)

    def scaled_minutes(self, approach: str) -> List[float]:
        return [r.scaled_minutes for r in self.rows[approach]]

    def sim_seconds(self, approach: str) -> List[float]:
        return [r.sim_seconds for r in self.rows[approach]]


def sweep(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    approaches: Sequence[str],
    make_config: Callable[[object], WorkloadConfig],
    make_fraction: Callable[[object], float],
    options: Optional[BulkDeleteOptions] = None,
    observe: bool = False,
) -> Series:
    """Run ``approaches`` over a parameter sweep, fresh DB per point."""
    series = Series(title=title, x_label=x_label, x_values=list(x_values))
    for approach in approaches:
        series.rows[approach] = []
    for x in x_values:
        config = make_config(x)
        fraction = make_fraction(x)
        for approach in approaches:
            series.rows[approach].append(
                run_approach(
                    approach, config, fraction,
                    options=options, observe=observe,
                )
            )
    return series

"""Fixed-layout record serialization driven by a table schema.

The paper's table R has ten random-integer attributes and one padding
string bringing each record to 512 bytes (Section 4.1).  Fixed-size
layouts keep the serde trivial and make record sizes — and therefore
page fan-outs — predictable, which the experiments depend on.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.catalog.schema import DataType, TableSchema
from repro.errors import SchemaError


class RecordSerializer:
    """Packs/unpacks value tuples for one :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        parts: List[str] = ["<"]
        for attr in schema.attributes:
            if attr.data_type is DataType.INT:
                parts.append("q")
            elif attr.data_type is DataType.CHAR:
                parts.append(f"{attr.length}s")
            else:  # pragma: no cover - enum is closed
                raise SchemaError(f"unsupported type {attr.data_type}")
        self._struct = struct.Struct("".join(parts))

    @property
    def record_size(self) -> int:
        return self._struct.size

    def pack(self, values: Sequence[object]) -> bytes:
        if len(values) != len(self.schema.attributes):
            raise SchemaError(
                f"expected {len(self.schema.attributes)} values, "
                f"got {len(values)}"
            )
        prepared: List[object] = []
        for attr, value in zip(self.schema.attributes, values):
            if attr.data_type is DataType.INT:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise SchemaError(
                        f"attribute {attr.name} expects an int, got {value!r}"
                    )
                prepared.append(value)
            else:
                if isinstance(value, str):
                    raw = value.encode("utf-8")
                elif isinstance(value, (bytes, bytearray)):
                    raw = bytes(value)
                else:
                    raise SchemaError(
                        f"attribute {attr.name} expects a string, got {value!r}"
                    )
                if len(raw) > attr.length:
                    raise SchemaError(
                        f"attribute {attr.name} is CHAR({attr.length}); "
                        f"value of {len(raw)} bytes is too long"
                    )
                prepared.append(raw.ljust(attr.length, b"\x00"))
        return self._struct.pack(*prepared)

    def unpack(self, payload: bytes) -> Tuple[object, ...]:
        if len(payload) != self._struct.size:
            raise SchemaError(
                f"payload of {len(payload)} bytes does not match record "
                f"size {self._struct.size}"
            )
        raw = self._struct.unpack(payload)
        values: List[object] = []
        for attr, value in zip(self.schema.attributes, raw):
            if attr.data_type is DataType.INT:
                values.append(value)
            else:
                values.append(value.rstrip(b"\x00").decode("utf-8"))
        return tuple(values)

"""LRU buffer pool over the simulated disk.

The paper's prototype used 10 MB of main memory (5 MB in most
experiments) both as an I/O cache and as sort space.  This buffer pool
models the cache half: a fixed number of frames with LRU replacement,
pin counts, and write-back of dirty frames on eviction.

The buffer pool is what makes the ``sorted/trad`` and
``not sorted/trad`` baselines diverge: with a sorted delete list the
relevant index pages are touched in physical order and each is fetched
once, while an unsorted list thrashes the pool and re-fetches leaf
pages over and over (Experiment 4 in the paper varies exactly this).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import BufferPoolError, StorageError
from repro.storage.disk import SimulatedDisk


@dataclass
class BufferStats:
    """Hit/miss and eviction counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "BufferStats":
        return BufferStats(**vars(self))

    def delta_since(self, earlier: "BufferStats") -> "BufferStats":
        return BufferStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


class _Frame:
    __slots__ = ("page_id", "data", "dirty", "pin_count")

    def __init__(self, page_id: int, data: bytearray) -> None:
        self.page_id = page_id
        self.data = data
        self.dirty = False
        self.pin_count = 0


class PinnedPage:
    """Context-manager handle to a pinned page.

    ``data`` is the live ``bytearray`` of the frame; callers that modify
    it must call :meth:`mark_dirty` (or pass ``dirty=True`` on exit via
    :meth:`BufferPool.unpin`).
    """

    def __init__(self, pool: "BufferPool", frame: _Frame) -> None:
        self._pool = pool
        self._frame = frame
        self._dirty = False
        self._epoch = pool._epoch

    @property
    def page_id(self) -> int:
        return self._frame.page_id

    @property
    def data(self) -> bytearray:
        return self._frame.data

    def mark_dirty(self) -> None:
        self._dirty = True

    def __enter__(self) -> "PinnedPage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._epoch != self._pool._epoch:
            # The pool was invalidated (simulated crash) while this page
            # was pinned; there is nothing left to unpin.
            return
        self._pool.unpin(self._frame.page_id, dirty=self._dirty)


class BufferPool:
    """A fixed-capacity LRU page cache with pinning and write-back."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.stats = BufferStats()
        # Insertion order == LRU order (oldest first).
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        # Bumped by invalidate_all(); pins taken before an invalidation
        # unwind without complaining that their frame vanished.
        self._epoch = 0
        #: Full-page-image hook: called as ``sink(page_id, image)`` with
        #: the page's *durable* bytes the first time a clean resident
        #: frame is dirtied.  Recovery uses it to log pre-images so torn
        #: writes can be repaired (fresh ``pin_new`` frames are born
        #: dirty and are skipped — their durable pre-image is zeros and
        #: nothing references them until a later flush).
        self.page_image_sink: Optional[Callable[[int, bytes], None]] = None
        #: Media recovery layer (:class:`repro.media.MediaRecovery`, or
        #: anything with ``read(page_id) -> bytes``).  When set, pool
        #: misses read through it, gaining retry/backoff on transient
        #: read faults and repair-from-image on checksum mismatches.
        #: ``None`` (the default) keeps misses on the plain disk read.
        self.media: Optional[Any] = None

    @classmethod
    def with_byte_budget(cls, disk: SimulatedDisk, budget_bytes: int) -> "BufferPool":
        """Size the pool from a byte budget (at least one frame)."""
        frames = max(1, budget_bytes // disk.page_size)
        return cls(disk, frames)

    # ------------------------------------------------------------------
    # pinning API
    # ------------------------------------------------------------------
    def pin(self, page_id: int, cold: bool = False) -> PinnedPage:
        """Pin ``page_id`` into the pool, fetching it on a miss.

        ``cold`` requests scan-resistant placement: a freshly fetched
        frame is inserted at the LRU end so it is the next eviction
        victim.  Single-record base-table accesses use this so that a
        stream of data pages does not flush the index pages out of the
        pool — the paper's prototype likewise dedicates its buffer
        memory to "pages of indices and/or base tables" rather than
        letting one stream evict the other.
        """
        frame = self._frames.get(page_id)
        observer = self.disk.observer
        if frame is not None:
            self.stats.hits += 1
            if observer is not None:
                observer.on_buffer_hit()  # type: ignore[attr-defined]
            if not cold:
                self._frames.move_to_end(page_id)
        else:
            self.stats.misses += 1
            if observer is not None:
                observer.on_buffer_miss()  # type: ignore[attr-defined]
            self._make_room()
            if self.media is not None:
                data = bytearray(self.media.read(page_id))
            else:
                data = bytearray(self.disk.read_page(page_id))
            frame = _Frame(page_id, data)
            self._frames[page_id] = frame
            if cold:
                self._frames.move_to_end(page_id, last=False)
        frame.pin_count += 1
        return PinnedPage(self, frame)

    def pin_new(self, file_id: int) -> PinnedPage:
        """Allocate a fresh page on disk and pin it (already zeroed)."""
        page_id = self.disk.allocate_page(file_id)
        self._make_room()
        frame = _Frame(page_id, bytearray(self.disk.page_size))
        # A freshly allocated page does not need a disk read, but it must
        # reach the disk eventually.
        frame.dirty = True
        frame.pin_count = 1
        self._frames[page_id] = frame
        return PinnedPage(self, frame)

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count <= 0:
            raise BufferPoolError(f"unpin of page {page_id} that is not pinned")
        if dirty:
            if not frame.dirty and self.page_image_sink is not None:
                # Clean -> dirty: the disk still holds the last durable
                # image of this page; capture it before it can be
                # overwritten by a (possibly torn) write-back.
                self.page_image_sink(
                    page_id, self.disk.durable_image(page_id)
                )
            frame.dirty = True
        frame.pin_count -= 1

    # ------------------------------------------------------------------
    # flushing and invalidation
    # ------------------------------------------------------------------
    def flush_page(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self.disk.write_page(page_id, bytes(frame.data))
            self.stats.dirty_writebacks += 1
            if self.disk.observer is not None:
                self.disk.observer.on_buffer_writeback()  # type: ignore[attr-defined]
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame, in page-id order.

        Sorting by page id turns the write burst into a mostly
        sequential pass, as an elevator scheduler would.
        """
        for page_id in sorted(self._frames):
            self.flush_page(page_id)

    def discard(self, page_id: int) -> None:
        """Drop a frame without writing it back (for freed pages)."""
        frame = self._frames.get(page_id)
        if frame is None:
            return
        if frame.pin_count > 0:
            raise BufferPoolError(f"cannot discard pinned page {page_id}")
        del self._frames[page_id]

    def clear(self) -> None:
        """Flush everything and empty the pool (e.g. on shutdown)."""
        self.flush_all()
        for frame in self._frames.values():
            if frame.pin_count > 0:
                raise BufferPoolError("cannot clear pool with pinned pages")
        self._frames.clear()

    def invalidate_all(self) -> None:
        """Drop every frame *without* write-back (simulated power loss).

        Dirty pages that were never flushed are lost, exactly as a crash
        would lose them; the recovery tests rely on this.  Pins taken
        before the invalidation become no-ops on release (the exception
        that models the crash unwinds through their ``with`` blocks).
        """
        self._frames.clear()
        self._epoch += 1

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    def resident_page_ids(self) -> Iterator[int]:
        return iter(list(self._frames))

    @property
    def resident_count(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_room(self) -> None:
        if len(self._frames) < self.capacity_pages:
            return
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.dirty:
                    self.disk.write_page(page_id, bytes(frame.data))
                    self.stats.dirty_writebacks += 1
                del self._frames[page_id]
                self.stats.evictions += 1
                if self.disk.observer is not None:
                    self.disk.observer.on_buffer_eviction(  # type: ignore[attr-defined]
                        frame.dirty
                    )
                return
        raise BufferPoolError("all buffer frames are pinned")

"""Row identifiers.

The paper: "a RID can be thought of as a pointer to a record of a base
table ... composed of a page number and a slot number".  RIDs order by
``(page_id, slot)``, which is the physical clustering order of a heap
file — sorting a delete list by RID turns the base-table pass of a bulk
delete into a sequential sweep.

A RID also packs losslessly into a 64-bit integer so it can be stored as
the value of a B-tree entry.
"""

from __future__ import annotations

from typing import NamedTuple


class RID(NamedTuple):
    """Physical address of a record: ``(page_id, slot)``."""

    page_id: int
    slot: int

    def pack(self) -> int:
        """Encode into a non-negative 64-bit integer (page << 16 | slot)."""
        if not 0 <= self.slot < (1 << 16):
            raise ValueError(f"slot {self.slot} out of range")
        if not 0 <= self.page_id < (1 << 47):
            raise ValueError(f"page id {self.page_id} out of range")
        return (self.page_id << 16) | self.slot

    @classmethod
    def unpack(cls, packed: int) -> "RID":
        return cls(packed >> 16, packed & 0xFFFF)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.page_id}.{self.slot}"

"""Heap files: unordered record storage addressed by RID.

A heap file owns a sequence of slotted pages inside one disk file.
Records are addressed by :class:`~repro.storage.rid.RID` and those
addresses stay stable across deletes (slots are tombstoned, not
renumbered), which the paper's RID-based index maintenance requires.

The page-id list and the free-space map are kept in memory; a real
engine would store them in catalog pages, but they are metadata whose
size is ~0.1 % of the data and they do not affect the measured I/O
patterns.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PageFullError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.freespace import FreeSpaceMap
from repro.storage.page_formats import SlottedPage
from repro.storage.rid import RID


class HeapFile:
    """A heap of fixed- or variable-size records over slotted pages."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self.pool = pool
        self.name = name
        self.file_id = pool.disk.create_file()
        self.page_ids: List[int] = []
        self._page_set: set = set()
        self.fsm = FreeSpaceMap()
        self._record_count = 0

    # ------------------------------------------------------------------
    # basic record operations
    # ------------------------------------------------------------------
    def insert(self, payload: bytes) -> RID:
        """Insert a record, preferring pages with reusable free space.

        A page whose stranded (deleted) payload would make room is
        compacted in place before the insert — RIDs of its survivors
        are unaffected because compaction preserves slot numbers.
        """
        target = self.fsm.find_page_with(len(payload) + 8)
        if target is not None:
            with self.pool.pin(target) as pinned:
                page = SlottedPage(pinned.data)
                slot = None
                if not page.can_fit(len(payload)) and (
                    page.potential_free_space() >= len(payload)
                ):
                    page.compact()
                    pinned.mark_dirty()
                try:
                    slot = page.insert(payload)
                except PageFullError:
                    slot = None
                else:
                    pinned.mark_dirty()
                    self.fsm.record(target, page.potential_free_space())
            if slot is not None:
                self._record_count += 1
                return RID(target, slot)
            self.fsm.forget(target)
        return self._append_to_new_or_last(payload)

    def append(self, payload: bytes) -> RID:
        """Insert at the end of the file (bulk-load path, no FSM lookup)."""
        return self._append_to_new_or_last(payload)

    def _append_to_new_or_last(self, payload: bytes) -> RID:
        if self.page_ids:
            last = self.page_ids[-1]
            with self.pool.pin(last) as pinned:
                page = SlottedPage(pinned.data)
                if page.can_fit(len(payload)):
                    slot = page.insert(payload)
                    pinned.mark_dirty()
                    self.fsm.record(last, page.free_space())
                    self._record_count += 1
                    return RID(last, slot)
        with self.pool.pin_new(self.file_id) as pinned:
            page = SlottedPage.format_empty(pinned.data)
            slot = page.insert(payload)
            pinned.mark_dirty()
            page_id = pinned.page_id
            self.fsm.record(page_id, page.free_space())
        self.page_ids.append(page_id)
        self._page_set.add(page_id)
        self._record_count += 1
        return RID(page_id, slot)

    def read(self, rid: RID) -> bytes:
        self._check_rid(rid)
        with self.pool.pin(rid.page_id) as pinned:
            return SlottedPage(pinned.data).read(rid.slot)

    def exists(self, rid: RID) -> bool:
        if rid.page_id not in self._page_id_set():
            return False
        with self.pool.pin(rid.page_id) as pinned:
            return SlottedPage(pinned.data).is_live(rid.slot)

    def delete(self, rid: RID, cold: bool = False) -> bytes:
        """Tombstone one record and return its payload.

        ``cold`` marks this as a point access that should not displace
        hotter (index) pages from the buffer pool.
        """
        self._check_rid(rid)
        with self.pool.pin(rid.page_id, cold=cold) as pinned:
            page = SlottedPage(pinned.data)
            payload = page.delete(rid.slot)
            pinned.mark_dirty()
            self.fsm.record(rid.page_id, page.potential_free_space())
        self._record_count -= 1
        return payload

    def update(self, rid: RID, payload: bytes) -> bytes:
        """Rewrite one record in place (same size); returns the old bytes."""
        self._check_rid(rid)
        with self.pool.pin(rid.page_id) as pinned:
            page = SlottedPage(pinned.data)
            old = page.replace(rid.slot, payload)
            pinned.mark_dirty()
        return old

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def delete_many_sorted(
        self,
        rids: Sequence[RID],
        compact_pages: bool = False,
        on_page_deletes: Optional[Callable[[List[Tuple[RID, bytes]]], None]] = None,
    ) -> List[Tuple[RID, bytes]]:
        """Delete RID-sorted records, pinning each page exactly once.

        This is the base-table half of the vertical bulk delete: because
        the RID list is sorted, the pass over the heap file is a
        sequential sweep.  Returns ``(rid, payload)`` pairs of the
        deleted records so downstream index bulk deletes can project the
        key columns they need.
        """
        deleted: List[Tuple[RID, bytes]] = []
        i = 0
        n = len(rids)
        while i < n:
            page_id = rids[i].page_id
            self._check_rid(rids[i])
            with self.pool.pin(page_id) as pinned:
                page = SlottedPage(pinned.data)
                page_deletes: List[Tuple[RID, bytes]] = []
                while i < n and rids[i].page_id == page_id:
                    rid = rids[i]
                    page_deletes.append((rid, page.read(rid.slot)))
                    i += 1
                if on_page_deletes is not None:
                    # WAL protocol: redo record before the page changes.
                    on_page_deletes(page_deletes)
                for rid, _ in page_deletes:
                    page.delete(rid.slot)
                    self._record_count -= 1
                deleted.extend(page_deletes)
                if compact_pages:
                    page.compact()
                pinned.mark_dirty()
                self.fsm.record(page_id, page.potential_free_space())
        return deleted

    def update_many_sorted(
        self,
        updates: Sequence[Tuple[RID, bytes]],
    ) -> List[Tuple[RID, bytes]]:
        """Rewrite RID-sorted records in place, one page pin per page.

        The heap half of a vertical bulk UPDATE: like the delete sweep,
        a RID-sorted list turns the pass into sequential I/O.  Returns
        ``(rid, old_payload)`` pairs.
        """
        out: List[Tuple[RID, bytes]] = []
        i = 0
        n = len(updates)
        while i < n:
            page_id = updates[i][0].page_id
            self._check_rid(updates[i][0])
            with self.pool.pin(page_id) as pinned:
                page = SlottedPage(pinned.data)
                while i < n and updates[i][0].page_id == page_id:
                    rid, payload = updates[i]
                    out.append((rid, page.replace(rid.slot, payload)))
                    i += 1
                pinned.mark_dirty()
        return out

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield every live record in physical (RID) order."""
        for page_id in self.page_ids:
            with self.pool.pin(page_id) as pinned:
                rows = list(SlottedPage(pinned.data).records())
            for slot, payload in rows:
                yield RID(page_id, slot), payload

    def scan_pages(self) -> Iterator[Tuple[int, List[Tuple[int, bytes]]]]:
        """Yield ``(page_id, [(slot, payload), ...])`` page by page."""
        for page_id in self.page_ids:
            with self.pool.pin(page_id) as pinned:
                rows = list(SlottedPage(pinned.data).records())
            yield page_id, rows

    def reclaim_empty_pages(self) -> int:
        """Free fully empty pages (free-at-empty); returns count freed.

        The paper only reclaims completely empty pages, following
        Johnson & Shasha [9]; partially empty pages keep their records
        so RIDs stay valid.
        """
        survivors: List[int] = []
        freed = 0
        for page_id in self.page_ids:
            with self.pool.pin(page_id) as pinned:
                empty = SlottedPage(pinned.data).is_empty()
            if empty:
                self.pool.discard(page_id)
                self.pool.disk.free_page(page_id)
                self.fsm.forget(page_id)
                freed += 1
            else:
                survivors.append(page_id)
        self.page_ids = survivors
        self._page_set = set(survivors)
        return freed

    def drop(self) -> None:
        """Free every page of the file."""
        for page_id in self.page_ids:
            self.pool.discard(page_id)
            self.pool.disk.free_page(page_id)
        self.page_ids = []
        self._page_set = set()
        self.fsm = FreeSpaceMap()
        self._record_count = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def page_count(self) -> int:
        return len(self.page_ids)

    def _page_id_set(self) -> set:
        return self._page_set

    def _check_rid(self, rid: RID) -> None:
        if rid.page_id not in self._page_id_set():
            raise StorageError(
                f"RID {rid} does not point into heap file {self.name}"
            )

"""Slotted-page layout for heap files.

Classic slotted page: a header at the front, record payloads growing
from the header towards the end, and a slot directory growing backwards
from the end of the page.  Deleting a record leaves a tombstoned slot so
RIDs of other records stay stable — exactly what the paper's RID-based
bulk deletes rely on.

Layout (little-endian)::

    offset 0   u16  slot_count        (number of directory entries)
    offset 2   u16  free_space_start  (first byte after last payload)
    offset 4   u16  live_records      (non-tombstoned slots)
    offset 6   u16  reserved
    payloads ...
    ... free space ...
    slot directory entries of 4 bytes each, entry i at
    page_size - 4 * (i + 1):  u16 offset, u16 length (length 0 = dead)
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.errors import PageFullError, StorageError

_HEADER = struct.Struct("<HHHH")
_SLOT = struct.Struct("<HH")

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


def page_checksum(data: bytes) -> int:
    """CRC-32 of a full page image.

    Stored *out of band* by :class:`~repro.storage.disk.SimulatedDisk`
    (the way a disk keeps a per-sector ECC/CRC next to the data, not
    inside it), so the page layout — and every cost and golden file
    derived from it — is unchanged.  The disk stamps the checksum of
    the *intended* image on every write and verifies it on every read;
    a torn commit, flipped bit, or stale half therefore fails
    verification on the next read instead of silently reaching an
    operator.
    """
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


class SlottedPage:
    """A view over a ``bytearray`` implementing the slotted layout.

    The class never owns the buffer; it mutates the ``bytearray`` handed
    to it (normally a pinned buffer-pool frame) in place.
    """

    def __init__(self, data: bytearray) -> None:
        self.data = data
        self.page_size = len(data)

    # ------------------------------------------------------------------
    # header accessors
    # ------------------------------------------------------------------
    @classmethod
    def format_empty(cls, data: bytearray) -> "SlottedPage":
        """Initialise ``data`` as an empty slotted page."""
        page = cls(data)
        page._write_header(0, HEADER_SIZE, 0)
        return page

    def _read_header(self) -> Tuple[int, int, int]:
        slot_count, free_start, live, _ = _HEADER.unpack_from(self.data, 0)
        return slot_count, free_start, live

    def _write_header(self, slot_count: int, free_start: int, live: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_start, live, 0)

    @property
    def slot_count(self) -> int:
        return self._read_header()[0]

    @property
    def live_records(self) -> int:
        return self._read_header()[2]

    # ------------------------------------------------------------------
    # slot directory
    # ------------------------------------------------------------------
    def _slot_pos(self, slot: int) -> int:
        return self.page_size - SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        slot_count = self.slot_count
        if not 0 <= slot < slot_count:
            raise StorageError(f"slot {slot} out of range (page has {slot_count})")
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset, length)

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def free_space(self) -> int:
        """Bytes available for one more record (including its slot)."""
        slot_count, free_start, _ = self._read_header()
        directory_start = self.page_size - SLOT_SIZE * slot_count
        return max(0, directory_start - free_start - SLOT_SIZE)

    def can_fit(self, record_size: int) -> bool:
        return self.free_space() >= record_size

    def potential_free_space(self) -> int:
        """Free bytes available after a :meth:`compact` pass.

        Deleted records leave their payload bytes stranded until the
        page is compacted; inserts consult this to decide whether
        compaction would make room (classic free-space management, cf.
        [14] in the paper).
        """
        slot_count, _, _ = self._read_header()
        live_bytes = sum(len(payload) for _, payload in self.records())
        has_dead_slot = any(
            self._read_slot(slot)[1] == 0 for slot in range(slot_count)
        )
        directory_start = self.page_size - SLOT_SIZE * slot_count
        free = directory_start - HEADER_SIZE - live_bytes
        if not has_dead_slot:
            free -= SLOT_SIZE  # a new insert would need a new slot
        return max(0, free)

    def insert(self, record: bytes) -> int:
        """Insert ``record`` and return its slot number.

        Reuses a tombstoned slot when one exists (keeping its number),
        otherwise appends a new directory entry.
        """
        if not record:
            raise StorageError("cannot insert an empty record")
        slot_count, free_start, live = self._read_header()
        directory_start = self.page_size - SLOT_SIZE * slot_count
        # Find a dead slot to reuse; a reused slot costs no directory growth.
        reuse: Optional[int] = None
        for slot in range(slot_count):
            _, length = self._read_slot(slot)
            if length == 0:
                reuse = slot
                break
        needed = len(record) + (0 if reuse is not None else SLOT_SIZE)
        if directory_start - free_start < needed:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({directory_start - free_start} bytes free)"
            )
        offset = free_start
        self.data[offset : offset + len(record)] = record
        if reuse is not None:
            slot = reuse
        else:
            slot = slot_count
            slot_count += 1
        self._write_header(slot_count, offset + len(record), live + 1)
        self._write_slot(slot, offset, len(record))
        return slot

    def read(self, slot: int) -> bytes:
        offset, length = self._read_slot(slot)
        if length == 0:
            raise StorageError(f"slot {slot} is empty (deleted record)")
        return bytes(self.data[offset : offset + length])

    def is_live(self, slot: int) -> bool:
        if not 0 <= slot < self.slot_count:
            return False
        return self._read_slot(slot)[1] != 0

    def replace(self, slot: int, record: bytes) -> bytes:
        """Overwrite a record in place (same length only).

        Fixed-layout records make same-size in-place updates trivial;
        the bulk UPDATE executor uses this so RIDs never change and
        indexes on unmodified columns stay untouched.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise StorageError(f"slot {slot} is empty (deleted record)")
        if len(record) != length:
            raise StorageError(
                f"in-place replace needs {length} bytes, got {len(record)}"
            )
        old = bytes(self.data[offset : offset + length])
        self.data[offset : offset + length] = record
        return old

    def delete(self, slot: int) -> bytes:
        """Tombstone ``slot`` and return the old payload."""
        record = self.read(slot)
        slot_count, free_start, live = self._read_header()
        self._write_slot(slot, 0, 0)
        self._write_header(slot_count, free_start, live - 1)
        return record

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live record."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if length:
                yield slot, bytes(self.data[offset : offset + length])

    def compact(self) -> None:
        """Reclaim payload space of deleted records.

        Slot numbers (and therefore RIDs) are preserved; only payload
        offsets move.  Used by the bulk-delete reorganization pass.
        """
        entries: List[Tuple[int, bytes]] = list(self.records())
        slot_count = self.slot_count
        cursor = HEADER_SIZE
        # Zero payload area first so stale bytes never linger.
        directory_start = self.page_size - SLOT_SIZE * slot_count
        self.data[HEADER_SIZE:directory_start] = bytes(
            directory_start - HEADER_SIZE
        )
        live = 0
        for slot in range(slot_count):
            self._write_slot(slot, 0, 0)
        for slot, payload in entries:
            self.data[cursor : cursor + len(payload)] = payload
            self._write_slot(slot, cursor, len(payload))
            cursor += len(payload)
            live += 1
        self._write_header(slot_count, cursor, live)

    def is_empty(self) -> bool:
        return self.live_records == 0

"""Free-space tracking for heap files.

A minimal free-space map in the spirit of McAuliffe et al. [14] as cited
by the paper: per-page free-byte estimates kept in memory, consulted on
insert so the heap does not grow while earlier pages have room (e.g.
after a bulk delete has carved holes into the file).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class FreeSpaceMap:
    """Tracks approximate free bytes for the pages of one heap file."""

    def __init__(self) -> None:
        self._free: Dict[int, int] = {}

    def record(self, page_id: int, free_bytes: int) -> None:
        self._free[page_id] = max(0, free_bytes)

    def forget(self, page_id: int) -> None:
        self._free.pop(page_id, None)

    def free_bytes(self, page_id: int) -> int:
        return self._free.get(page_id, 0)

    def find_page_with(self, needed_bytes: int) -> Optional[int]:
        """Return some page with at least ``needed_bytes``, or ``None``.

        First fit in page order keeps inserts clustered towards the
        front of the file.
        """
        for page_id in sorted(self._free):
            if self._free[page_id] >= needed_bytes:
                return page_id
        return None

    def pages(self) -> Iterator[int]:
        return iter(sorted(self._free))

    def __len__(self) -> int:
        return len(self._free)

"""Simulated disk with an explicit service-time model.

The paper's experiments ran on a SUN Ultra 10 with a 7200 rpm Seagate
Medialist Pro disk and Solaris direct I/O.  What separates the traditional
(horizontal) delete from the vertical bulk delete is almost entirely the
*pattern* of page accesses: per-record root-to-leaf traversals cause one
or more random I/Os per deleted record, while the bulk-delete plans scan
leaf levels and heap files sequentially.

This module substitutes the physical disk with an in-memory page store
that charges simulated time per access:

* a *random* access costs ``seek + rotational latency + transfer``,
* a *sequential* access (the next page of the same file as the previous
  access to that file) costs ``transfer`` only,
* a *near-sequential* access (within a small forward window on the same
  file, approximating track buffers / prefetch) costs a short seek plus
  the transfer.

Sequentiality is tracked **per file and per direction** (reads and
writes separately): modern disks and file systems hide short
interleavings between sequential streams behind track buffers, write
caches and request scheduling, and the paper's prototype used chained
I/O for exactly this purpose.  Tracking one global head position
instead would make *every* workload look random — e.g. a buffer pool's
deferred write-backs would destroy the sequentiality of the scan that
dirtied the pages — and erase the effect the paper measures.

The disk also keeps complete counters (random/sequential/near reads and
writes, per-file breakdowns) so tests can assert on access *patterns*,
not just on simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    ChecksumMismatch,
    QuarantinedPage,
    StorageError,
    TransientReadError,
)
from repro.storage.page_formats import page_checksum

DEFAULT_PAGE_SIZE = 4096

#: Forward distance (in pages, within one file) still billed as
#: near-sequential rather than random.  Approximates track-buffer reach.
NEAR_SEQUENTIAL_WINDOW = 8


@dataclass(frozen=True)
class DiskParameters:
    """Service-time model of a late-1990s 7200 rpm disk (in milliseconds).

    Defaults approximate the Seagate Medialist Pro used in the paper:
    ~8.5 ms average seek and 4.15 ms half-rotation at 7200 rpm.  The
    per-page transfer cost is the *effective* page-at-a-time throughput
    through a late-90s UNIX file system (~2 MB/s, i.e. ~2 ms per 4 KiB
    page), not the raw media rate: the paper's own bulk-delete time
    (24.87 min for ~129k pages read + written back) implies exactly this
    effective rate, and calibrating to it reproduces the paper's
    absolute numbers, not just the shapes.
    """

    seek_ms: float = 8.5
    rotational_ms: float = 4.15
    transfer_ms_per_kb: float = 0.5
    near_seek_ms: float = 1.0

    def transfer_ms(self, page_size: int) -> float:
        return self.transfer_ms_per_kb * (page_size / 1024.0)

    def random_ms(self, page_size: int) -> float:
        return self.seek_ms + self.rotational_ms + self.transfer_ms(page_size)

    def sequential_ms(self, page_size: int) -> float:
        return self.transfer_ms(page_size)

    def near_sequential_ms(self, page_size: int) -> float:
        return self.near_seek_ms + self.transfer_ms(page_size)


class SimClock:
    """A simulated clock advanced by disk (and optional CPU) charges."""

    def __init__(self) -> None:
        self._now_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._now_ms

    @property
    def now_seconds(self) -> float:
        return self._now_ms / 1000.0

    @property
    def now_minutes(self) -> float:
        return self._now_ms / 60000.0

    def advance_ms(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_ms += delta_ms

    def rewind_to(self, target_ms: float) -> None:
        """Reposition the clock to an earlier instant.

        Reserved for the lane scheduler (:mod:`repro.parallel`), which
        executes concurrent lanes one after another in host time and
        rewinds between them so each lane's charges land at the right
        simulated offset.  Everything else must only :meth:`advance_ms`
        — the ``code/clock-rewind`` lint rule enforces this.
        """
        if target_ms < 0:
            raise ValueError("cannot rewind the clock below zero")
        if target_ms > self._now_ms:
            raise ValueError(
                "rewind_to cannot move the clock forward; use advance_ms"
            )
        self._now_ms = target_ms

    def reset(self) -> None:
        self._now_ms = 0.0


@dataclass
class DiskStats:
    """Access counters kept by the simulated disk."""

    reads: int = 0
    writes: int = 0
    random_reads: int = 0
    sequential_reads: int = 0
    near_sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    near_sequential_writes: int = 0
    pages_allocated: int = 0
    pages_freed: int = 0
    io_time_ms: float = 0.0

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta_since(self, earlier: "DiskStats") -> "DiskStats":
        return DiskStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "DiskStats") -> "DiskStats":
        """Add ``other``'s counters into this object (in place).

        Snapshot/delta/merge all iterate the *declared* dataclass
        fields, never ``vars()``: a stray attribute poked onto one
        instance must not leak into (or crash) an aggregation.  Lane
        rollups rely on this being a pure field-wise sum — each access
        is classified and costed exactly once at the device
        (:meth:`SimulatedDisk._charge`) and tallied identically into
        the global and the per-lane sinks, so merging lane deltas can
        never double-count a chained-I/O discount.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def merged(cls, parts: Iterable["DiskStats"]) -> "DiskStats":
        """Field-wise sum of several stats deltas (lane rollup)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    @property
    def random_ios(self) -> int:
        return self.random_reads + self.random_writes

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes


class SimulatedDisk:
    """In-memory page store that charges simulated I/O time.

    Pages are grouped into *files* (one per table, index, sort run, log,
    ...).  Allocation within a file is contiguous whenever possible so
    that scans of freshly built structures are billed as sequential.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        parameters: Optional[DiskParameters] = None,
        clock: Optional[SimClock] = None,
        retain_freed: bool = True,
        verify_reads: bool = True,
    ) -> None:
        if page_size < 128:
            raise ValueError("page_size must be at least 128 bytes")
        self.page_size = page_size
        self.parameters = parameters or DiskParameters()
        self.clock = clock or SimClock()
        #: With ``retain_freed`` (the realistic default) a freed page's
        #: bytes stay readable until the id would be reused — crash
        #: recovery may legitimately follow stale pointers into freed
        #: pages, exactly as on a real disk.  ``retain_freed=False``
        #: turns any access to a freed page into an error (strict mode
        #: for storage-layer unit tests).
        self.retain_freed = retain_freed
        self.stats = DiskStats()
        #: Observability hook (:class:`repro.obs.observer.Observer`).
        #: ``None`` (the default) keeps every access on the fast path —
        #: a single attribute test and no metric objects at all.
        self.observer: Optional[object] = None
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`).
        #: Same ``None``-is-fast-path contract as ``observer``.
        self.fault_injector: Optional[object] = None
        #: Per-lane counters, accumulated only while a lane is active
        #: (see :meth:`begin_lane`).  The lane scheduler reads deltas of
        #: these to attribute a parallel region's I/O to its lanes.
        self.lane_stats: Dict[int, DiskStats] = {}
        self._active_lane: Optional[int] = None
        self._contended = False
        #: Verify every :meth:`read_page` against the stored checksum
        #: (the realistic default).  ``verify_reads=False`` restores
        #: the trusting pre-checksum read path; the media property test
        #: pins the two bit-identical when no fault is installed.
        self.verify_reads = verify_reads
        #: Out-of-band per-page CRCs (a disk's per-sector ECC lives
        #: next to the data, not inside it).  Stamped with the checksum
        #: of the *intended* image on every write — so a torn commit
        #: (half new, half old) mismatches on the next read — and on
        #: allocation (zero page).
        self.checksums: Dict[int, int] = {}
        #: Pages whose repair failed; reads and writes raise
        #: :class:`~repro.errors.QuarantinedPage` until
        #: :meth:`restore_page` replaces the media.
        self.quarantined: set = set()
        self._zero_checksum = page_checksum(bytes(page_size))
        self._pages: Dict[int, bytes] = {}
        self._freed_ids: set = set()
        self._next_page_id = 1
        self._file_of_page: Dict[int, int] = {}
        self._next_file_id = 1
        # (file id, is_write) -> last page id accessed in that stream
        self._last_access: Dict[Tuple[int, bool], int] = {}

    # ------------------------------------------------------------------
    # files and allocation
    # ------------------------------------------------------------------
    def create_file(self) -> int:
        """Register a new file and return its id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        return file_id

    def allocate_page(self, file_id: int) -> int:
        """Allocate one zeroed page inside ``file_id`` and return its id."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = bytes(self.page_size)
        self.checksums[page_id] = self._zero_checksum
        self._file_of_page[page_id] = file_id
        self.stats.pages_allocated += 1
        if self._active_lane is not None:
            self.lane_stats[self._active_lane].pages_allocated += 1
        if self.observer is not None:
            self.observer.on_page_alloc(file_id)  # type: ignore[attr-defined]
        return page_id

    def allocate_pages(self, file_id: int, count: int) -> List[int]:
        """Allocate ``count`` contiguous pages inside ``file_id``."""
        return [self.allocate_page(file_id) for _ in range(count)]

    def free_page(self, page_id: int) -> None:
        """Release a page.

        The stale bytes stay on the medium either way (that is what a
        real disk does); the modes differ in what an *access* of the
        freed id means.  Default mode tolerates it — crash recovery may
        legitimately follow stale pointers into freed pages, and a
        double free is ignored.  Strict mode turns any later
        ``read_page``/``write_page`` (and a double free) into a
        :class:`StorageError` via the ``allow_freed`` branch of
        :meth:`_require_page`.
        """
        if page_id in self._freed_ids and self.retain_freed:
            return
        self._require_page(page_id, allow_freed=False)
        self._freed_ids.add(page_id)
        self.stats.pages_freed += 1
        if self._active_lane is not None:
            self.lane_stats[self._active_lane].pages_freed += 1
        if self.observer is not None:
            self.observer.on_page_free(page_id)  # type: ignore[attr-defined]

    def page_exists(self, page_id: int) -> bool:
        return page_id in self._pages and page_id not in self._freed_ids

    def file_of(self, page_id: int) -> int:
        self._require_page(page_id)
        return self._file_of_page[page_id]

    @property
    def num_pages(self) -> int:
        return len(self._pages) - len(self._freed_ids)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        self._require_page(page_id, allow_freed=self.retain_freed)
        self._fail_if_quarantined(page_id)
        # The attempt is charged before it can fail: a read the medium
        # rejects still moved the head and spun the platter, which is
        # what makes retry storms visible in the simulated time.
        self._charge(page_id, is_write=False)
        injector = self.fault_injector
        if injector is not None and injector.on_page_read(  # type: ignore[attr-defined]
            page_id
        ):
            if self.observer is not None:
                self.observer.on_transient_read_error(  # type: ignore[attr-defined]
                    page_id
                )
            raise TransientReadError(
                f"transient read error on page {page_id}", page_id=page_id
            )
        data = self._pages[page_id]
        if self.verify_reads:
            stored = self.checksums.get(page_id)
            if stored is not None and page_checksum(data) != stored:
                if self.observer is not None:
                    self.observer.on_checksum_mismatch(  # type: ignore[attr-defined]
                        page_id
                    )
                raise ChecksumMismatch(
                    f"page {page_id} failed checksum verification",
                    page_id=page_id,
                )
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._require_page(page_id, allow_freed=self.retain_freed)
        self._fail_if_quarantined(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes to a "
                f"{self.page_size}-byte page"
            )
        self._charge(page_id, is_write=True)
        # Stamp the checksum of the *intended* image before the
        # injector decides what actually commits: if only half of the
        # new image lands (a torn write), the durable bytes no longer
        # match the stamp and the next read detects it — no side
        # channel needed.
        self.checksums[page_id] = page_checksum(data)
        injector = self.fault_injector
        if injector is None:
            self._store_page(page_id, data)
        else:
            injector.on_page_write(  # type: ignore[attr-defined]
                page_id,
                self._pages[page_id],
                bytes(data),
                lambda image: self._store_page(page_id, image),
            )

    def durable_image(self, page_id: int) -> bytes:
        """The page's current durable bytes, without charging any I/O.

        For inspection and full-page-image capture only — normal reads
        go through :meth:`read_page`.
        """
        self._require_page(page_id)
        return self._pages[page_id]

    def _store_page(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = bytes(data)

    def read_pages_chained(self, page_ids: Iterable[int]) -> List[bytes]:
        """Read several pages with chained I/O (one request per run).

        Contiguous page ids are billed as one seek plus per-page
        transfers, mirroring the chunked reads the paper's traditional
        algorithm performs with its buffer memory.
        """
        return [self.read_page(pid) for pid in page_ids]

    # ------------------------------------------------------------------
    # media: checksum verification, corruption, quarantine
    # ------------------------------------------------------------------
    def page_ids(self) -> List[int]:
        """All live (never-freed) page ids, sorted.

        Sorted order makes a full sweep — the scrubber's — bill mostly
        sequential accesses, exactly like a real sequential scrub pass.
        """
        return sorted(pid for pid in self._pages if pid not in self._freed_ids)

    def freed_page_ids(self) -> List[int]:
        """Freed-but-retained page ids, sorted.

        With ``retain_freed`` (the default) a freed page's last bytes
        stay readable until something overwrites them — the surface the
        retention auditor must sweep and the erase pass must shred.
        With ``retain_freed=False`` the bytes are gone and this is the
        set of ids whose reads now fail.
        """
        return sorted(self._freed_ids)

    def verify_page(self, page_id: int) -> bool:
        """Whether the durable bytes match the stored checksum.

        Uncharged inspection (like :meth:`durable_image`): restart's
        corruption scan uses it to *find* damage; actually reading the
        page goes through :meth:`read_page` and is billed normally.
        """
        self._require_page(page_id)
        stored = self.checksums.get(page_id)
        return stored is None or page_checksum(self._pages[page_id]) == stored

    def corrupt_page_ids(self) -> List[int]:
        """Live, unquarantined pages whose bytes fail their checksum.

        This is what restart's media scan runs over: every torn write
        and every at-rest corruption shows up here, with no tracking
        side channel — the checksum *is* the detector.
        """
        return [
            pid
            for pid in self.page_ids()
            if pid not in self.quarantined and not self.verify_page(pid)
        ]

    def corrupt_page(self, page_id: int, data: bytes) -> None:
        """Overwrite durable bytes *without* restamping the checksum.

        The fault-injection surface (latent sector corruption, stuck
        bits): the medium decayed underneath the stored CRC, so the
        next verified read fails.  Uncharged — bit rot is not an I/O.
        """
        self._require_page(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"corruption image of {len(data)} bytes for a "
                f"{self.page_size}-byte page"
            )
        self._pages[page_id] = bytes(data)

    def quarantine_page(self, page_id: int) -> None:
        """Refuse further reads/writes of ``page_id`` until restored.

        The media layer quarantines a page when repair failed; any
        later access raises :class:`~repro.errors.QuarantinedPage`
        instead of returning unverified bytes.
        """
        self._require_page(page_id)
        self.quarantined.add(page_id)
        if self.observer is not None:
            self.observer.on_page_quarantined(  # type: ignore[attr-defined]
                page_id
            )

    def restore_page(self, page_id: int, data: bytes) -> None:
        """Replace a page's media with a known-good image (offline).

        Lifts any quarantine and restamps the checksum: this is the
        operator swapping the bad sector for a backup copy, not a
        normal write — it bypasses the fault injector and charges
        nothing.
        """
        self._require_page(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"restore image of {len(data)} bytes for a "
                f"{self.page_size}-byte page"
            )
        self.quarantined.discard(page_id)
        self.checksums[page_id] = page_checksum(data)
        self._pages[page_id] = bytes(data)

    def _fail_if_quarantined(self, page_id: int) -> None:
        if page_id in self.quarantined:
            raise QuarantinedPage(
                f"page {page_id} is quarantined; restore_page() it from "
                "a backup image before accessing it again",
                page_id=page_id,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_page(self, page_id: int, allow_freed: bool = True) -> None:
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} does not exist")
        if page_id in self._freed_ids and not allow_freed:
            raise StorageError(f"page {page_id} has been freed")

    # ------------------------------------------------------------------
    # lanes (multi-disk / contended parallel execution)
    # ------------------------------------------------------------------
    def begin_lane(self, lane_id: int, contended: bool = False) -> None:
        """Attribute subsequent accesses to ``lane_id``.

        With ``contended=True`` the lane shares one physical device
        with the other lanes of its parallel region: interleaved
        requests move the head away between any two accesses of a
        stream, so every access is classified (and billed) as random —
        the sequentiality discounts the paper's bulk delete lives on
        are lost.  Dedicated lanes (the default) model one spindle per
        lane and keep the normal per-stream classification.

        Lanes never nest; the scheduler brackets exactly one task at a
        time between :meth:`begin_lane` and :meth:`end_lane`.
        """
        if self._active_lane is not None:
            raise StorageError(
                f"lane {self._active_lane} is still active; lanes do not nest"
            )
        self._active_lane = lane_id
        self._contended = contended
        self.lane_stats.setdefault(lane_id, DiskStats())

    def end_lane(self) -> None:
        """Stop attributing accesses to the active lane."""
        self._active_lane = None
        self._contended = False

    def _charge(self, page_id: int, is_write: bool) -> None:
        file_id = self._file_of_page[page_id]
        last = self._last_access.get((file_id, is_write))
        page_size = self.page_size
        params = self.parameters
        if self._contended:
            # A shared device interleaves the lanes' request streams:
            # between two accesses of one stream the head has serviced
            # other lanes, so every access pays the full random cost.
            kind = "random"
            cost = params.random_ms(page_size)
        elif last is not None and page_id == last:
            # Re-access of the same page: rotation + transfer, no seek.
            kind = "near_sequential"
            cost = params.near_sequential_ms(page_size)
        elif last is not None and last < page_id <= last + 1:
            kind = "sequential"
            cost = params.sequential_ms(page_size)
        elif last is not None and last < page_id <= last + NEAR_SEQUENTIAL_WINDOW:
            kind = "near_sequential"
            cost = params.near_sequential_ms(page_size)
        else:
            kind = "random"
            cost = params.random_ms(page_size)
        self._last_access[(file_id, is_write)] = page_id
        self.clock.advance_ms(cost)
        # One classification, tallied identically into every sink: the
        # global counters and the active lane's see the same (kind,
        # cost), so rolling lane deltas up can never double-count (or
        # drop) a chained-I/O discount at a lane boundary.
        self._tally(self.stats, kind, is_write, cost)
        if self._active_lane is not None:
            self._tally(
                self.lane_stats[self._active_lane], kind, is_write, cost
            )
        if self.observer is not None:
            self.observer.on_disk_access(  # type: ignore[attr-defined]
                file_id, kind, is_write, cost
            )

    @staticmethod
    def _tally(
        stats: DiskStats, kind: str, is_write: bool, cost: float
    ) -> None:
        stats.io_time_ms += cost
        if is_write:
            stats.writes += 1
            setattr(
                stats,
                f"{kind}_writes",
                getattr(stats, f"{kind}_writes") + 1,
            )
        else:
            stats.reads += 1
            setattr(
                stats,
                f"{kind}_reads",
                getattr(stats, f"{kind}_reads") + 1,
            )

    # ------------------------------------------------------------------
    # CPU charges
    # ------------------------------------------------------------------
    #: Simulated CPU time per record comparison/move, in milliseconds.
    #: Chosen so sorting costs are visible but small next to I/O, as on
    #: the paper's 333 MHz UltraSPARC.
    CPU_RECORD_MS = 0.002

    def charge_cpu_records(self, record_count: int, factor: float = 1.0) -> None:
        """Advance the clock for CPU work over ``record_count`` records."""
        if record_count <= 0:
            return
        cost = self.CPU_RECORD_MS * record_count * factor
        self.clock.advance_ms(cost)
        if self.observer is not None:
            self.observer.on_cpu(cost)  # type: ignore[attr-defined]

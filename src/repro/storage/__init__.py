"""Storage substrate: simulated disk, buffer pool, pages, heap files."""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskParameters, DiskStats, SimClock, SimulatedDisk
from repro.storage.freespace import FreeSpaceMap
from repro.storage.heap import HeapFile
from repro.storage.page_formats import SlottedPage
from repro.storage.rid import RID
from repro.storage.serializer import RecordSerializer

__all__ = [
    "BufferPool",
    "BufferStats",
    "DiskParameters",
    "DiskStats",
    "FreeSpaceMap",
    "HeapFile",
    "RID",
    "RecordSerializer",
    "SimClock",
    "SimulatedDisk",
    "SlottedPage",
]

"""Pluggable storage engines: the seam between the catalog and storage.

The paper's evaluation — and every executor grown from it in this
repository — coupled the catalog directly to one physical layout: a
slotted-page heap plus B-link trees.  The :class:`StorageEngine`
protocol makes that layout one *choice* among several: a table declares
its engine at DDL time (``Database.create_table(schema, engine=...)``)
and every entry point the planner and executors need — create, insert,
scan, point lookup, bulk delete, and the statistics feed cost formulas
read — goes through the seam.

Two engines implement the protocol:

* :class:`HeapBTreeEngine` (``engine="heap"``, the default) is a pure
  adapter over the pre-existing code paths: ``Database.insert``,
  ``Database.scan``, the B-link tree probe, and
  :func:`repro.core.executor.bulk_delete`.  It adds **no** behaviour —
  the property test ``tests/test_engine_bit_identity.py`` holds it to
  bit-identical plans, costs, and durable state against calling those
  functions directly.
* :class:`repro.lsm.engine.LsmEngine` (``engine="lsm"``) stores rows in
  a delete-aware log-structured merge tree (memtable + sorted runs,
  point and range tombstones, leveled compaction) on the *same*
  :class:`~repro.storage.disk.SimulatedDisk` cost model, so
  ``fig_lsm_vs_vertical`` can compare the two delete strategies on
  equal terms.  See ``docs/storage_engines.md``.

The registry is deliberately closed (:data:`ENGINE_NAMES`): an engine
is a storage contract the planner, observer, and static-analysis
contracts all know about, not a runtime plug-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.errors import CatalogError
from repro.storage.rid import RID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import TableInfo
    from repro.catalog.database import Database

#: Engine name of the classic slotted-heap + B-link-tree layout.
HEAP_BTREE = "heap"
#: Engine name of the delete-aware LSM tree (``repro.lsm``).
LSM = "lsm"
#: Every engine the catalog accepts in ``create_table(engine=...)``.
ENGINE_NAMES: Tuple[str, ...] = (HEAP_BTREE, LSM)

Row = Tuple[object, ...]


@dataclass(frozen=True)
class EngineStatistics:
    """Engine-neutral planner feed: sizes only, never I/O.

    Both engines fill the shared fields from in-memory metadata (heap
    page counts and tree entry counts on one side, run metadata on the
    other) so cost estimation stays pure arithmetic — the
    ``effect/planner-estimates-pure`` contract checks this statically.
    ``detail`` carries engine-specific shape (e.g. per-level run counts
    for the LSM tree) for explain output and tests.
    """

    engine: str
    table_name: str
    #: Live logical records (exact for the heap engine; the LSM engine
    #: reports entries net of tombstones, an upper bound until
    #: compaction drops superseded versions).
    logical_records: int
    #: Pages holding row data (heap pages / memtable-equivalent + run
    #: pages).
    data_pages: int
    #: Auxiliary structures a delete must maintain (indexes / sorted
    #: runs).
    structures: int
    detail: Dict[str, float] = field(default_factory=dict)


class StorageEngine(Protocol):
    """The contract every storage engine implements.

    One instance binds one ``(db, table)`` pair.  Methods mirror the
    smallest surface the rest of the system needs; richer operations
    (range tombstones, compaction control) live on the concrete engine.
    """

    #: Engine name, one of :data:`ENGINE_NAMES`.
    name: str

    def table(self) -> "TableInfo":
        """The bound catalog entry."""
        ...

    def insert(self, values: Sequence[object]) -> Optional[RID]:
        """Insert one row, maintaining every auxiliary structure.

        Returns the row's RID for RID-addressed engines, ``None`` for
        key-addressed ones (the LSM tree has no stable row identity).
        """
        ...

    def scan(self) -> Iterator[Tuple[object, Row]]:
        """Yield ``(locator, values)`` for every live row.

        The locator is engine-specific: an :class:`RID` for the heap
        engine, the integer key for the LSM engine.
        """
        ...

    def point_lookup(self, column: str, key: int) -> Optional[Row]:
        """The row whose ``column`` equals ``key``, or ``None``.

        ``column`` must be servable by the engine (an indexed column on
        the heap engine, the key column on the LSM engine).
        """
        ...

    def bulk_delete(self, column: str, keys: Sequence[int]) -> Any:
        """Delete every row whose ``column`` is in ``keys``.

        Returns the engine's result object
        (:class:`repro.core.executor.BulkDeleteResult` or
        :class:`repro.lsm.engine.LsmDeleteResult`); both expose
        ``records_deleted`` and ``elapsed_ms``.
        """
        ...

    def statistics(self) -> EngineStatistics:
        """I/O-free size snapshot for the planner."""
        ...


class HeapBTreeEngine:
    """The classic layout behind the seam — a delegation-only adapter.

    Every method forwards to the exact pre-seam code path with the same
    arguments, so driving a table through the engine interface is
    bit-identical (plans, simulated costs, durable bytes) to calling
    ``Database``/``bulk_delete`` directly.  Anything smarter belongs in
    those layers, not here: the adapter's only job is to give the heap
    path the same shape the LSM engine has.
    """

    name = HEAP_BTREE

    def __init__(self, db: "Database", table_name: str) -> None:
        self.db = db
        self.table_name = table_name

    def table(self) -> "TableInfo":
        return self.db.table(self.table_name)

    def insert(self, values: Sequence[object]) -> Optional[RID]:
        return self.db.insert(self.table_name, values)

    def scan(self) -> Iterator[Tuple[object, Row]]:
        return self.db.scan(self.table_name)

    def point_lookup(self, column: str, key: int) -> Optional[Row]:
        """Probe an index on ``column``, then fetch the row by RID."""
        table = self.table()
        candidates = table.indexes_on(column)
        if not candidates:
            raise CatalogError(
                f"point lookup needs an index on {self.table_name}.{column}"
            )
        packed = candidates[0].tree.search_one(key)  # type: ignore[union-attr]
        if packed is None:
            return None
        return self.db.read(self.table_name, RID.unpack(packed))

    def bulk_delete(self, column: str, keys: Sequence[int], **kwargs: Any) -> Any:
        from repro.core.executor import bulk_delete

        return bulk_delete(self.db, self.table_name, column, keys, **kwargs)

    def statistics(self) -> EngineStatistics:
        from repro.catalog.statistics import collect_table_statistics

        stats = collect_table_statistics(self.table())
        return EngineStatistics(
            engine=self.name,
            table_name=self.table_name,
            logical_records=stats.record_count,
            data_pages=stats.heap_pages,
            structures=len(stats.indexes),
            detail={
                "leaf_pages": float(stats.total_leaf_pages()),
                "btree_indexes": float(len(self.table().btree_indexes())),
            },
        )


def engine_name_of(table: "TableInfo") -> str:
    """The engine a catalog entry declared (``heap`` when unset)."""
    return getattr(table, "engine", HEAP_BTREE)


def engine_for(db: "Database", table_name: str) -> StorageEngine:
    """The :class:`StorageEngine` bound to one table.

    The LSM import is lazy so ``repro.storage`` never depends on
    ``repro.lsm`` at import time (the layering runs the other way).
    """
    table = db.table(table_name)
    name = engine_name_of(table)
    if name == LSM:
        from repro.lsm.engine import LsmEngine

        return LsmEngine(db, table_name)
    if name == HEAP_BTREE:
        return HeapBTreeEngine(db, table_name)
    raise CatalogError(
        f"table {table_name} declares unknown storage engine {name!r}"
    )

"""The traditional (horizontal) delete executors — the paper's baselines.

``DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)`` is traditionally
executed record-at-a-time: probe the index on ``A`` for each key, and
for every matching record delete it from the base table **and from each
index individually**, traversing every B-tree from the root to the
relevant leaf.  The two variants measured in the paper differ only in
whether the delete list is sorted first:

* ``sorted/trad``  — table D sorted by ``A``: the driving index is
  probed in key order, so its pages are touched in physical order and
  the buffer pool stops thrashing on it,
* ``not sorted/trad`` — keys in arrival order; "roughly corresponds to
  the way the database product studied in the introduction carries out
  bulk deletes".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.catalog.database import Database
from repro.errors import PlanningError
from repro.obs.trace import maybe_span
from repro.storage.disk import DiskStats
from repro.storage.rid import RID


@dataclass
class TraditionalResult:
    """Outcome of a horizontal delete run."""

    table_name: str
    records_deleted: int
    elapsed_ms: float
    io: Optional[DiskStats] = None
    presorted: bool = True
    keys_not_found: int = 0
    #: Root span when an observer was attached (``None`` otherwise).
    trace: Optional[object] = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def elapsed_minutes(self) -> float:
        return self.elapsed_ms / 60000.0


def traditional_delete(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    presort: bool = True,
    flush_at_end: bool = True,
) -> TraditionalResult:
    """Delete ``keys`` record-at-a-time through the index on ``column``.

    Requires an index on the delete column (as in all of the paper's
    experiments — "I_A is vital to carry out the bulk delete operation
    using any approach").
    """
    table = db.table(table_name)
    candidates = table.indexes_on(column)
    if not candidates:
        raise PlanningError(
            f"traditional delete needs an index on {table_name}.{column}"
        )
    driving = candidates[0]
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    obs = db.obs
    deleted = 0
    not_found = 0
    with maybe_span(
        obs,
        f"traditional-delete {table_name}",
        kind="delete",
        target=table_name,
        n_keys=len(keys),
        presorted=presort,
    ) as root:
        work_keys: List[int] = list(keys)
        if presort:
            with maybe_span(obs, "sort(delete keys)", kind="sort",
                            target="D"):
                work_keys.sort()
                if len(work_keys) > 1:
                    db.disk.charge_cpu_records(
                        len(work_keys), factor=0.5 * math.log2(len(work_keys))
                    )
        with maybe_span(
            obs,
            f"nested-loops probe+delete via {driving.name}",
            kind="bd",
            target=driving.name,
        ) as span:
            for key in work_keys:
                packed_rids = driving.tree.search(key)
                if not packed_rids:
                    not_found += 1
                    continue
                for packed in packed_rids:
                    # Horizontal processing: the record leaves the heap
                    # and every index before the next record is
                    # considered.
                    db.delete_record(table_name, RID.unpack(packed))
                    deleted += 1
            span.set(records_deleted=deleted, keys_not_found=not_found)
        if flush_at_end:
            with maybe_span(obs, "flush", kind="flush"):
                db.flush()
        root.set(records_deleted=deleted)
    return TraditionalResult(
        table_name=table_name,
        records_deleted=deleted,
        elapsed_ms=db.clock.now_ms - start_ms,
        io=db.disk.stats.delta_since(io_before),
        presorted=presort,
        keys_not_found=not_found,
        trace=getattr(root, "span", None),
    )

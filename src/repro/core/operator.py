"""Logical bulk-delete operator DAGs, rendered like the paper's figures.

The paper draws its plans (Figures 3-5) as operator graphs: ``bd``
operators over tables and indexes, fed by sorts, projections, hash
builds and range partitions, with split output streams.  This module
builds the same graph from a :class:`BulkDeletePlan` so EXPLAIN output
(and the docs) can show the full data flow, not just the step list.

The rendering is a top-down tree with shared inputs annotated — a
faithful, text-mode version of the figures::

    bd[sort-merge] I_A   <- sort_A(D)
      |- RID list -> sort_RID -> bd[sort-merge] R
           |- pi_B -> sort_B -> bd[sort-merge] I_B
           '- pi_C -> sort_C -> bd[sort-merge] I_C
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.core.plans import (
    TABLE_TARGET,
    BdMethod,
    BdPredicate,
    BulkDeletePlan,
    StepPlan,
)
from repro.errors import PlanningError


@dataclass
class OpNode:
    """One operator in the logical DAG."""

    label: str
    children: List["OpNode"] = field(default_factory=list)

    def add(self, child: "OpNode") -> "OpNode":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["OpNode"]:
        """Pre-order traversal of the DAG (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: str = "") -> List[str]:
        lines = [f"{indent}{self.label}"]
        for i, child in enumerate(self.children):
            last = i == len(self.children) - 1
            branch = "'- " if last else "|- "
            extension = "   " if last else "|  "
            sub = child.render()
            lines.append(f"{indent}{branch}{sub[0].lstrip()}")
            for line in sub[1:]:
                lines.append(f"{indent}{extension}{line}")
        return lines


def _feed_label(step: StepPlan, plan: BulkDeletePlan) -> str:
    """How the delete list reaches this step's bd operator."""
    if step.method is BdMethod.SORT_MERGE:
        if step.is_table:
            return ("RID list (already in physical order)"
                    if not plan.sort_rid_list else "sort_RID(RID list)")
        if step.target == plan.driving_index:
            return f"sort_{plan.column}(D)"
        return f"pi_{step.target} -> sort(key,RID)"
    if step.method is BdMethod.HASH:
        return "hash(RID list)"
    if step.method is BdMethod.PARTITIONED_HASH:
        return "range-partition(key) -> hash(RID) per partition"
    return "record-at-a-time probes"


def build_dag(plan: BulkDeletePlan) -> OpNode:
    """The logical operator graph of one vertical plan."""
    root = OpNode(
        f"DELETE FROM {plan.table_name} WHERE {plan.column} IN (D)"
    )
    source: OpNode
    if plan.driving_index:
        driving_step = next(
            (s for s in plan.steps if s.target == plan.driving_index), None
        )
        if driving_step is None:
            raise PlanningError(
                f"driving index {plan.driving_index} has no step in the "
                "plan; nothing would produce the RID list"
            )
        source = root.add(
            OpNode(
                f"bd[{driving_step.method.value}] {plan.driving_index}"
                f"   <- {_feed_label(driving_step, plan)}"
            )
        )
    else:
        source = root.add(
            OpNode(f"scan({plan.table_name})  -- no index on "
                   f"{plan.column}; emits the RID list")
        )
    rid_stream = source.add(
        OpNode(
            "RID list"
            + ("" if not plan.sort_rid_list else " -> sort_RID")
        )
    )
    table_node: Optional[OpNode] = None
    for step in plan.steps:
        if step.target == plan.driving_index:
            continue
        label = f"bd[{step.method.value}/{step.predicate.value}] " + (
            plan.table_name if step.is_table else step.target
        )
        node = OpNode(f"{label}   <- {_feed_label(step, plan)}")
        if step.is_table:
            table_node = rid_stream.add(node)
        elif table_node is None:
            # Unique indexes processed before the table: fed by RIDs.
            rid_stream.add(node)
        else:
            # Split output stream of the table's bd (Figure 3: "the
            # result ... is a common subexpression").
            table_node.add(node)
    return root


def render_plan_dag(plan: BulkDeletePlan) -> str:
    """Figure-style text rendering of the plan's operator graph."""
    return "\n".join(build_dag(plan).render())

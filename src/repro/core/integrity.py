"""Referential integrity for bulk deletes (paper §2.1/§2.2).

"Furthermore, referential integrity constraints from other tables must
be checked. ... integrity constraints can be processed more efficiently
using a vertical approach ... We propose to check integrity constraints
in such a vertical way as early as possible and before deleting records
from the table and the indices so that no work needs to be undone if an
integrity constraint fails."

``ConstraintRegistry`` records FOREIGN KEY constraints; a
:func:`bulk_delete_with_integrity` on a parent table then:

1. finds, *set-oriented and read-only*, every child row referencing a
   to-be-deleted key (one sequential probe of the child's index when it
   has one, one scan otherwise) — **before anything is modified**,
2. for ``RESTRICT`` constraints: aborts with
   :class:`IntegrityViolationError` if any reference exists (nothing to
   undo),
3. for ``CASCADE`` constraints: bulk-deletes the referencing child rows
   first (recursively — children of children cascade too), then the
   parent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.database import Database
from repro.core.bulk_ops import collect_index_matches
from repro.core.executor import (
    BulkDeleteOptions,
    BulkDeleteResult,
    bulk_delete,
)
from repro.errors import CatalogError, IntegrityViolationError, PlanningError


class OnDelete(enum.Enum):
    """What happens to referencing child rows when a parent row dies."""

    RESTRICT = "restrict"
    CASCADE = "cascade"


@dataclass(frozen=True)
class ForeignKey:
    """``child.child_column`` REFERENCES ``parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str
    on_delete: OnDelete = OnDelete.RESTRICT

    def describe(self) -> str:
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column} "
            f"ON DELETE {self.on_delete.value.upper()}"
        )


class ConstraintRegistry:
    """All declared foreign keys of one database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._foreign_keys: List[ForeignKey] = []

    def add_foreign_key(
        self,
        child_table: str,
        child_column: str,
        parent_table: str,
        parent_column: str,
        on_delete: OnDelete = OnDelete.RESTRICT,
    ) -> ForeignKey:
        """Declare a constraint (tables and columns must exist)."""
        child = self.db.table(child_table)
        parent = self.db.table(parent_table)
        if not child.schema.has_column(child_column):
            raise CatalogError(
                f"{child_table} has no column {child_column}"
            )
        if not parent.schema.has_column(parent_column):
            raise CatalogError(
                f"{parent_table} has no column {parent_column}"
            )
        fk = ForeignKey(
            child_table, child_column, parent_table, parent_column,
            on_delete,
        )
        self._foreign_keys.append(fk)
        return fk

    def referencing(self, parent_table: str, parent_column: str) -> List[ForeignKey]:
        return [
            fk
            for fk in self._foreign_keys
            if fk.parent_table == parent_table
            and fk.parent_column == parent_column
        ]

    def referencing_table(self, parent_table: str) -> List[ForeignKey]:
        """Every constraint whose parent is ``parent_table`` (any column)."""
        return [
            fk for fk in self._foreign_keys
            if fk.parent_table == parent_table
        ]

    def all_constraints(self) -> List[ForeignKey]:
        return list(self._foreign_keys)


@dataclass
class IntegrityReport:
    """What the constraint phase of a guarded bulk delete did."""

    checked: List[str] = field(default_factory=list)
    cascaded: List[BulkDeleteResult] = field(default_factory=list)

    @property
    def cascade_deleted(self) -> int:
        return sum(r.records_deleted for r in self.cascaded)


def _referenced_values(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    needed_columns: Set[str],
) -> Dict[str, List[int]]:
    """Values of ``needed_columns`` among the rows about to be deleted.

    For the delete column itself the delete list *is* the value set;
    other referenced columns require reading the victim rows (one
    sequential scan, still before any modification).
    """
    out: Dict[str, List[int]] = {column: sorted(set(keys))}
    others = needed_columns - {column}
    if not others:
        return out
    table = db.table(table_name)
    wanted = set(keys)
    column_idx = table.schema.column_index(column)
    collected: Dict[str, Set[int]] = {c: set() for c in others}
    for _, records in table.heap.scan_pages():
        db.disk.charge_cpu_records(len(records))
        for _, payload in records:
            values = table.serializer.unpack(payload)
            if values[column_idx] in wanted:
                for other in others:
                    collected[other].add(
                        values[table.schema.column_index(other)]  # type: ignore[arg-type]
                    )
    for other, found in collected.items():
        out[other] = sorted(found)
    return out


def find_referencing_keys(
    db: Database, fk: ForeignKey, parent_keys: Sequence[int]
) -> List[int]:
    """Child-side keys (values of ``fk.child_column``) that reference
    any of ``parent_keys`` — found set-oriented and read-only."""
    child = db.table(fk.child_table)
    wanted = sorted(set(parent_keys))
    indexes = child.indexes_on(fk.child_column)
    if indexes:
        probe = collect_index_matches(indexes[0].tree, wanted, db.disk)
        return sorted({key for key, _ in probe.deleted})
    column_idx = child.schema.column_index(fk.child_column)
    wanted_set = set(wanted)
    found: Set[int] = set()
    for _, records in child.heap.scan_pages():
        db.disk.charge_cpu_records(len(records))
        for _, payload in records:
            value = child.serializer.unpack(payload)[column_idx]
            if value in wanted_set:
                found.add(value)  # type: ignore[arg-type]
    return sorted(found)


def bulk_delete_with_integrity(
    db: Database,
    constraints: ConstraintRegistry,
    table_name: str,
    column: str,
    keys: Sequence[int],
    options: Optional[BulkDeleteOptions] = None,
    _visited: Optional[Set[str]] = None,
) -> Tuple[BulkDeleteResult, IntegrityReport]:
    """Bulk delete with FK enforcement, constraints checked first.

    Raises :class:`IntegrityViolationError` before any modification when
    a RESTRICT constraint is referenced; CASCADE constraints delete the
    child rows first (recursively).  Cycles among CASCADE constraints
    are rejected.
    """
    _visited = _visited if _visited is not None else set()
    if table_name in _visited:
        raise PlanningError(
            f"cascade cycle involving table {table_name}"
        )
    report = IntegrityReport()
    # Phase 1: all checks before any modification (paper §2.2).
    # A constraint may reference a column other than the delete column;
    # the victims' values of every referenced column are resolved with
    # one read-only scan, shared by all such constraints.
    fks = constraints.referencing_table(table_name)
    referenced_values = _referenced_values(
        db, table_name, column, keys,
        {fk.parent_column for fk in fks},
    )
    cascade_work: List[Tuple[ForeignKey, List[int]]] = []
    for fk in fks:
        referencing = find_referencing_keys(
            db, fk, referenced_values[fk.parent_column]
        )
        report.checked.append(fk.describe())
        if not referencing:
            continue
        if fk.on_delete is OnDelete.RESTRICT:
            raise IntegrityViolationError(
                f"{len(referencing)} value(s) of {fk.child_table}."
                f"{fk.child_column} still reference keys being deleted "
                f"({fk.describe()})"
            )
        cascade_work.append((fk, referencing))
    # Phase 2: children first (no dangling references at any point).
    for fk, referencing in cascade_work:
        child_result, child_report = bulk_delete_with_integrity(
            db,
            constraints,
            fk.child_table,
            fk.child_column,
            referencing,
            options=options,
            _visited=_visited | {table_name},
        )
        report.cascaded.append(child_result)
        report.cascaded.extend(child_report.cascaded)
        report.checked.extend(child_report.checked)
    # Phase 3: the parent itself.
    result = bulk_delete(db, table_name, column, keys, options=options)
    return result, report

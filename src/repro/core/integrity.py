"""Referential integrity for bulk deletes (paper §2.1/§2.2).

"Furthermore, referential integrity constraints from other tables must
be checked. ... integrity constraints can be processed more efficiently
using a vertical approach ... We propose to check integrity constraints
in such a vertical way as early as possible and before deleting records
from the table and the indices so that no work needs to be undone if an
integrity constraint fails."

``ConstraintRegistry`` records FOREIGN KEY constraints; a
:func:`bulk_delete_with_integrity` on a parent table then:

1. finds, *set-oriented and read-only*, every child row referencing a
   to-be-deleted key (one sequential probe of the child's index when it
   has one, one scan otherwise) — **before anything is modified**,
2. for ``RESTRICT`` constraints: aborts with
   :class:`IntegrityViolationError` if any reference exists (nothing to
   undo),
3. for ``CASCADE`` constraints: bulk-deletes the referencing child rows
   first (recursively — children of children cascade too), then the
   parent,
4. for ``SET NULL`` constraints: null-outs the referencing child keys
   (to :data:`SET_NULL_VALUE` — the fixed-layout INT columns have no
   NULL, so ``0`` is the reserved orphan marker) before the parent
   dies, via :class:`~repro.txn.coordinator.UpdateRouter` when one is
   supplied so mid-delete secondary-index state stays consistent, and
   via the set-oriented bulk UPDATE executor otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.catalog.database import Database
from repro.core.bulk_ops import collect_index_matches
from repro.core.executor import (
    BulkDeleteOptions,
    BulkDeleteResult,
    bulk_delete,
)
from repro.errors import CatalogError, IntegrityViolationError, PlanningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.bulk_update import BulkUpdateResult
    from repro.lsm.engine import LsmDeleteResult
    from repro.txn.coordinator import UpdateRouter
    from repro.txn.transactions import Transaction

#: The value a SET NULL constraint writes into orphaned child keys.
#: The engine's fixed-layout INT columns have no NULL representation,
#: so ``0`` is reserved as the orphan marker; real keys must be
#: non-zero for SET NULL semantics to be unambiguous.
SET_NULL_VALUE = 0


class OnDelete(enum.Enum):
    """What happens to referencing child rows when a parent row dies."""

    RESTRICT = "restrict"
    CASCADE = "cascade"
    SET_NULL = "set-null"


@dataclass(frozen=True)
class ForeignKey:
    """``child.child_column`` REFERENCES ``parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str
    on_delete: OnDelete = OnDelete.RESTRICT

    def describe(self) -> str:
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column} "
            f"ON DELETE {self.on_delete.value.upper()}"
        )


class ConstraintRegistry:
    """All declared foreign keys of one database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._foreign_keys: List[ForeignKey] = []

    def add_foreign_key(
        self,
        child_table: str,
        child_column: str,
        parent_table: str,
        parent_column: str,
        on_delete: OnDelete = OnDelete.RESTRICT,
    ) -> ForeignKey:
        """Declare a constraint (tables and columns must exist)."""
        child = self.db.table(child_table)
        parent = self.db.table(parent_table)
        if not child.schema.has_column(child_column):
            raise CatalogError(
                f"{child_table} has no column {child_column}"
            )
        if not parent.schema.has_column(parent_column):
            raise CatalogError(
                f"{parent_table} has no column {parent_column}"
            )
        fk = ForeignKey(
            child_table, child_column, parent_table, parent_column,
            on_delete,
        )
        self._foreign_keys.append(fk)
        return fk

    def referencing(self, parent_table: str, parent_column: str) -> List[ForeignKey]:
        return [
            fk
            for fk in self._foreign_keys
            if fk.parent_table == parent_table
            and fk.parent_column == parent_column
        ]

    def referencing_table(self, parent_table: str) -> List[ForeignKey]:
        """Every constraint whose parent is ``parent_table`` (any column)."""
        return [
            fk for fk in self._foreign_keys
            if fk.parent_table == parent_table
        ]

    def all_constraints(self) -> List[ForeignKey]:
        return list(self._foreign_keys)


@dataclass
class IntegrityReport:
    """What the constraint phase of a guarded bulk delete did."""

    checked: List[str] = field(default_factory=list)
    cascaded: List[Union[BulkDeleteResult, "LsmDeleteResult"]] = field(
        default_factory=list
    )
    #: One ``(constraint description, rows nulled)`` per SET NULL
    #: constraint that had referencing rows.
    nulled: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def cascade_deleted(self) -> int:
        return sum(r.records_deleted for r in self.cascaded)

    @property
    def records_nulled(self) -> int:
        return sum(count for _, count in self.nulled)


def _referenced_values(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    needed_columns: Set[str],
) -> Dict[str, List[int]]:
    """Values of ``needed_columns`` among the rows about to be deleted.

    For the delete column itself the delete list *is* the value set;
    other referenced columns require reading the victim rows (one
    sequential scan, still before any modification).
    """
    out: Dict[str, List[int]] = {column: sorted(set(keys))}
    others = needed_columns - {column}
    if not others:
        return out
    table = db.table(table_name)
    wanted = set(keys)
    column_idx = table.schema.column_index(column)
    collected: Dict[str, Set[int]] = {c: set() for c in others}

    def _collect(values: Sequence[object]) -> None:
        if values[column_idx] in wanted:
            for other in others:
                collected[other].add(
                    values[table.schema.column_index(other)]  # type: ignore[arg-type]
                )

    if table.lsm is not None:
        for _, payload in table.lsm.scan():
            db.disk.charge_cpu_records(1)
            _collect(table.serializer.unpack(payload))
    else:
        for _, records in table.heap.scan_pages():
            db.disk.charge_cpu_records(len(records))
            for _, payload in records:
                _collect(table.serializer.unpack(payload))
    for other, found in collected.items():
        out[other] = sorted(found)
    return out


def find_referencing_keys(
    db: Database, fk: ForeignKey, parent_keys: Sequence[int]
) -> List[int]:
    """Child-side keys (values of ``fk.child_column``) that reference
    any of ``parent_keys`` — found set-oriented and read-only.

    Engine-dispatched: an LSM child probes its own key column point
    lookups (or merge-scans for a non-key column) instead of the heap,
    which is empty for LSM tables.
    """
    child = db.table(fk.child_table)
    wanted = sorted(set(parent_keys))
    if child.lsm is not None:
        if fk.child_column == child.lsm_key_column:
            db.disk.charge_cpu_records(len(wanted))
            return [key for key in wanted if child.lsm.get(key) is not None]
        wanted_lsm = set(wanted)
        column_idx = child.schema.column_index(fk.child_column)
        found_lsm: Set[int] = set()
        for _, payload in child.lsm.scan():
            db.disk.charge_cpu_records(1)
            value = child.serializer.unpack(payload)[column_idx]
            if value in wanted_lsm:
                found_lsm.add(value)  # type: ignore[arg-type]
        return sorted(found_lsm)
    indexes = child.indexes_on(fk.child_column)
    if indexes:
        probe = collect_index_matches(indexes[0].tree, wanted, db.disk)
        return sorted({key for key, _ in probe.deleted})
    column_idx = child.schema.column_index(fk.child_column)
    wanted_set = set(wanted)
    found: Set[int] = set()
    for _, records in child.heap.scan_pages():
        db.disk.charge_cpu_records(len(records))
        for _, payload in records:
            value = child.serializer.unpack(payload)[column_idx]
            if value in wanted_set:
                found.add(value)  # type: ignore[arg-type]
    return sorted(found)


def set_null_referencing_rows(
    db: Database,
    fk: ForeignKey,
    keys: Sequence[int],
    router: Optional["UpdateRouter"] = None,
    txn: Optional["Transaction"] = None,
) -> int:
    """Null-out ``fk.child_column`` in every child row whose value is in
    ``keys``; returns the number of rows touched.

    With a ``router`` (and its transaction) each victim row is replaced
    through :class:`~repro.txn.coordinator.UpdateRouter` — delete plus
    re-insert of the nulled row — so off-line secondary indexes capture
    the change in their side-files and mid-delete index state stays
    consistent.  Without one, the set-oriented bulk UPDATE executor
    rewrites the heap in one pass and merges every affected index.
    """
    from repro.core.bulk_update import bulk_update

    child = db.table(fk.child_table)
    if child.lsm is not None:
        raise PlanningError(
            f"SET NULL against LSM table {fk.child_table} is "
            "unsupported: LSM rows are keyed by "
            f"{child.lsm_key_column!r} and nulling the key would "
            "collide every orphan on one key"
        )
    wanted = set(keys) - {SET_NULL_VALUE}
    if not wanted:
        return 0
    if router is not None:
        if txn is None:
            raise PlanningError(
                "SET NULL through an UpdateRouter needs the caller's "
                "transaction"
            )
        column_idx = child.schema.column_index(fk.child_column)
        victims = [
            (rid, values)
            for rid, values in db.scan(fk.child_table)
            if values[column_idx] in wanted
        ]
        for rid, values in victims:
            nulled = list(values)
            nulled[column_idx] = SET_NULL_VALUE
            router.delete(txn, fk.child_table, rid)
            router.insert(txn, fk.child_table, nulled)
        return len(victims)
    result = bulk_update(
        db,
        fk.child_table,
        fk.child_column,
        lambda values: SET_NULL_VALUE,
        where_column=fk.child_column,
        where_keys=sorted(wanted),
    )
    return result.records_updated


def cascade_bulk_delete(
    db: Database,
    constraints: ConstraintRegistry,
    table_name: str,
    column: str,
    keys: Sequence[int],
    options: Optional[BulkDeleteOptions] = None,
    router: Optional["UpdateRouter"] = None,
    txn: Optional["Transaction"] = None,
    _visited: Optional[Set[str]] = None,
) -> Tuple[Union[BulkDeleteResult, "LsmDeleteResult"], IntegrityReport]:
    """Bulk delete with full FK enforcement, constraints checked first.

    Raises :class:`IntegrityViolationError` before any modification when
    a RESTRICT constraint is referenced; CASCADE constraints delete the
    child rows first (recursively); SET NULL constraints null-out the
    referencing child keys (see :func:`set_null_referencing_rows` — a
    ``router``/``txn`` pair routes the null-outs so off-line index
    state stays consistent).  Cycles among CASCADE constraints are
    rejected.  The parent delete is engine-dispatched: heap tables run
    the vertical executor, LSM tables compile tombstones.
    """
    _visited = _visited if _visited is not None else set()
    if table_name in _visited:
        raise PlanningError(
            f"cascade cycle involving table {table_name}"
        )
    report = IntegrityReport()
    # Phase 1: all checks before any modification (paper §2.2).
    # A constraint may reference a column other than the delete column;
    # the victims' values of every referenced column are resolved with
    # one read-only scan, shared by all such constraints.
    fks = constraints.referencing_table(table_name)
    referenced_values = _referenced_values(
        db, table_name, column, keys,
        {fk.parent_column for fk in fks},
    )
    cascade_work: List[Tuple[ForeignKey, List[int]]] = []
    null_work: List[Tuple[ForeignKey, List[int]]] = []
    for fk in fks:
        referencing = find_referencing_keys(
            db, fk, referenced_values[fk.parent_column]
        )
        report.checked.append(fk.describe())
        if not referencing:
            continue
        if fk.on_delete is OnDelete.RESTRICT:
            raise IntegrityViolationError(
                f"{len(referencing)} value(s) of {fk.child_table}."
                f"{fk.child_column} still reference keys being deleted "
                f"({fk.describe()})"
            )
        if fk.on_delete is OnDelete.SET_NULL:
            null_work.append((fk, referencing))
        else:
            cascade_work.append((fk, referencing))
    # Phase 2: children first (no dangling references at any point).
    for fk, referencing in cascade_work:
        child_result, child_report = cascade_bulk_delete(
            db,
            constraints,
            fk.child_table,
            fk.child_column,
            referencing,
            options=options,
            router=router,
            txn=txn,
            _visited=_visited | {table_name},
        )
        report.cascaded.append(child_result)
        report.cascaded.extend(child_report.cascaded)
        report.checked.extend(child_report.checked)
        report.nulled.extend(child_report.nulled)
    for fk, referencing in null_work:
        rows = set_null_referencing_rows(
            db, fk, referencing, router=router, txn=txn
        )
        report.nulled.append((fk.describe(), rows))
    # Phase 3: the parent itself, on its own storage engine.
    table = db.table(table_name)
    if table.lsm is not None:
        from repro.lsm.engine import lsm_bulk_delete

        return lsm_bulk_delete(db, table_name, column, keys), report
    result = bulk_delete(db, table_name, column, keys, options=options)
    return result, report


def bulk_delete_with_integrity(
    db: Database,
    constraints: ConstraintRegistry,
    table_name: str,
    column: str,
    keys: Sequence[int],
    options: Optional[BulkDeleteOptions] = None,
    _visited: Optional[Set[str]] = None,
) -> Tuple[BulkDeleteResult, IntegrityReport]:
    """Heap-table compatibility wrapper around :func:`cascade_bulk_delete`.

    Kept for callers that predate SET NULL and the LSM dispatch; the
    result is always a heap :class:`BulkDeleteResult` because the
    historical surface only ever targeted heap tables.
    """
    result, report = cascade_bulk_delete(
        db, table_name=table_name, constraints=constraints,
        column=column, keys=keys, options=options, _visited=_visited,
    )
    assert isinstance(result, BulkDeleteResult)
    return result, report

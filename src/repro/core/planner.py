"""Cost-based planning of bulk DELETE statements.

The paper notes a dynamic-programming optimizer "can easily be
extended" with the ``bd`` operator's choices.  The plan space for one
``DELETE FROM R WHERE R.A IN (...)`` is small enough to enumerate
directly:

* horizontal (nested-loops ``bd`` per record) vs. vertical,
* per index: sort/merge vs. hash vs. partitioned hash,
* unique indexes before the base table (RID predicate) so their
  constraint can come back on-line early,
* skip the RID sort when the driving index is clustered (the paper's
  "interesting order" analogy).

The cost formulas charge the same quantities the simulated disk does,
so the planner's crossover between the horizontal and vertical plans
matches what the executors actually exhibit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union, overload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lsm.planning import LsmDeletePlan
    from repro.shard.planning import ShardedDeletePlan

from repro.catalog.catalog import IndexInfo, TableInfo
from repro.catalog.database import Database
from repro.catalog.statistics import collect_table_statistics
from repro.core.plans import (
    TABLE_TARGET,
    BdMethod,
    BdPredicate,
    BulkDeletePlan,
    StepPlan,
)
from repro.errors import PlanningError
from repro.parallel import DEDICATED, SHARED
from repro.query.hashtable import BYTES_PER_SET_ENTRY


@dataclass
class CostBreakdown:
    """Estimated cost of one strategy, in simulated milliseconds."""

    strategy: str
    io_ms: float
    detail: str = ""


def estimate_horizontal_ms(
    db: Database, table: TableInfo, n_deletes: int, presorted: bool = True
) -> CostBreakdown:
    """Cost of the traditional record-at-a-time execution.

    Every deleted record pays one leaf access per index plus one heap
    page access.  With a sorted delete list and enough buffer, upper
    index levels are cached and the driving index's leaves are touched
    in order; unsorted lists turn almost every access into a random I/O.
    """
    params = db.disk.parameters
    random_ms = params.random_ms(db.page_size)
    seq_ms = params.sequential_ms(db.page_size)
    index_count = max(1, len(table.indexes))
    if presorted:
        # Driving-index leaves in order (sequential-ish); heap and the
        # other indexes' leaves remain random.
        read_ms = random_ms * (1 + (index_count - 1)) + seq_ms
    else:
        # Re-fetches everywhere once the pool thrashes.
        read_ms = random_ms * (1 + index_count)
    # Every touched page is dirtied and eventually written back; the
    # write-backs land scattered (eviction order), so they cost like
    # the reads did.
    per_record = 2 * read_ms
    # Write-back streams restart once per structure at flush time: one
    # random positioning each for the heap and every index file.
    flush_ms = (index_count + 1) * random_ms
    io_ms = n_deletes * per_record + flush_ms
    return CostBreakdown("horizontal", io_ms, f"{n_deletes} records x "
                         f"{per_record:.2f}ms + flush")


def estimate_chunked_ms(
    db: Database,
    table: TableInfo,
    n_deletes: int,
    chunk_rows: int = 64,
) -> CostBreakdown:
    """Cost of the chunked ``DELETE ... LIMIT n`` production baseline.

    Each row pays the horizontal per-record cost (the chunk walks the
    driving index in key order, so the driving leaves stream while the
    heap and the other indexes stay random); each chunk additionally
    pays one durable progress write — a random positioning for the
    accounting page every ``chunk_rows`` rows.  The strategy trades
    aggregate time for short lock footprints: user transactions wait at
    most one chunk, never the whole statement, which is why the OLTP
    harness (:mod:`repro.workload.traffic`) runs it as the tail-latency
    baseline the side-file vertical plan must beat.
    """
    if chunk_rows < 1:
        raise PlanningError("chunk_rows must be at least 1")
    base = estimate_horizontal_ms(db, table, n_deletes, presorted=True)
    params = db.disk.parameters
    random_ms = params.random_ms(db.page_size)
    chunks = math.ceil(n_deletes / chunk_rows) if n_deletes else 0
    progress_ms = chunks * random_ms
    return CostBreakdown(
        "chunked",
        base.io_ms + progress_ms,
        f"{n_deletes} records in {chunks} chunks of {chunk_rows} "
        f"+ {chunks} progress writes",
    )


def estimate_vertical_ms(
    db: Database, table: TableInfo, n_deletes: int
) -> CostBreakdown:
    """Cost of the sort/merge vertical plan: sequential sweeps + sorts.

    Sizes come from (I/O-free) catalog statistics — a planner must not
    walk leaf chains to decide how to avoid walking leaf chains.
    """
    params = db.disk.parameters
    seq_ms = params.sequential_ms(db.page_size)
    random_ms = params.random_ms(db.page_size)
    stats = collect_table_statistics(table)
    heap_pages = stats.heap_pages
    leaf_pages = stats.total_leaf_pages()
    # Read + write back each swept page (writes are also sequential).
    sweep_ms = (heap_pages + leaf_pages) * seq_ms * 2
    # The executor's default heap-reclaim pass sweeps the heap again.
    reclaim_ms = heap_pages * seq_ms * 2
    # Each structure's read and write streams start with one random
    # positioning (the heap plus every B-tree file).
    structures = 1 + len(table.btree_indexes())
    stream_ms = structures * 2 * random_ms
    sort_ms = 0.0
    if n_deletes > 1:
        passes = 1 + max(
            0,
            math.ceil(
                math.log2(
                    max(
                        1.0,
                        (n_deletes * 16) / max(1, db.memory_bytes),
                    )
                )
            ),
        )
        sort_ms = (
            len(table.indexes)
            * n_deletes
            * db.disk.CPU_RECORD_MS
            * 0.5
            * math.log2(n_deletes)
            * passes
        )
    io_ms = sweep_ms + reclaim_ms + stream_ms + sort_ms
    return CostBreakdown(
        "vertical",
        io_ms,
        f"{heap_pages} heap + {leaf_pages} leaf pages swept",
    )


def makespan_ms(costs: List[float], lanes: int) -> float:
    """Greedy-LPT makespan of independent branch costs on ``lanes`` lanes.

    Mirrors the scheduler's lane assignment (longest estimate first,
    least-busy lane) so the planner's parallel term predicts what
    :class:`repro.parallel.LaneScheduler` actually produces on a
    dedicated-disk configuration.
    """
    if not costs:
        return 0.0
    lane_busy = [0.0] * max(1, lanes)
    for cost in sorted(costs, reverse=True):
        lane_busy[lane_busy.index(min(lane_busy))] += cost
    return max(lane_busy)


def estimate_sharded_ms(
    parallel_costs: Sequence[float],
    serial_costs: Sequence[float],
    lanes: int,
    contention: str = DEDICATED,
) -> CostBreakdown:
    """Cost of a range-sharded delete: a lane region plus a serial tail.

    Pure arithmetic over per-fragment costs (each fragment is priced
    by the core planner against its own shard's statistics — also
    I/O-free, see ``effect/shard-routing-pure``):

    * ``dedicated`` lanes run the parallel fragments as one region
      whose cost is the LPT **makespan** (mirroring the scheduler),
    * ``shared`` lanes forfeit the split entirely: the device
      serializes the fragments, so the region term is their **sum**,
    * hot fragments the planner serialized (or split) run after the
      region, back to back — their costs always add.
    """
    parallel = list(parallel_costs)
    serial = list(serial_costs)
    if contention == SHARED:
        region_ms = sum(parallel)
        detail = (
            f"{len(parallel)} shard fragments serialized on one "
            "shared device"
        )
    else:
        region_ms = makespan_ms(parallel, lanes)
        detail = (
            f"LPT makespan of {len(parallel)} shard fragments on "
            f"{lanes} dedicated lanes"
        )
    if serial:
        detail += f" + {len(serial)} serialized hot fragment(s)"
    return CostBreakdown("sharded", region_ms + sum(serial), detail)


def estimate_vertical_parallel_ms(
    db: Database,
    table: TableInfo,
    n_deletes: int,
    lanes: int,
    contention: str = DEDICATED,
    driving_index: Optional[str] = None,
) -> CostBreakdown:
    """Vertical cost with the post-barrier branches on ``lanes`` lanes.

    The serial terms (delete-key sort, driving-index sweep, RID sort,
    heap reclaim, flush) are exactly :func:`estimate_vertical_ms`'s;
    only the independent branch sweeps — the heap and every non-driving
    B-tree — change:

    * ``dedicated``: their sum is replaced by the LPT **makespan** over
      ``lanes`` lanes (``T_par = max over lanes of the branch sums``),
    * ``shared``: every branch page is re-billed at the random rate
      (interleaving forfeits the sequential discount) and the device
      serializes the requests, so the term is the inflated **sum** —
      strictly worse than serial execution.

    ``lanes=1`` returns the serial estimate unchanged (same floats).
    """
    serial = estimate_vertical_ms(db, table, n_deletes)
    if lanes <= 1:
        return serial
    params = db.disk.parameters
    seq_ms = params.sequential_ms(db.page_size)
    random_ms = params.random_ms(db.page_size)
    stats = collect_table_statistics(table)
    branches = [stats.heap_pages * seq_ms * 2.0]
    for ix in table.btree_indexes():
        if driving_index is not None and ix.name == driving_index:
            continue
        branches.append(stats.indexes[ix.name].leaf_pages * seq_ms * 2.0)
    branch_sum = sum(branches)
    if contention == SHARED:
        parallel_ms = sum(b * (random_ms / seq_ms) for b in branches)
        detail = (
            f"{len(branches)} branches on one shared device: "
            "sequential discounts lost, requests serialized"
        )
    else:
        parallel_ms = makespan_ms(branches, lanes)
        detail = (
            f"LPT makespan of {len(branches)} branches "
            f"on {lanes} dedicated lanes"
        )
    return CostBreakdown(
        "vertical-parallel",
        serial.io_ms - branch_sum + parallel_ms,
        detail,
    )


def rid_hash_fits(db: Database, n_deletes: int) -> bool:
    """Would a RID hash set of the delete list fit in memory?"""
    return n_deletes * BYTES_PER_SET_ENTRY <= db.memory_bytes


@overload
def choose_plan(
    db: Database,
    table_name: str,
    column: str,
    n_deletes: int,
    prefer_method: Optional[BdMethod] = ...,
    force_vertical: bool = ...,
    lanes: int = ...,
    contention: str = ...,
) -> BulkDeletePlan: ...


@overload
def choose_plan(
    db: Database,
    table_name: str,
    column: str,
    n_deletes: int,
    prefer_method: Optional[BdMethod] = ...,
    force_vertical: bool = ...,
    lanes: int = ...,
    contention: str = ...,
    *,
    shards: Sequence[int],
) -> "ShardedDeletePlan": ...


def choose_plan(
    db: Database,
    table_name: str,
    column: str,
    n_deletes: int,
    prefer_method: Optional[BdMethod] = None,
    force_vertical: bool = False,
    lanes: int = 1,
    contention: str = DEDICATED,
    shards: Optional[Sequence[int]] = None,
) -> "Union[BulkDeletePlan, ShardedDeletePlan, LsmDeletePlan]":
    """Pick order, method and predicate for every structure.

    ``prefer_method`` narrows the per-index method choice (e.g. the
    benchmarks pin SORT_MERGE to mirror the paper's evaluation); the
    planner still falls back to PARTITIONED_HASH when a requested HASH
    build cannot fit in memory.  ``lanes``/``contention`` cost the
    vertical plan for multi-lane execution (``lanes=1``, the default,
    is the serial paper testbed and leaves every estimate unchanged).

    ``shards`` carries the actual delete list when the target table is
    range-sharded: planning then routes the keys through the shard map
    and returns a :class:`~repro.shard.planning.ShardedDeletePlan`
    (one core plan per shard fragment, hot fragments split or
    serialized) instead of a single :class:`BulkDeletePlan`.
    """
    if shards is not None:
        from repro.shard.planning import choose_sharded_plan

        return choose_sharded_plan(
            db, table_name, column, shards,
            lanes=lanes, contention=contention,
            prefer_method=prefer_method,
        )
    table = db.table(table_name)
    if table.lsm is not None:
        # The LSM engine has its own (pure-arithmetic) cost model:
        # tombstone writes + expected flushes + FADE compactions.
        from repro.lsm.planning import choose_lsm_plan

        return choose_lsm_plan(db, table_name, column, n_deletes)
    if table.is_sharded:
        raise PlanningError(
            f"table {table_name} is range-sharded; pass the delete "
            "list via choose_plan(..., shards=keys) or call "
            "repro.shard.planning.choose_sharded_plan"
        )
    if not table.schema.has_column(column):
        raise PlanningError(f"{table_name} has no column {column}")
    driving = _pick_driving_index(table, column)
    horizontal = estimate_horizontal_ms(db, table, n_deletes)
    if lanes > 1:
        vertical = estimate_vertical_parallel_ms(
            db, table, n_deletes, lanes, contention,
            driving_index=driving.name if driving else None,
        )
    else:
        vertical = estimate_vertical_ms(db, table, n_deletes)
    plan = BulkDeletePlan(
        table_name=table_name,
        column=column,
        driving_index=driving.name if driving else None,
        n_deletes=n_deletes,
        lanes=lanes,
        contention=contention,
    )
    # The estimate must describe the plan actually chosen: under
    # force_vertical the cheaper horizontal figure is not available,
    # so min() of the two would report a cost no step of this plan
    # can achieve (caught by the estimate-drift self-check).
    if not force_vertical and horizontal.io_ms < vertical.io_ms:
        plan.estimated_ms = horizontal.io_ms
        plan.steps = [
            StepPlan(
                TABLE_TARGET,
                BdMethod.NESTED_LOOPS,
                BdPredicate.KEY,
                note="record-at-a-time is cheaper for this few deletes",
            )
        ]
        plan.notes.append(
            f"horizontal {horizontal.io_ms / 1000:.1f}s < "
            f"vertical {vertical.io_ms / 1000:.1f}s"
        )
        return plan

    plan.estimated_ms = vertical.io_ms
    if lanes > 1:
        plan.notes.append(
            f"costed for {lanes} {contention} lane(s): {vertical.detail}"
        )
    method = prefer_method or BdMethod.SORT_MERGE
    hash_fits = rid_hash_fits(db, n_deletes)
    if method is BdMethod.HASH and not hash_fits:
        method = BdMethod.PARTITIONED_HASH
        plan.notes.append(
            "RID hash set exceeds memory: fell back to range partitioning"
        )

    # 1. The driving index (sort/merge on its own key) produces RIDs.
    if driving is not None:
        plan.steps.append(
            StepPlan(
                driving.name,
                BdMethod.SORT_MERGE,
                BdPredicate.KEY,
                note="driving index: sorted delete keys -> RID list",
            )
        )
        plan.sort_rid_list = not driving.clustered
        if driving.clustered:
            plan.notes.append(
                "driving index is clustered: RID list inherits key order "
                "(interesting order, no sort needed)"
            )
    else:
        plan.sort_rid_list = False  # scan already yields RIDs in order

    # 2. Unique secondary indexes, by RID, before the base table (§3.1.3)
    #    so the uniqueness constraint can come back on-line early.
    later: List[IndexInfo] = []
    hash_indexes = table.hash_indexes()
    if hash_indexes:
        plan.notes.append(
            f"{len(hash_indexes)} hash index(es) will be updated "
            "record-at-a-time (vertical bd applies to B-trees only, §5)"
        )
    for index in table.btree_indexes():
        if driving is not None and index.name == driving.name:
            continue
        if index.unique and hash_fits:
            plan.steps.append(
                StepPlan(
                    index.name,
                    BdMethod.HASH,
                    BdPredicate.RID,
                    note="unique index processed first (RID probe)",
                )
            )
        else:
            later.append(index)

    # 3. The base table.
    plan.steps.append(
        StepPlan(
            TABLE_TARGET,
            BdMethod.SORT_MERGE if method is BdMethod.SORT_MERGE else method,
            BdPredicate.RID,
            note="RID-ordered sweep of the heap",
        )
    )

    # 4. Remaining indexes, fed by the projections of the deleted rows.
    for index in later:
        step_method = method
        predicate = (
            BdPredicate.RID if method is not BdMethod.SORT_MERGE
            else BdPredicate.KEY
        )
        plan.steps.append(
            StepPlan(
                index.name,
                step_method,
                predicate,
                note="fed by keys projected from deleted rows"
                if predicate is BdPredicate.KEY
                else "fed by the RID list",
            )
        )
    return plan


def _pick_driving_index(
    table: TableInfo, column: str
) -> Optional[IndexInfo]:
    """Best index on the delete column: clustered > unique > any."""
    candidates = table.indexes_on(column)
    if not candidates:
        return None
    for ix in candidates:
        if ix.clustered:
            return ix
    for ix in candidates:
        if ix.unique:
            return ix
    return candidates[0]

"""B+-tree reorganization during/after bulk deletion (paper §2.3).

Because every bulk-delete plan visits the leaf level "from the beginning
to the end", leaves can be *compacted*, *compressed* and *merged with
neighbour pages* at very little extra cost.  Two strategies from the
paper are implemented:

* :func:`compact_leaf_level` — shift all surviving entries "to the
  left" into the smallest possible number of leaf pages, freeing the
  rest, then rebuild the inner levels layer by layer.  This produces a
  contiguous, fully packed leaf level.
* :func:`sweep_with_base_node_reorg` — the on-the-fly variant adapted
  from Zou & Salzberg [26]: one level-1 *base node* at a time, sweep the
  leaves below it, then update that inner node in place before moving to
  its right sibling.  Only the levels above the base nodes need a final
  fix-up, so the memory footprint is one sub-tree at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.btree.node import NO_NODE, Node
from repro.btree.tree import DEFAULT_FILL_FACTOR, BLinkTree
from repro.core.bulk_ops import BdResult, _merge_out
from repro.errors import IndexError_
from repro.storage.disk import SimulatedDisk

Entry = Tuple[int, int]


def compact_leaf_level(
    tree: BLinkTree, fill_factor: float = DEFAULT_FILL_FACTOR
) -> int:
    """Repack the leaf level densely; returns the number of leaves freed.

    Surviving entries are redistributed left-to-right over the existing
    leaf pages (reusing them in chain order keeps the level physically
    contiguous); surplus leaves are freed and the inner levels are
    rebuilt.  Afterwards every leaf except possibly the last is filled
    to ``fill_factor``.
    """
    page_ids: List[int] = []
    entries: List[Entry] = []
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        page_ids.append(page_id)
        entries.extend(node.entries)
        page_id = node.right_id
    per_leaf = max(2, int(tree.leaf_capacity * fill_factor))
    needed = max(1, -(-len(entries) // per_leaf))  # ceil, at least one leaf
    keep = page_ids[:needed]
    surplus = page_ids[needed:]
    chunks = [entries[i * per_leaf : (i + 1) * per_leaf] for i in range(needed)]
    summaries: List[Entry] = []
    for idx, (page_id, chunk) in enumerate(zip(keep, chunks)):
        node = Node(page_id, level=0, entries=chunk)
        node.left_id = keep[idx - 1] if idx > 0 else NO_NODE
        node.right_id = keep[idx + 1] if idx + 1 < needed else NO_NODE
        if idx + 1 < needed and chunks[idx + 1]:
            node.high_key = chunks[idx + 1][0][0]
        tree._write(node)
        if chunk:
            summaries.append((chunk[0][0], page_id))
    for page_id in surplus:
        tree._free_node(page_id)
    tree.first_leaf_id = keep[0]
    # Entry bookkeeping: write_leaf_entries was bypassed, counts unchanged.
    tree.rebuild_upper_levels(summaries if summaries else None)
    return len(surplus)


def sweep_with_base_node_reorg(
    tree: BLinkTree,
    sorted_pairs: Sequence[Entry],
    disk: SimulatedDisk,
    match_rid: bool = True,
) -> BdResult:
    """Sort/merge bulk delete with on-the-fly inner-node maintenance.

    Equivalent in effect to
    :func:`repro.core.bulk_ops.bd_index_sort_merge`, but instead of
    rebuilding all inner levels at the end, each level-1 *base node* is
    updated right after the leaves below it have been processed — the
    adaptation of [26] sketched in Figure 6 of the paper.  Levels above
    the base nodes are rebuilt once at the end (they are tiny).
    """
    result = BdResult(structure=tree.name)
    if tree.height < 2:
        # No inner level: fall back to the plain sweep.
        from repro.core.bulk_ops import bd_index_sort_merge

        return bd_index_sort_merge(tree, sorted_pairs, disk, match_rid)
    if not sorted_pairs:
        return result
    base_id = _leftmost_at_level(tree, level=1)
    i, n = 0, len(sorted_pairs)
    carry: List[Entry] = []
    base_summaries: List[Entry] = []
    while base_id != NO_NODE:
        base = tree._read(base_id)
        next_base = base.right_id
        new_children: List[Entry] = []
        for _, leaf_id in base.entries:
            leaf = tree.read_leaf(leaf_id)
            result.pages_visited += 1
            kept = leaf.entries
            if leaf.entries and (
                carry or (i < n and sorted_pairs[i][0] <= leaf.entries[-1][0])
            ):
                kept, removed, i, carry = _merge_out(
                    leaf.entries, sorted_pairs, i, n, match_rid, carry
                )
                disk.charge_cpu_records(len(leaf.entries))
                if removed:
                    result.deleted.extend(removed)
                    tree.write_leaf_entries(leaf_id, kept)
            if kept:
                new_children.append((kept[0][0], leaf_id))
            else:
                tree.unlink_and_free_leaves([leaf_id])
                result.pages_freed += 1
        # Update the base node in place before moving right.
        if new_children:
            base.entries = new_children
            tree._write(base)
            base_summaries.append((new_children[0][0], base_id))
        else:
            tree._unlink_from_chain(base)
            tree._free_node(base_id)
        base_id = next_base
    _rebuild_above_level_one(tree, base_summaries)
    return result


def _leftmost_at_level(tree: BLinkTree, level: int) -> int:
    node = tree._read(tree.root_id)
    while node.level > level:
        if not node.entries:
            raise IndexError_(f"inner node {node.page_id} is empty")
        node = tree._read(node.entries[0][1])
    if node.level != level:
        raise IndexError_(f"tree has no level {level}")
    return node.page_id


def _rebuild_above_level_one(
    tree: BLinkTree, base_summaries: List[Entry]
) -> None:
    """Replace levels >= 2 with fresh nodes over the surviving bases."""
    # Free the old levels above 1.
    old: List[int] = []
    node = tree._read(tree.root_id)
    while node.level >= 2:
        cursor: Optional[Node] = node
        first_child: Optional[int] = None
        while cursor is not None:
            old.append(cursor.page_id)
            if first_child is None and cursor.entries:
                first_child = cursor.entries[0][1]
            cursor = (
                tree._read(cursor.right_id)
                if cursor.right_id != NO_NODE
                else None
            )
        if node.level == 2 or first_child is None:
            break
        node = tree._read(first_child)
    for page_id in old:
        tree._free_node(page_id)
    if not base_summaries:
        # Every leaf vanished: reset to a single empty leaf.
        if tree.first_leaf_id == NO_NODE:
            leaf = tree._allocate_node(level=0)
            tree.first_leaf_id = leaf.page_id
        tree.root_id = tree.first_leaf_id
        tree.height = 1
        return
    if len(base_summaries) == 1:
        tree.root_id = base_summaries[0][1]
        tree.height = 2
        return
    per_inner = max(2, int(tree.inner_capacity * DEFAULT_FILL_FACTOR))
    level = 2
    current = base_summaries
    while len(current) > 1:
        current = tree._build_level(current, level=level, per_node=per_inner)
        level += 1
    tree.root_id = current[0][1]
    tree.height = tree._read(tree.root_id).level + 1

"""Logical bulk-delete plans.

A plan answers the three optimizer questions the paper poses for the
``bd`` operator (Section 2.1):

* **method** — nested-loops (the traditional horizontal path),
  sort/merge, in-memory hash, or range-partitioned hash,
* **order** — which structure is processed first and where the base
  table sits in the sequence (unique indexes are scheduled before the
  table so the uniqueness constraint can be re-enabled early, §3.1.3),
* **primary predicate** — whether entries of an index are located by
  key or by RID.

``BulkDeletePlan.explain`` renders the plan as an operator DAG in the
style of the paper's Figures 3-5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class BdMethod(enum.Enum):
    """Join method used by one ``bd`` operator."""

    SORT_MERGE = "sort-merge"
    HASH = "hash"
    PARTITIONED_HASH = "partitioned-hash"
    NESTED_LOOPS = "nested-loops"  # the traditional, horizontal path


class BdPredicate(enum.Enum):
    """How entries are located in the target structure."""

    KEY = "key"
    RID = "rid"


TABLE_TARGET = "__table__"


@dataclass
class StepPlan:
    """One ``bd`` application: target structure, method, predicate."""

    target: str  # index name, or TABLE_TARGET for the base table
    method: BdMethod
    predicate: BdPredicate
    note: str = ""

    @property
    def is_table(self) -> bool:
        return self.target == TABLE_TARGET

    def describe(self, table_name: str) -> str:
        name = table_name if self.is_table else self.target
        text = f"bd[{self.method.value}/{self.predicate.value}] {name}"
        if self.note:
            text += f"  -- {self.note}"
        return text


@dataclass
class BulkDeletePlan:
    """The full vertical plan for one bulk DELETE statement."""

    table_name: str
    column: str
    driving_index: Optional[str]
    steps: List[StepPlan] = field(default_factory=list)
    sort_rid_list: bool = True
    estimated_ms: Optional[float] = None
    notes: List[str] = field(default_factory=list)
    #: Size of the delete list the plan was costed for.  The static
    #: plan linter uses it to verify hash-method memory feasibility;
    #: ``None`` (a hand-built plan) skips those checks.
    n_deletes: Optional[int] = None
    #: Concurrent I/O lanes the plan was costed for.  ``1`` is the
    #: paper's serial single-disk testbed; ``> 1`` schedules the
    #: independent branches after the RID-list barrier concurrently.
    lanes: int = 1
    #: ``"dedicated"`` (one disk per lane) or ``"shared"`` (lanes
    #: interleave on one device); only meaningful when ``lanes > 1``.
    contention: str = "dedicated"

    def index_steps(self) -> List[StepPlan]:
        return [s for s in self.steps if not s.is_table]

    def table_step(self) -> StepPlan:
        for step in self.steps:
            if step.is_table:
                return step
        raise ValueError("plan has no base-table step")

    def steps_before_table(self) -> List[StepPlan]:
        out: List[StepPlan] = []
        for step in self.steps:
            if step.is_table:
                break
            out.append(step)
        return out

    def steps_after_table(self) -> List[StepPlan]:
        seen_table = False
        out: List[StepPlan] = []
        for step in self.steps:
            if step.is_table:
                seen_table = True
            elif seen_table:
                out.append(step)
        return out

    def explain(self) -> str:
        """Human-readable rendering of the plan DAG."""
        lines = [
            f"BULK DELETE FROM {self.table_name} "
            f"WHERE {self.column} IN (delete list)"
        ]
        if self.driving_index:
            lines.append(
                f"  driving index: {self.driving_index} "
                f"(produces the RID list)"
            )
        else:
            lines.append("  no index on the delete column: table scan "
                         "produces the RID list")
        if self.sort_rid_list:
            lines.append("  sort(RID) before the base-table sweep")
        else:
            lines.append("  RID list already in physical order "
                         "(clustered driving index)")
        if self.lanes > 1:
            lines.append(
                f"  parallelism: {self.lanes} {self.contention} lanes "
                "for the branches after the RID-list barrier"
            )
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  {i}. {step.describe(self.table_name)}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.estimated_ms is not None:
            lines.append(f"  estimated cost: {self.estimated_ms / 1000:.2f}s")
        return "\n".join(lines)

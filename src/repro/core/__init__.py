"""The paper's contribution: vertical, set-oriented bulk deletes."""

from repro.core.bulk_ops import (
    BdResult,
    bd_heap_hash_probe,
    bd_heap_sorted_rids,
    bd_index_hash_probe,
    bd_index_partitioned,
    bd_index_sort_merge,
)
from repro.core.chunked import (
    ChunkedDelete,
    ChunkedDeleteResult,
    ChunkStats,
    chunked_delete,
)
from repro.core.drop_create import DropCreateResult, drop_create_delete
from repro.core.executor import (
    BulkDeleteOptions,
    BulkDeleteResult,
    bulk_delete,
    execute_plan,
    validate_plan,
)
from repro.core.planner import (
    choose_plan,
    estimate_chunked_ms,
    estimate_horizontal_ms,
    estimate_vertical_ms,
)
from repro.core.plans import (
    TABLE_TARGET,
    BdMethod,
    BdPredicate,
    BulkDeletePlan,
    StepPlan,
)
from repro.core.bulk_update import (
    BulkUpdateResult,
    bulk_update,
    traditional_update,
)
from repro.core.integrity import (
    ConstraintRegistry,
    ForeignKey,
    IntegrityReport,
    OnDelete,
    bulk_delete_with_integrity,
)
from repro.core.operator import OpNode, build_dag, render_plan_dag
from repro.core.reorg import compact_leaf_level, sweep_with_base_node_reorg
from repro.core.traditional import TraditionalResult, traditional_delete

__all__ = [
    "BdMethod",
    "BulkUpdateResult",
    "ConstraintRegistry",
    "ForeignKey",
    "IntegrityReport",
    "OnDelete",
    "bulk_delete_with_integrity",
    "bulk_update",
    "build_dag",
    "render_plan_dag",
    "traditional_update",
    "BdPredicate",
    "BdResult",
    "BulkDeleteOptions",
    "BulkDeletePlan",
    "BulkDeleteResult",
    "DropCreateResult",
    "StepPlan",
    "TABLE_TARGET",
    "TraditionalResult",
    "bd_heap_hash_probe",
    "bd_heap_sorted_rids",
    "bd_index_hash_probe",
    "bd_index_partitioned",
    "bd_index_sort_merge",
    "bulk_delete",
    "choose_plan",
    "ChunkStats",
    "ChunkedDelete",
    "ChunkedDeleteResult",
    "chunked_delete",
    "estimate_chunked_ms",
    "compact_leaf_level",
    "drop_create_delete",
    "estimate_horizontal_ms",
    "estimate_vertical_ms",
    "execute_plan",
    "sweep_with_base_node_reorg",
    "traditional_delete",
    "validate_plan",
]

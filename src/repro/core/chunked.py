"""Chunked ``DELETE ... LIMIT n`` with progress accounting.

The production baseline the vertical strategies compete against: batch
the delete into chunks of ``n`` rows, delete each chunk the traditional
record-at-a-time way (heap + every index, horizontal processing), and
durably account progress after every chunk so an interrupted job can
report how far it got and resume from its counter.  This is the
``DELETE FROM t WHERE ... ORDER BY pk LIMIT n`` loop catalogued in the
industrial-techniques collection referenced by PAPERS.md — kind to
concurrent traffic (locks are held per chunk, not per statement) but
expensive in aggregate, because every row pays random I/O against every
structure and every chunk pays the accounting write on top.

``ChunkedDelete`` exposes chunk-at-a-time stepping so the OLTP traffic
driver (:mod:`repro.workload.traffic`) can interleave user operations
between chunks; :func:`chunked_delete` runs the loop to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.catalog.database import Database
from repro.errors import PlanningError, ReproError
from repro.query.sort import ExternalSorter
from repro.storage.heap import HeapFile
from repro.storage.rid import RID
from repro.txn.locks import LockMode
from repro.txn.transactions import TransactionManager


@dataclass
class ChunkStats:
    """Accounting for one committed chunk."""

    index: int
    rows: int
    deleted_total: int
    start_ms: float
    end_ms: float

    @property
    def elapsed_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class ChunkedDeleteResult:
    """What a chunked delete did, chunk by chunk."""

    chunk_rows: int
    records_deleted: int = 0
    chunks: List[ChunkStats] = field(default_factory=list)
    progress_writes: int = 0
    #: Clock reading after the final ``db.flush()`` of :meth:`run`,
    #: ``None`` while chunks are still being stepped (or when the
    #: caller flushes on its own schedule, as the traffic driver does).
    flushed_ms: Optional[float] = None

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    @property
    def elapsed_ms(self) -> float:
        """First chunk start to last accounted instant.

        The end point is the post-flush clock when :meth:`run` did the
        final flush — the flush is part of the chunked baseline's
        window, not free — and the last chunk's end otherwise.
        """
        if not self.chunks:
            return 0.0
        end_ms = (
            self.flushed_ms
            if self.flushed_ms is not None
            else self.chunks[-1].end_ms
        )
        return end_ms - self.chunks[0].start_ms


class ChunkedDelete:
    """Stepwise chunked delete: call :meth:`run_chunk` until ``None``.

    Each chunk is one short transaction: row X locks on its victims
    (never the whole table, as long as ``chunk_rows`` stays under the
    lock manager's escalation threshold), record-at-a-time deletion,
    then a durable progress write — one page flushed per chunk, the
    "accounting" half of the production idiom.
    """

    #: Floor for the progress record.  The actual record is sized per
    #: statement in ``__init__`` so the table name plus any counter the
    #: statement can reach always fit — the record must never truncate,
    #: because a truncated counter is a corrupted resume point.
    PROGRESS_RECORD_BYTES = 32
    #: Digits reserved for the ``records_deleted`` counter; 20 covers
    #: every value below 10**20, far beyond any delete list.
    PROGRESS_COUNTER_DIGITS = 20

    def __init__(
        self,
        db: Database,
        table_name: str,
        column: str,
        keys: Sequence[int],
        chunk_rows: int = 64,
        txn_manager: Optional[TransactionManager] = None,
    ) -> None:
        if chunk_rows < 1:
            raise PlanningError("chunk_rows must be at least 1")
        table = db.table(table_name)
        if not table.indexes_on(column):
            raise PlanningError(f"chunked delete needs an index on {column}")
        self.db = db
        self.table_name = table_name
        self.column = column
        self.chunk_rows = chunk_rows
        self.tm = txn_manager or TransactionManager()
        self.result = ChunkedDeleteResult(chunk_rows=chunk_rows)
        # Production chunking walks the driving index in key order
        # ("ORDER BY pk LIMIT n"); sort once, through the engine's own
        # sort path, so the baseline gets its best access pattern.
        sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
        self._keys = [k for (k,) in sorter.sort((k,) for k in keys)]
        # Fixed per-statement record size: name + ':' + counter digits,
        # never below the floor.  Every progress write is a same-size
        # in-place update of one row, and nothing ever truncates.
        self._progress_bytes = max(
            self.PROGRESS_RECORD_BYTES,
            len(table_name.encode("ascii"))
            + 1
            + self.PROGRESS_COUNTER_DIGITS,
        )
        self._cursor = 0
        self._progress_heap: Optional[HeapFile] = None
        self._progress_rid: Optional[RID] = None

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        return len(self._keys) - self._cursor

    @property
    def done(self) -> bool:
        return self._cursor >= len(self._keys)

    def run_chunk(self) -> Optional[ChunkStats]:
        """Delete the next chunk; returns its stats, or ``None`` if done."""
        if self.done:
            return None
        db = self.db
        chunk = self._keys[self._cursor:self._cursor + self.chunk_rows]
        start_ms = db.clock.now_ms
        txn = self.tm.begin()
        table = db.table(self.table_name)
        driving = table.indexes_on(self.column)[0]
        deleted = 0
        for key in chunk:
            self.tm.locks.lock_row(
                txn.txn_id, self.table_name, key, LockMode.X
            )
            for packed in list(driving.tree.search(key)):
                db.delete_record(self.table_name, RID.unpack(packed))
                db.disk.charge_cpu_records(1)
                deleted += 1
        self._cursor += len(chunk)
        self.result.records_deleted += deleted
        self._write_progress()
        self.tm.commit(txn)
        stats = ChunkStats(
            index=len(self.result.chunks),
            rows=deleted,
            deleted_total=self.result.records_deleted,
            start_ms=start_ms,
            end_ms=db.clock.now_ms,
        )
        self.result.chunks.append(stats)
        return stats

    def run(self) -> ChunkedDeleteResult:
        """Run every remaining chunk back to back, then flush.

        The flush belongs to the statement — without it the dirtied
        pages are not durable — so its time is accounted to the result
        (``flushed_ms`` ends the ``elapsed_ms`` window).
        """
        while self.run_chunk() is not None:
            pass
        self.db.flush()
        self.result.flushed_ms = self.db.clock.now_ms
        return self.result

    # ------------------------------------------------------------------
    def _write_progress(self) -> None:
        """Durably account the chunk: update + flush the progress row."""
        payload = (
            f"{self.table_name}:{self.result.records_deleted}"
            .encode("ascii")
        )
        if len(payload) > self._progress_bytes:
            raise ReproError(
                f"progress record for {self.table_name!r} needs "
                f"{len(payload)} bytes but the statement sized it at "
                f"{self._progress_bytes}; refusing to truncate the "
                "resume counter"
            )
        payload = payload.ljust(self._progress_bytes, b" ")
        if self._progress_heap is None:
            self._progress_heap = HeapFile(
                self.db.pool, name=f"__bd_progress_{self.table_name}"
            )
            self._progress_rid = self._progress_heap.insert(payload)
        else:
            assert self._progress_rid is not None
            self._progress_heap.update(self._progress_rid, payload)
        self.db.pool.flush_page(self._progress_rid.page_id)
        self.result.progress_writes += 1


def chunked_delete(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    chunk_rows: int = 64,
    txn_manager: Optional[TransactionManager] = None,
) -> ChunkedDeleteResult:
    """Run a chunked ``DELETE ... LIMIT n`` to completion."""
    return ChunkedDelete(
        db, table_name, column, keys, chunk_rows, txn_manager
    ).run()

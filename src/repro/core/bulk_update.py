"""Vertical bulk UPDATE — the paper's §1 application of bulk deletes.

"The techniques presented in this paper can also be applied to speed up
UPDATE statements; for instance, increasing the salary of above-average
employees involves carrying out a bulk delete (and bulk insert) on the
Emp.salary index."

An UPDATE that modifies column ``C`` of many records decomposes into:

1. find the victim RIDs (via an index on the WHERE column, read-only,
   or a predicate scan),
2. one RID-ordered sweep over the heap, rewriting each record in place
   (fixed layouts keep sizes identical, so RIDs never change and
   indexes on *unmodified* columns need no maintenance at all),
3. for every index on ``C``: a sort/merge **bulk delete** of the old
   ``(key, RID)`` entries followed by a sort/merge **bulk insert** of
   the new ones — two sequential leaf passes instead of two random
   root-to-leaf traversals per record.

``traditional_update`` is the horizontal baseline: per record, delete
the old index entry, rewrite, insert the new entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.btree.bulk_insert import BulkInsertResult, bulk_insert_sorted
from repro.catalog.catalog import IndexInfo, TableInfo
from repro.catalog.database import Database
from repro.core.bulk_ops import BdResult, bd_index_sort_merge
from repro.errors import PlanningError, SchemaError
from repro.query.sort import ExternalSorter
from repro.storage.disk import DiskStats
from repro.storage.rid import RID

#: Computes the new value of the SET column from the full record tuple.
SetExpression = Callable[[Tuple[object, ...]], int]
#: Row filter for predicate-driven updates.
RowPredicate = Callable[[Tuple[object, ...]], bool]


@dataclass
class BulkUpdateResult:
    """What one bulk update did and what it cost (simulated)."""

    table_name: str
    set_column: str
    records_updated: int = 0
    index_deletes: List[BdResult] = field(default_factory=list)
    index_inserts: List[BulkInsertResult] = field(default_factory=list)
    elapsed_ms: float = 0.0
    io: Optional[DiskStats] = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    def summary(self) -> str:
        lines = [
            f"updated {self.records_updated} records of "
            f"{self.table_name}.{self.set_column} in "
            f"{self.elapsed_seconds:.2f}s (simulated)"
        ]
        for bd in self.index_deletes:
            lines.append(
                f"  {bd.structure}: bulk delete -{bd.deleted_count} "
                f"({bd.pages_visited} pages)"
            )
        for ins in self.index_inserts:
            lines.append(
                f"  {ins.structure}: bulk insert +{ins.inserted} "
                f"({ins.pages_visited} pages, {ins.pages_created} new)"
            )
        return "\n".join(lines)


def bulk_update(
    db: Database,
    table_name: str,
    set_column: str,
    compute: SetExpression,
    where: Optional[RowPredicate] = None,
    where_column: Optional[str] = None,
    where_keys: Optional[Sequence[int]] = None,
    flush_at_end: bool = True,
) -> BulkUpdateResult:
    """Vertically update ``set_column`` of every matching record.

    Victims come either from ``where`` (a row predicate, evaluated in a
    sequential scan) or from ``(where_column, where_keys)`` (an
    ``IN``-list resolved through an index when one exists).  ``compute``
    receives the current record tuple and returns the new integer value
    of ``set_column``.
    """
    table = db.table(table_name)
    attr = table.schema.attribute(set_column)
    if attr.data_type.value != "int":
        raise SchemaError(f"bulk_update targets INT columns, not {attr}")
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    result = BulkUpdateResult(table_name=table_name, set_column=set_column)

    victims = _find_victims(db, table, where, where_column, where_keys)
    victims.sort(key=lambda rid: rid.pack())

    set_idx = table.schema.column_index(set_column)
    affected = table.indexes_covering(set_column)
    old_pairs: List[Tuple[int, int]] = []
    new_pairs: List[Tuple[int, int]] = []
    updates: List[Tuple[RID, bytes]] = []
    # One sequential pass computes the rewrites and the index deltas.
    for rid in victims:
        values = table.serializer.unpack(table.heap.read(rid))
        new_value = compute(values)
        if not isinstance(new_value, int) or isinstance(new_value, bool):
            raise SchemaError(
                f"SET expression must return an int, got {new_value!r}"
            )
        if new_value == values[set_idx]:
            continue
        packed = rid.pack()
        new_values = list(values)
        new_values[set_idx] = new_value
        old_pairs.append((values[set_idx], packed))
        new_pairs.append((new_value, packed))
        updates.append((rid, table.serializer.pack(new_values)))
    table.heap.update_many_sorted(updates)
    db.disk.charge_cpu_records(len(updates))
    result.records_updated = len(updates)

    # Index maintenance: one bulk delete + one bulk insert per index.
    # Compound indexes containing the SET column re-derive their packed
    # keys from the old/new record images.
    for index in affected:
        if not index.is_btree:
            # Hash indexes have no order to exploit: maintain them
            # record-at-a-time, as the paper's prototype did (§5).
            for (old_key, packed), (new_key, _) in zip(old_pairs, new_pairs):
                index.hash_index.delete(old_key, packed)
                index.hash_index.insert(new_key, packed)
            db.disk.charge_cpu_records(len(old_pairs))
            continue
        if index.is_compound:
            idx_old, idx_new = [], []
            for (rid, new_payload), (old_key, packed) in zip(
                updates, old_pairs
            ):
                old_values = list(table.serializer.unpack(
                    table.heap.read(rid)
                ))
                # the heap already holds the new image; reconstruct old
                old_values[set_idx] = old_key
                idx_old.append(
                    (index.key_for(tuple(old_values), table.schema), packed)
                )
                idx_new.append(
                    (index.key_for(
                        table.serializer.unpack(new_payload), table.schema
                    ), packed)
                )
        else:
            idx_old, idx_new = old_pairs, new_pairs
        sorter = ExternalSorter(db.disk, db.memory_bytes, width=2)
        sorted_old = list(sorter.sort(idx_old))
        result.index_deletes.append(
            bd_index_sort_merge(index.tree, sorted_old, db.disk)
        )
        sorter = ExternalSorter(db.disk, db.memory_bytes, width=2)
        sorted_new = list(sorter.sort(idx_new))
        result.index_inserts.append(
            bulk_insert_sorted(index.tree, sorted_new, db.disk)
        )
    if flush_at_end:
        db.flush()
    result.elapsed_ms = db.clock.now_ms - start_ms
    result.io = db.disk.stats.delta_since(io_before)
    return result


def _find_victims(
    db: Database,
    table: TableInfo,
    where: Optional[RowPredicate],
    where_column: Optional[str],
    where_keys: Optional[Sequence[int]],
) -> List[RID]:
    """Resolve the victim RIDs without modifying anything."""
    if (where is None) == (where_column is None):
        raise PlanningError(
            "pass exactly one of `where` or `where_column`+`where_keys`"
        )
    if where is not None:
        return [
            RID(page_id, slot)
            for page_id, records in table.heap.scan_pages()
            for slot, payload in records
            if where(table.serializer.unpack(payload))
        ]
    if where_keys is None:
        raise PlanningError("where_column requires where_keys")
    indexes = table.indexes_on(where_column)
    if indexes:
        tree = indexes[0].tree
        rids: List[RID] = []
        for key in sorted(set(where_keys)):
            rids.extend(RID.unpack(v) for v in tree.search(key))
        db.disk.charge_cpu_records(len(where_keys))
        return rids
    wanted = set(where_keys)
    column_idx = table.schema.column_index(where_column)
    return [
        RID(page_id, slot)
        for page_id, records in table.heap.scan_pages()
        for slot, payload in records
        if table.serializer.unpack(payload)[column_idx] in wanted
    ]


def traditional_update(
    db: Database,
    table_name: str,
    set_column: str,
    compute: SetExpression,
    where: Optional[RowPredicate] = None,
    where_column: Optional[str] = None,
    where_keys: Optional[Sequence[int]] = None,
    flush_at_end: bool = True,
) -> BulkUpdateResult:
    """Horizontal baseline: per record, maintain indexes immediately.

    Every updated record pays a root-to-leaf delete and a root-to-leaf
    insert in each index on the SET column — the behaviour the paper's
    bulk-delete/bulk-insert pairing replaces.
    """
    table = db.table(table_name)
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    result = BulkUpdateResult(table_name=table_name, set_column=set_column)
    victims = _find_victims(db, table, where, where_column, where_keys)
    set_idx = table.schema.column_index(set_column)
    affected = table.indexes_covering(set_column)
    for rid in victims:
        values = table.serializer.unpack(table.heap.read(rid))
        new_value = compute(values)
        if new_value == values[set_idx]:
            continue
        packed = rid.pack()
        new_values = list(values)
        new_values[set_idx] = new_value
        for index in affected:
            index.structure_delete(
                index.key_for(values, table.schema), packed
            )
            index.structure_insert(
                index.key_for(tuple(new_values), table.schema), packed
            )
        table.heap.update(rid, table.serializer.pack(new_values))
        result.records_updated += 1
    if flush_at_end:
        db.flush()
    result.elapsed_ms = db.clock.now_ms - start_ms
    result.io = db.disk.stats.delta_since(io_before)
    return result
